#!/usr/bin/env python
"""Case study: an order-fulfilment process, end to end.

A capstone walkthrough exercising the whole library the way the paper's
introduction imagines a deployment:

1. **Capture** — simulate the "real" process (conditional routing on
   activity outputs) into an audit log;
2. **Mine** — recover the control-flow graph (Algorithm 2) and the edge
   conditions (Section 7);
3. **Harden** — corrupt the log with out-of-order noise and show the
   Section 6 threshold rescuing the result;
4. **Loops** — a rework variant of the process with a QA/repack loop,
   mined with Algorithm 3;
5. **Evolve** — drift the process and roll the deployed model forward.

Run with::

    python examples/case_study.py
"""

from repro.core.miner import ProcessMiner
from repro.core.noise import optimal_threshold
from repro.datasets.cyclic import CyclicTraceGenerator
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.graphs.digraph import DiGraph
from repro.graphs.render import to_ascii
from repro.logs.noise import NoiseConfig, NoiseInjector
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_ge, attr_gt, attr_le, attr_lt
from repro.model.evolution import evolve_model


def fulfilment_model():
    """Orders above a credit score skip review; big orders get gift
    wrap; everything converges on Pack -> Ship -> Close."""
    return (
        ProcessBuilder("fulfilment")
        .edge("Receive", "Validate")
        .edge("Validate", "Credit_Review", condition=attr_lt(0, 40))
        .edge("Validate", "Reserve_Stock", condition=attr_ge(0, 40))
        .edge("Credit_Review", "Reserve_Stock")
        .edge("Reserve_Stock", "Gift_Wrap", condition=attr_gt(0, 80))
        .edge("Reserve_Stock", "Pack", condition=attr_le(0, 80))
        .edge("Gift_Wrap", "Pack")
        .edge("Pack", "Ship")
        .edge("Ship", "Close")
        .build()
    )


def main() -> None:
    model = fulfilment_model()

    # 1. Capture.
    simulator = WorkflowSimulator(
        model, SimulationConfig(agents=2, seed=21)
    )
    log = simulator.run_log(400)
    print(f"1. captured {len(log)} executions of {model.name!r}")

    # 2. Mine structure + conditions.
    result = ProcessMiner(learn_conditions=True).mine(log)
    exact = result.graph.edge_set() == model.graph.edge_set()
    print(f"2. mined graph (exact recovery: {exact}):")
    print(to_ascii(result.graph))
    for edge in sorted(result.conditions):
        mined = result.conditions[edge]
        if mined.positive_fraction < 1.0:
            print(f"   condition {mined.describe()}")
    print()

    # 3. Harden against noise.
    eps = 0.06
    noisy = NoiseInjector(
        NoiseConfig(swap_rate=eps, seed=5)
    ).corrupt(log)
    naive = ProcessMiner().mine(noisy)
    threshold = optimal_threshold(len(noisy), eps)
    hardened = ProcessMiner(threshold=threshold).mine(noisy)
    truth = model.graph.edge_set()
    print(
        f"3. noise rate {eps:.0%}: naive mining keeps "
        f"{len(naive.graph.edge_set() & truth)}/{len(truth)} true "
        f"edges; threshold T={threshold} keeps "
        f"{len(hardened.graph.edge_set() & truth)}/{len(truth)}"
    )
    print(
        "   (edges on rare branches can fall under T — Section 6's "
        "analysis assumes pairs\n    observed in most executions; "
        "rarely-taken branches need a per-branch rate)"
    )
    print()

    # 4. The rework variant: QA can send packages back to Pack.
    rework = DiGraph(
        edges=[
            ("Receive", "Pack"),
            ("Pack", "QA"),
            ("QA", "Repack"),
            ("Repack", "Pack"),  # loop
            ("QA", "Ship"),
        ]
    )
    traces = CyclicTraceGenerator(
        rework, loop_probability=0.35, max_loop_iterations=2, seed=9
    ).generate(200)
    cyclic_result = ProcessMiner().mine(traces)
    loop_found = cyclic_result.graph.has_edge(
        "Repack", "Pack"
    ) and cyclic_result.graph.has_edge("QA", "Repack")
    print(
        f"4. rework variant mined with {cyclic_result.algorithm}; "
        f"QA/Repack loop recovered: {loop_found}"
    )
    print()

    # 5. Evolve: the business adds a fraud check after Validate.
    drifted = fulfilment_model()
    drifted_log_sequences = []
    for execution in log:
        sequence = list(execution.sequence)
        index = sequence.index("Validate") + 1
        drifted_log_sequences.append(
            sequence[:index] + ["Fraud_Check"] + sequence[index:]
        )
    from repro.logs.event_log import EventLog

    drifted_log = EventLog.from_sequences(
        drifted_log_sequences, process_name="fulfilment"
    )
    evolution = evolve_model(drifted, drifted_log)
    print(f"5. evolution after drift: {evolution.summary()}")
    print(
        "   evolved model valid:",
        not evolution.diff.rejected_executions
        or "(admits the drifted log)",
    )


if __name__ == "__main__":
    main()
