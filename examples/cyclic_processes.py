#!/usr/bin/env python
"""Cyclic processes (Section 5): Algorithm 3 on logs with repetitions.

Generates executions of a rework loop (quality check fails -> repair ->
check again), mines them with Algorithm 3, and shows both the
instance-labelled intermediate graph and the merged cyclic result.

Run with::

    python examples/cyclic_processes.py [executions]
"""

import sys

from repro.core.cyclic import max_instance_counts, mine_cyclic
from repro.datasets.cyclic import CyclicTraceGenerator
from repro.graphs.digraph import DiGraph
from repro.graphs.render import to_ascii


def build_rework_graph() -> DiGraph:
    """Submit -> Build -> Test; failed tests loop back through Repair."""
    return DiGraph(
        edges=[
            ("Submit", "Build"),
            ("Build", "Test"),
            ("Test", "Repair"),
            ("Repair", "Build"),   # the rework loop
            ("Test", "Release"),
        ]
    )


def main() -> None:
    executions = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    truth = build_rework_graph()
    generator = CyclicTraceGenerator(
        truth, loop_probability=0.45, max_loop_iterations=2, seed=13
    )
    log = generator.generate(executions, process_name="rework")

    lengths = sorted({len(e) for e in log})
    print(f"generated {len(log)} executions, lengths {lengths}")
    counts = max_instance_counts(log)
    print(
        "max instances per activity: "
        + ", ".join(f"{a}={k}" for a, k in sorted(counts.items()))
    )
    sample = max(log, key=len)
    print(f"longest trace: {' '.join(sample.sequence)}")
    print()

    merged, instance_graph = mine_cyclic(log, return_instance_graph=True)

    print("instance-labelled graph (Algorithm 3 before merging):")
    print(
        to_ascii(
            instance_graph,
            label=lambda node: f"{node[0]}{node[1]}",
        )
    )
    print()
    print("merged process graph (cycle restored):")
    print(to_ascii(merged))
    print()
    loop_recovered = merged.has_edge("Repair", "Build") and merged.has_edge(
        "Test", "Repair"
    )
    print(f"rework loop recovered: {loop_recovered}")


if __name__ == "__main__":
    main()
