#!/usr/bin/env python
"""Synthetic recovery study: how log size drives graph recovery.

Mirrors Section 8.1 of the paper at laptop scale: generate a random
process DAG, log executions with the paper's ready-list procedure, mine
with Algorithm 2 at increasing log sizes, and report the Table 2 columns
(edges present vs. found) plus precision/recall.

Run with::

    python examples/synthetic_recovery.py [n_vertices]
"""

import sys

from repro.analysis.metrics import recovery_metrics
from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_general_dag
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset


def main() -> None:
    n_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    table = TextTable(
        [
            "executions",
            "edges present",
            "edges found",
            "precision",
            "recall",
            "verdict",
        ],
        title=f"Recovery of a random {n_vertices}-vertex process graph",
    )
    for m in (10, 30, 100, 300, 1000):
        dataset = synthetic_dataset(
            SyntheticConfig(
                n_vertices=n_vertices, n_executions=m, seed=42
            )
        )
        mined = mine_general_dag(dataset.log)
        metrics = recovery_metrics(dataset.graph, mined, log=dataset.log)
        table.add_row(
            [
                m,
                metrics.edges_present,
                metrics.edges_found,
                metrics.precision,
                metrics.recall,
                metrics.verdict,
            ]
        )
    print(table.render())
    print()
    print(
        "Expected shape (paper, Table 2): under-recovery at small logs,\n"
        "counts approaching the ground truth as executions grow, with\n"
        "occasional closure-implied extras (supergraphs)."
    )


if __name__ == "__main__":
    main()
