#!/usr/bin/env python
"""Noise handling (Section 6): thresholds rescue mining from noisy logs.

Corrupts a clean log with out-of-order reporting at rate epsilon, then
mines it at several thresholds ``T`` — including the paper's balance-point
threshold ``eps^T = (1/2)^(m-T)`` — and reports how each fares against
the ground-truth chain.

Run with::

    python examples/noisy_logs.py [epsilon] [executions]
"""

import sys

from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_general_dag
from repro.core.noise import optimal_threshold, threshold_error_probability
from repro.datasets.flowmark import flowmark_dataset
from repro.logs.noise import NoiseConfig, NoiseInjector


def main() -> None:
    epsilon = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 300

    # Local_Swap is a 12-activity chain: the sharpest noise target,
    # mirroring the paper's Example 9 chain argument.
    dataset = flowmark_dataset("Local_Swap", executions=m, seed=3)
    truth = dataset.model.graph
    noisy = NoiseInjector(
        NoiseConfig(swap_rate=epsilon, seed=99)
    ).corrupt(dataset.log)

    t_star = optimal_threshold(m, epsilon)
    print(
        f"log: {m} executions, swap noise rate {epsilon:.2%}; "
        f"paper's balance threshold T* = {t_star}"
    )
    print()

    table = TextTable(
        [
            "T",
            "true edges kept",
            "extra edges",
            "dependencies intact",
            "P[false indep]",
            "P[false dep]",
        ]
    )
    thresholds = sorted({0, max(1, t_star // 4), t_star, 2 * t_star, m})
    for threshold in thresholds:
        mined = mine_general_dag(noisy, threshold=threshold)
        kept = len(truth.edge_set() & mined.edge_set())
        extra = len(mined.edge_set() - truth.edge_set())
        intact = mined.edge_set() >= truth.edge_set()
        probs = threshold_error_probability(m, max(threshold, 1), epsilon)
        table.add_row(
            [
                threshold,
                f"{kept}/{truth.edge_count}",
                extra,
                intact,
                probs.p_false_independence,
                probs.p_false_dependency,
            ]
        )
    print(table.render())
    print()
    print(
        "Expected shape: T=0 loses chain edges to swapped pairs; T near\n"
        "the balance point keeps every dependency; T close to m forces\n"
        "false dependencies (every surviving order looks mandatory)."
    )


if __name__ == "__main__":
    main()
