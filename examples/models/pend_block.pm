process Pend_Block
source Start
sink End
activity Start arity=2 low=0 high=100 duration=1
activity Check arity=2 low=0 high=100 duration=1
activity Pend arity=2 low=0 high=100 duration=1
activity Block arity=2 low=0 high=100 duration=1
activity Resume arity=2 low=0 high=100 duration=1
activity End arity=2 low=0 high=100 duration=1
edge Block Resume
edge Check Block if o[0] >= 67
edge Check Pend if o[0] < 34
edge Check Resume if (o[0] >= 34 and o[0] < 67)
edge Pend Resume
edge Resume End
edge Start Check
