process Upload_and_Notify
source Start
sink End
activity Start arity=2 low=0 high=100 duration=1
activity Validate arity=2 low=0 high=100 duration=1
activity Upload arity=2 low=0 high=100 duration=1
activity Notify_User arity=2 low=0 high=100 duration=1
activity Notify_Admin arity=2 low=0 high=100 duration=1
activity Archive arity=2 low=0 high=100 duration=1
activity End arity=2 low=0 high=100 duration=1
edge Archive End
edge Notify_Admin Archive
edge Notify_User Archive
edge Start Validate
edge Upload Notify_Admin if o[0] <= 70
edge Upload Notify_User if o[0] > 30
edge Validate Upload
