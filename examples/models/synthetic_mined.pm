process synthetic_mined
source START
sink END
activity END arity=2 low=0 high=100 duration=1
activity START arity=2 low=0 high=100 duration=1
activity T01 arity=2 low=0 high=100 duration=1
activity T02 arity=2 low=0 high=100 duration=1
activity T03 arity=2 low=0 high=100 duration=1
activity T04 arity=2 low=0 high=100 duration=1
activity T05 arity=2 low=0 high=100 duration=1
activity T06 arity=2 low=0 high=100 duration=1
activity T07 arity=2 low=0 high=100 duration=1
activity T08 arity=2 low=0 high=100 duration=1
edge START T02
edge START T06
edge T01 T03
edge T01 T04
edge T01 T05
edge T01 T08
edge T02 T01
edge T02 T03
edge T02 T04
edge T02 T05
edge T02 T07
edge T02 T08
edge T03 T04
edge T03 T05
edge T03 T07
edge T03 T08
edge T04 END
edge T04 T05
edge T04 T08
edge T05 END
edge T05 T08
edge T06 T04
edge T06 T05
edge T06 T07
edge T06 T08
edge T07 END
edge T08 END
