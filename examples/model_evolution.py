#!/usr/bin/env python
"""Model evolution: keep a deployed process model honest with its logs.

The paper's introduction proposes using mined graphs to evaluate a
purported model and to evolve it "by incorporating feedback from
successful process executions".  This example walks that loop:

1. a v1 model is deployed;
2. reality drifts — workers insert a compliance check and stop using a
   legacy step's ordering;
3. the drifted log is diffed against v1 (the audit report);
4. ``evolve_model`` produces v2, which admits everything the log showed.

Run with::

    python examples/model_evolution.py
"""

from repro.analysis.diffing import diff_against_log
from repro.graphs.render import to_ascii
from repro.logs.event_log import EventLog
from repro.model.builder import ProcessBuilder
from repro.model.evolution import evolve_model
from repro.model.serialize import model_to_text


def deployed_v1():
    """The v1 model: intake -> triage -> (repair | replace) -> ship."""
    return (
        ProcessBuilder("fulfilment")
        .edge("Intake", "Triage")
        .edge("Triage", "Repair")
        .edge("Triage", "Replace")
        .edge("Repair", "Ship")
        .edge("Replace", "Ship")
        .build()
    )


def drifted_log():
    """What actually happened last quarter: a Compliance step appeared
    between triage and shipping, and repair/replace sometimes both run
    (previously assumed exclusive)."""
    sequences = (
        ["Intake Triage Repair Compliance Ship".split()] * 14
        + ["Intake Triage Replace Compliance Ship".split()] * 11
        + ["Intake Triage Repair Replace Compliance Ship".split()] * 4
        + ["Intake Triage Replace Repair Compliance Ship".split()] * 3
    )
    return EventLog.from_sequences(sequences, process_name="fulfilment")


def main() -> None:
    v1 = deployed_v1()
    log = drifted_log()

    print("=== deployed model (v1)")
    print(to_ascii(v1.graph))
    print()

    diff = diff_against_log(v1, log)
    print("=== audit: purported model vs. reality")
    print(diff.report())
    print()

    result = evolve_model(v1, log)
    print("=== evolution")
    print(result.summary())
    print()
    print("=== evolved model (v2)")
    print(to_ascii(result.model.graph))
    print()
    print("=== v2 model file")
    print(model_to_text(result.model))

    follow_up = diff_against_log(result.model, log)
    print(
        "v2 admits the drifted log: "
        f"{not follow_up.rejected_executions}"
    )


if __name__ == "__main__":
    main()
