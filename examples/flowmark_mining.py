#!/usr/bin/env python
"""Mine the simulated Flowmark processes (Section 8.2 / Table 3).

Builds each of the five Table 3 processes, simulates the published number
of executions through the workflow engine, mines the logs, and prints the
recovered graphs alongside the recovery verdicts.  Also writes Graphviz
DOT files (one per process) next to this script for rendering the
figures offline.

Run with::

    python examples/flowmark_mining.py [output_dir]
"""

import sys
from pathlib import Path

from repro.analysis.metrics import recovery_metrics
from repro.analysis.tables import TextTable
from repro.core.miner import ProcessMiner
from repro.datasets.flowmark import FLOWMARK_PROCESS_NAMES, flowmark_dataset
from repro.graphs.render import to_ascii, to_dot


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    table = TextTable(
        ["process", "vertices", "edges", "executions", "verdict"],
        title="Simulated Flowmark datasets (paper Table 3 shapes)",
    )
    for name in FLOWMARK_PROCESS_NAMES:
        dataset = flowmark_dataset(name, seed=11)
        result = ProcessMiner().mine(dataset.log)
        metrics = recovery_metrics(
            dataset.model.graph, result.graph, log=dataset.log
        )
        table.add_row(
            [
                name,
                dataset.model.activity_count,
                dataset.model.edge_count,
                len(dataset.log),
                metrics.verdict,
            ]
        )
        dot_path = out_dir / f"{name}.dot"
        dot_path.write_text(to_dot(result.graph, name=name))
        print(f"--- {name} (mined graph; DOT written to {dot_path})")
        print(to_ascii(result.graph))
        print()
    print(table.render())


if __name__ == "__main__":
    main()
