#!/usr/bin/env python
"""Quickstart: mine a process model graph from a tiny workflow log.

Reproduces the worked examples of the paper (Sections 3-5): the same logs,
the same published mined graphs, using the high-level ``ProcessMiner``.

Run with::

    python examples/quickstart.py
"""

from repro import EventLog, ProcessMiner
from repro.graphs.render import to_ascii


def mine_and_print(title: str, sequences: list) -> None:
    """Mine one log and print the algorithm used plus the graph."""
    log = EventLog.from_sequences(sequences)
    result = ProcessMiner().mine(log)
    print(f"--- {title}")
    print(f"log:        {', '.join(''.join(s) for s in sequences)}")
    print(f"algorithm:  {result.algorithm}")
    print(to_ascii(result.graph))
    print()


def main() -> None:
    # Example 6 (Section 3): every activity in every execution, so the
    # miner dispatches to Algorithm 1 and finds the *minimal* conformal
    # graph -- compare with Figure 3 of the paper.
    mine_and_print(
        "Example 6 - Algorithm 1 (Special DAG)",
        ["ABCDE", "ACDBE", "ACBDE"],
    )

    # Example 7 (Section 4): activities are optional; C, D, E form a
    # cycle of followings and come out mutually independent -- compare
    # with Figure 4.
    mine_and_print(
        "Example 7 - Algorithm 2 (General DAG)",
        ["ABCF", "ACDF", "ADEF", "AECF"],
    )

    # Example 8 (Section 5): repeated activities mark a loop; the miner
    # relabels instances, mines, and merges -- compare with Figure 6.
    mine_and_print(
        "Example 8 - Algorithm 3 (Cyclic graphs)",
        ["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"],
    )


if __name__ == "__main__":
    main()
