#!/usr/bin/env python
"""Log analysis walkthrough: variants, timing, coverage, baselines.

Shows the analyst-facing side of the library on one simulated Flowmark
log: inspect the distinct behaviours (variants), the timing profile,
how thoroughly the log covers the deployed model's edges, and what the
related-work baselines would have reported instead of a process graph.

Run with::

    python examples/log_analysis.py
"""

from repro.analysis.coverage import edge_coverage
from repro.baselines.ktails import ktails_automaton
from repro.baselines.sequential import maximal_sequential_patterns
from repro.datasets.flowmark import flowmark_dataset
from repro.logs.filters import format_variants
from repro.logs.timing import busiest_activities, format_timing_report


def main() -> None:
    dataset = flowmark_dataset("Pend_Block", seed=11)
    model, log = dataset.model, dataset.log

    print(f"=== {model.name}: {len(log)} executions")
    print()

    print("=== variants")
    print(format_variants(log))
    print()

    print("=== timing")
    print(format_timing_report(log))
    print()

    print("=== busiest activities")
    for activity, busy in busiest_activities(log, top=3):
        print(f"  {activity:<10} total busy time {busy:8.1f}")
    print()

    print("=== model edge coverage")
    print(edge_coverage(model.graph, log).report())
    print()

    print("=== what sequential-pattern mining would report instead")
    for pattern in maximal_sequential_patterns(log, min_support=0.25):
        print(f"  {pattern}")
    print()

    automaton = ktails_automaton(log, k=2)
    print(
        "=== what FSM discovery would report instead: "
        f"{automaton.state_count} states, "
        f"{automaton.transition_count} transitions "
        f"(vs {model.activity_count} activities / "
        f"{model.edge_count} edges in the process graph)"
    )


if __name__ == "__main__":
    main()
