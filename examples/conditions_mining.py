#!/usr/bin/env python
"""Conditions mining (Section 7): learn the Boolean functions on edges.

Simulates a process whose control flow branches on activity outputs,
mines the graph with Algorithm 2, learns every edge's condition with the
decision-tree learner, and prints the rules next to the ground truth.

Run with::

    python examples/conditions_mining.py [executions]
"""

import sys

from repro.core.conditions import ConditionsMiner
from repro.core.general_dag import mine_general_dag
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_ge, attr_gt, attr_le, attr_lt


def build_claim_process():
    """A small insurance-claim process with output-driven routing."""
    return (
        ProcessBuilder("claims")
        .edge("Receive", "Assess")
        .edge("Assess", "FastTrack", condition=attr_lt(0, 25))
        .edge("Assess", "Standard",
              condition=attr_ge(0, 25) & attr_le(0, 75))
        .edge("Assess", "Escalate", condition=attr_gt(0, 75))
        .edge("FastTrack", "Pay")
        .edge("Standard", "Pay")
        .edge("Escalate", "Review")
        .edge("Review", "Pay")
        .edge("Pay", "Close")
        .build()
    )


def main() -> None:
    executions = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    model = build_claim_process()
    log = WorkflowSimulator(
        model, SimulationConfig(seed=5)
    ).run_log(executions)

    graph = mine_general_dag(log)
    print(f"mined graph: {graph.node_count} activities, "
          f"{graph.edge_count} edges "
          f"(ground truth has {model.edge_count})")
    print()

    mined_conditions = ConditionsMiner().mine(log, graph)
    print("edge conditions (learned vs. ground truth):")
    for edge in sorted(mined_conditions):
        mined = mined_conditions[edge]
        truth = (
            model.condition(*edge) if model.has_edge(*edge) else "(n/a)"
        )
        print(f"  {edge[0]} -> {edge[1]}")
        print(f"    learned: {mined.condition}")
        print(f"    truth:   {truth}")
        print(
            f"    n={mined.training_size}, "
            f"positives={mined.positive_fraction:.0%}, "
            f"train accuracy={mined.training_accuracy:.1%}"
        )
    print()
    print(
        "Note: edges whose target runs in every execution (joins like\n"
        "Pay) learn 'true' — Section 7's training labels are activity\n"
        "presence, which cannot distinguish which incoming edge fired."
    )


if __name__ == "__main__":
    main()
