"""Tests for layered rendering, log sampling, and the newest CLI flags."""

import pytest

from repro.cli import main
from repro.graphs.digraph import DiGraph
from repro.graphs.render import to_layered_ascii
from repro.logs.event_log import EventLog
from repro.model.builder import ProcessBuilder
from repro.model.serialize import save_model


class TestLayeredAscii:
    def test_layers_follow_longest_path_depth(self):
        g = DiGraph(
            edges=[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D"),
                   ("A", "D")]
        )
        text = to_layered_ascii(g)
        first_line = text.splitlines()[0]
        assert first_line == "[A]  ->  [B C]  ->  [D]"

    def test_single_node(self):
        assert to_layered_ascii(DiGraph(nodes=["X"])) == "[X]"

    def test_chain(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        assert to_layered_ascii(g).splitlines()[0] == (
            "[A]  ->  [B]  ->  [C]"
        )

    def test_cyclic_graph_raises(self):
        from repro.errors import CycleError

        g = DiGraph(edges=[("A", "B"), ("B", "A")])
        with pytest.raises(CycleError):
            to_layered_ascii(g)

    def test_custom_labels(self):
        g = DiGraph(edges=[(("A", 1), ("B", 1))])
        text = to_layered_ascii(g, label=lambda n: f"{n[0]}{n[1]}")
        assert "[A1]  ->  [B1]" in text


class TestLogSample:
    def make_log(self, n=20):
        return EventLog.from_sequences(
            [["A", f"T{i % 4}", "Z"] for i in range(n)],
            process_name="sampled",
        )

    def test_sample_size(self):
        log = self.make_log()
        sampled = log.sample(7, seed=1)
        assert len(sampled) == 7
        assert sampled.process_name == "sampled"

    def test_sample_preserves_order(self):
        log = self.make_log()
        sampled = log.sample(10, seed=2)
        ids = [e.execution_id for e in sampled]
        original = [e.execution_id for e in log]
        positions = [original.index(i) for i in ids]
        assert positions == sorted(positions)

    def test_oversample_returns_whole_log(self):
        log = self.make_log(5)
        assert len(log.sample(50)) == 5

    def test_deterministic(self):
        log = self.make_log()
        a = [e.execution_id for e in log.sample(6, seed=9)]
        b = [e.execution_id for e in log.sample(6, seed=9)]
        assert a == b

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            self.make_log().sample(-1)


class TestNewCliFlags:
    @pytest.fixture
    def setup_files(self, tmp_path, capsys):
        model = (
            ProcessBuilder("demo")
            .edge("A", "B")
            .edge("B", "C")
            .edge("A", "C")
            .build()
        )
        model_path = tmp_path / "model.txt"
        save_model(model, model_path)
        log_path = tmp_path / "log.tsv"
        assert main(
            ["simulate", str(model_path), str(log_path),
             "--executions", "30"]
        ) == 0
        capsys.readouterr()
        return model_path, log_path

    def test_exact_minimize_flag(self, setup_files, capsys):
        _, log_path = setup_files
        assert main(
            ["mine", str(log_path), "--exact-minimize"]
        ) == 0
        out = capsys.readouterr().out
        assert "# exact minimization:" in out
        # The A->C shortcut is never needed (B always runs): minimized
        # output drops it.
        assert "A -> B" in out

    def test_coverage_command(self, setup_files, capsys):
        model_path, log_path = setup_files
        assert main(["coverage", str(model_path), str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "edge coverage:" in out
        # A->C is compatible but never required.
        assert "required=0" in out
