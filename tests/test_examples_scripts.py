"""Smoke tests: every example script runs end-to-end.

The examples double as living documentation; these tests keep them
green by importing each script and running its ``main()`` with
controlled argv, asserting on headline output lines.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(name: str, argv, capsys) -> str:
    module = load_example(name)
    old_argv = sys.argv
    sys.argv = [f"{name}.py", *argv]
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExampleScripts:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", [], capsys)
        assert "Algorithm 1 (Special DAG)" in out
        assert "Algorithm 3 (Cyclic graphs)" in out
        assert "A -> B, C" in out

    def test_synthetic_recovery(self, capsys):
        out = run_example("synthetic_recovery", ["10"], capsys)
        assert "edges found" in out
        assert "Expected shape" in out

    def test_flowmark_mining(self, tmp_path, capsys):
        out = run_example("flowmark_mining", [str(tmp_path)], capsys)
        assert "Upload_and_Notify" in out
        assert (tmp_path / "Local_Swap.dot").exists()

    def test_noisy_logs(self, capsys):
        out = run_example("noisy_logs", ["0.05", "150"], capsys)
        assert "balance threshold" in out
        assert "dependencies intact" in out

    def test_conditions_mining(self, capsys):
        out = run_example("conditions_mining", ["150"], capsys)
        assert "Assess -> Escalate" in out
        assert "learned:" in out

    def test_cyclic_processes(self, capsys):
        out = run_example("cyclic_processes", ["40"], capsys)
        assert "rework loop recovered: True" in out

    def test_model_evolution(self, capsys):
        out = run_example("model_evolution", [], capsys)
        assert "added activities ['Compliance']" in out
        assert "v2 admits the drifted log: True" in out

    def test_log_analysis(self, capsys):
        out = run_example("log_analysis", [], capsys)
        assert "variants" in out
        assert "edge coverage" in out
        assert "FSM discovery" in out

    def test_case_study(self, capsys):
        out = run_example("case_study", [], capsys)
        assert "exact recovery: True" in out
        assert "QA/Repack loop recovered: True" in out
        assert "added activities ['Fraud_Check']" in out


class TestRandomCyclicGraph:
    def test_requested_loops_added(self):
        from repro.datasets.cyclic import loop_edges, random_cyclic_graph
        from repro.graphs.traversal import is_acyclic

        graph = random_cyclic_graph(10, n_loops=2, seed=3)
        assert not is_acyclic(graph)
        assert len(loop_edges(graph)) >= 1

    def test_zero_loops_is_dag(self):
        from repro.datasets.cyclic import random_cyclic_graph
        from repro.graphs.traversal import is_acyclic

        assert is_acyclic(random_cyclic_graph(10, n_loops=0, seed=3))

    def test_deterministic(self):
        from repro.datasets.cyclic import random_cyclic_graph

        a = random_cyclic_graph(8, n_loops=1, seed=5)
        b = random_cyclic_graph(8, n_loops=1, seed=5)
        assert a.edge_set() == b.edge_set()

    def test_generates_mineable_traces(self):
        from repro.core.cyclic import mine_cyclic
        from repro.datasets.cyclic import (
            CyclicTraceGenerator,
            random_cyclic_graph,
        )

        graph = random_cyclic_graph(8, n_loops=1, seed=4)
        generator = CyclicTraceGenerator(
            graph, loop_probability=0.6, max_loop_iterations=2, seed=5
        )
        log = generator.generate(60)
        mined = mine_cyclic(log)
        assert mined.node_count > 0
