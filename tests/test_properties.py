"""Property-based tests (hypothesis) on graph and mining invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conformance import check_conformance
from repro.core.dependency import dependency_relation
from repro.core.general_dag import mine_general_dag
from repro.core.special_dag import mine_special_dag
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import strongly_connected_components
from repro.graphs.transitive import (
    closure_equal,
    is_transitively_reduced,
    transitive_closure,
    transitive_reduction,
)
from repro.graphs.traversal import has_path, is_acyclic, topological_sort
from repro.logs.event_log import EventLog


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def random_dags(draw, max_nodes=8):
    """A random DAG over a prefix of the alphabet (forward edges only)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [chr(ord("a") + i) for i in range(n)]
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.append((nodes[i], nodes[j]))
    return DiGraph(nodes=nodes, edges=edges)


@st.composite
def random_digraphs(draw, max_nodes=7):
    """A random directed graph, possibly cyclic, no self-loops."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [chr(ord("a") + i) for i in range(n)]
    edges = []
    for i in range(n):
        for j in range(n):
            if i != j and draw(
                st.booleans()
            ):
                edges.append((nodes[i], nodes[j]))
    return DiGraph(nodes=nodes, edges=edges)


@st.composite
def permutation_logs(draw, max_activities=6, max_executions=8):
    """Logs where every execution contains every activity exactly once —
    Algorithm 1's setting.  Interior activities are shuffled; the process'
    initiating and terminating activities frame each execution, matching
    the paper's single-source/single-sink model."""
    n = draw(st.integers(min_value=0, max_value=max_activities))
    interior = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        sequence = list(interior)
        rng.shuffle(sequence)
        sequences.append(["S", *sequence, "Z"])
    return EventLog.from_sequences(sequences)


@st.composite
def subset_logs(draw, max_activities=6, max_executions=8):
    """Logs whose executions share first/last activities but may skip
    interior ones — Algorithm 2's setting."""
    n = draw(st.integers(min_value=3, max_value=max_activities))
    interior = [chr(ord("A") + i) for i in range(1, n - 1)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        chosen = [a for a in interior if rng.random() < 0.7]
        rng.shuffle(chosen)
        sequences.append(["S", *chosen, "Z"])
    return EventLog.from_sequences(sequences)


# ---------------------------------------------------------------------------
# Graph properties
# ---------------------------------------------------------------------------
class TestGraphProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_reduction_preserves_closure_and_is_minimal(self, dag):
        reduced = transitive_reduction(dag)
        assert closure_equal(dag, reduced)
        assert is_transitively_reduced(reduced)
        assert reduced.edge_count <= dag.edge_count

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_reduction_is_idempotent(self, dag):
        once = transitive_reduction(dag)
        twice = transitive_reduction(once)
        assert once.edge_set() == twice.edge_set()

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_reduction_is_subset_of_input(self, dag):
        reduced = transitive_reduction(dag)
        assert reduced.edge_set() <= dag.edge_set()

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_closure_matches_path_reachability(self, dag):
        closure = transitive_closure(dag)
        for a in dag.nodes():
            for b in dag.nodes():
                if a == b:
                    continue
                assert closure.has_edge(a, b) == has_path(dag, a, b)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_topological_sort_is_valid(self, dag):
        order = topological_sort(dag)
        assert sorted(order) == sorted(dag.nodes())
        position = {node: i for i, node in enumerate(order)}
        for a, b in dag.edges():
            assert position[a] < position[b]

    @given(random_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_scc_partitions_and_mutual_reachability(self, graph):
        components = strongly_connected_components(graph)
        seen = [n for c in components for n in c]
        assert sorted(seen) == sorted(graph.nodes())
        assert len(seen) == len(set(seen))
        closure = transitive_closure(graph)
        for component in components:
            members = sorted(component)
            for a in members:
                for b in members:
                    if a != b:
                        assert closure.has_edge(a, b)
                        assert closure.has_edge(b, a)

    @given(random_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_condensation_is_acyclic(self, graph):
        from repro.graphs.scc import condensation

        dag, _ = condensation(graph)
        assert is_acyclic(dag)


# ---------------------------------------------------------------------------
# Mining properties
# ---------------------------------------------------------------------------
class TestMiningProperties:
    @given(permutation_logs())
    @settings(max_examples=40, deadline=None)
    def test_algorithm1_output_conformal_and_minimal(self, log):
        mined = mine_special_dag(log)
        assert is_acyclic(mined)
        assert is_transitively_reduced(mined)
        report = check_conformance(mined, log)
        assert report.is_conformal, report.violations()
        # Theorem 4: the output equals the reduced dependency order.
        relation = dependency_relation(log)
        assert mined.edge_set() == relation.minimal_graph().edge_set()

    @given(permutation_logs())
    @settings(max_examples=30, deadline=None)
    def test_algorithm1_insensitive_to_log_order(self, log):
        mined = mine_special_dag(log)
        reversed_log = EventLog(list(reversed(log.executions)))
        assert mined.edge_set() == mine_special_dag(
            reversed_log
        ).edge_set()

    @given(subset_logs())
    @settings(max_examples=40, deadline=None)
    def test_algorithm2_output_conformal(self, log):
        mined = mine_general_dag(log)
        assert is_acyclic(mined)
        report = check_conformance(mined, log)
        assert report.is_conformal, report.violations()

    @given(subset_logs())
    @settings(max_examples=30, deadline=None)
    def test_algorithm2_idempotent_on_duplicated_log(self, log):
        # Duplicating every execution adds no information.
        doubled = EventLog(log.executions + log.executions)
        assert mine_general_dag(log).edge_set() == mine_general_dag(
            doubled
        ).edge_set()

    @given(permutation_logs())
    @settings(max_examples=30, deadline=None)
    def test_algorithm2_equals_algorithm1_on_complete_logs(self, log):
        assert mine_general_dag(log).edge_set() == mine_special_dag(
            log
        ).edge_set()

    @given(subset_logs())
    @settings(max_examples=30, deadline=None)
    def test_cyclic_miner_matches_algorithm2_without_repetitions(
        self, log
    ):
        from repro.core.cyclic import mine_cyclic

        assert mine_cyclic(log).edge_set() == mine_general_dag(
            log
        ).edge_set()
