"""Tests for pairwise-feature conditions mining (Example 1's shape)."""

import pytest

from repro.core.conditions import ConditionsMiner
from repro.core.general_dag import mine_general_dag
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.model.builder import ProcessBuilder
from repro.model.conditions import (
    Comparison,
    ParamRef,
    attr_gt,
    param,
    parse_condition,
)


def example1_style_model():
    """Example 1's condition on the branch: o[0] > 0 and o[1] < o[0]."""
    condition = attr_gt(0, 0) & Comparison(1, "<", param(0))
    return (
        ProcessBuilder("example1-style")
        .activity("C", arity=2, low=0, high=100)
        .edge("A", "C")
        .edge("C", "D", condition=condition)
        .edge("C", "E")
        .edge("D", "E")
        .build()
    )


@pytest.fixture(scope="module")
def logs():
    model = example1_style_model()
    train = WorkflowSimulator(
        model, SimulationConfig(seed=11)
    ).run_log(400)
    holdout = WorkflowSimulator(
        model, SimulationConfig(seed=12)
    ).run_log(200)
    return model, train, holdout


class TestParamRefOffsets:
    def test_offset_evaluation(self):
        condition = Comparison(0, "<=", ParamRef(1, 5.0))
        assert condition.evaluate((10.0, 6.0))   # 10 <= 11
        assert not condition.evaluate((12.0, 6.0))

    def test_offset_rendering(self):
        assert str(Comparison(0, "<=", ParamRef(1, 5.0))) == (
            "o[0] <= o[1] + 5"
        )
        assert str(Comparison(0, ">", ParamRef(1, -2.5))) == (
            "o[0] > o[1] - 2.5"
        )

    def test_offset_parse_roundtrip(self):
        for text in ("o[0] <= o[1] + 5", "o[0] > o[1] - 2.5"):
            assert str(parse_condition(text)) == text

    def test_zero_offset_renders_plain(self):
        assert str(Comparison(0, "<", ParamRef(1))) == "o[0] < o[1]"


class TestPairwiseLearning:
    def test_axis_tree_cannot_learn_example1(self, logs):
        model, train, holdout = logs
        mined = ConditionsMiner(pairwise=False).mine_edge(
            train, ("C", "D")
        )
        accuracy = _holdout_accuracy(mined.condition, holdout)
        assert accuracy < 0.97  # depth-8 axis splits approximate poorly

    def test_pairwise_tree_learns_example1(self, logs):
        model, train, holdout = logs
        mined = ConditionsMiner(pairwise=True).mine_edge(
            train, ("C", "D")
        )
        assert mined.learnable
        assert mined.training_accuracy >= 0.99
        accuracy = _holdout_accuracy(mined.condition, holdout)
        assert accuracy >= 0.98

    def test_learned_condition_uses_param_reference(self, logs):
        model, train, _ = logs
        mined = ConditionsMiner(pairwise=True).mine_edge(
            train, ("C", "D")
        )
        assert "o[" in str(mined.condition)
        # The rendered condition references a parameter on some RHS.
        assert _mentions_param_ref(mined.condition)

    def test_pairwise_harmless_on_axis_conditions(self):
        model = (
            ProcessBuilder("axis")
            .edge("A", "B", condition=attr_gt(0, 50))
            .edge("A", "C")
            .edge("B", "D")
            .edge("C", "D")
            .build()
        )
        train = WorkflowSimulator(
            model, SimulationConfig(seed=4)
        ).run_log(300)
        mined = ConditionsMiner(pairwise=True).mine_edge(
            train, ("A", "B")
        )
        assert mined.training_accuracy >= 0.99

    def test_full_graph_mining_with_pairwise(self, logs):
        model, train, _ = logs
        graph = mine_general_dag(train)
        conditions = ConditionsMiner(pairwise=True).mine(train, graph)
        assert set(conditions) == graph.edge_set()


def _holdout_accuracy(condition, holdout) -> float:
    total = hits = 0
    for execution in holdout:
        output = execution.last_output_of("C")
        if output is None:
            continue
        total += 1
        hits += condition.evaluate(output) == (
            "D" in execution.activities
        )
    return hits / total if total else 0.0


def _mentions_param_ref(condition) -> bool:
    from repro.model.conditions import And, Not, Or

    if isinstance(condition, Comparison):
        return isinstance(condition.rhs, ParamRef)
    if isinstance(condition, (And, Or)):
        return _mentions_param_ref(condition.left) or _mentions_param_ref(
            condition.right
        )
    if isinstance(condition, Not):
        return _mentions_param_ref(condition.operand)
    return False
