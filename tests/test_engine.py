"""Unit tests for repro.engine (state, scheduler, simulator)."""

import pytest

from repro.core.conformance import is_consistent
from repro.engine.scheduler import AgentPool, EventQueue, SimulationClock
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.engine.state import DEAD, DONE, PENDING, READY, RunState
from repro.errors import InvalidProcessError
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_gt, attr_le, never


@pytest.fixture
def diamond_model():
    return (
        ProcessBuilder("diamond")
        .edge("A", "B")
        .edge("A", "C")
        .edge("B", "D")
        .edge("C", "D")
        .build()
    )


class TestSimulationClock:
    def test_monotone(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        clock.advance_to(3.0)  # ignored
        assert clock.now == 5.0

    def test_issue_unique_increasing(self):
        clock = SimulationClock()
        stamps = [clock.issue() for _ in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 10


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.0, lambda: seen.append("late"))
        queue.schedule(1.0, lambda: seen.append("early"))
        while queue:
            _, action = queue.pop()
            action()
        assert seen == ["early", "late"]

    def test_ties_fifo(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, lambda: seen.append("first"))
        queue.schedule(1.0, lambda: seen.append("second"))
        queue.pop()[1]()
        queue.pop()[1]()
        assert seen == ["first", "second"]

    def test_empty_pop(self):
        assert EventQueue().pop() is None


class TestAgentPool:
    def test_capacity(self):
        pool = AgentPool(2)
        assert pool.acquire()
        assert pool.acquire()
        assert not pool.acquire()
        pool.release()
        assert pool.acquire()

    def test_release_without_acquire(self):
        with pytest.raises(RuntimeError):
            AgentPool(1).release()

    def test_backlog_fifo(self):
        pool = AgentPool(1)
        pool.enqueue("X")
        pool.enqueue("Y")
        assert pool.next_waiting() == "X"
        assert pool.next_waiting() == "Y"
        assert pool.next_waiting() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AgentPool(0)


class TestRunState:
    def test_join_waits_for_all_verdicts(self, diamond_model):
        state = RunState(diamond_model)
        assert state.record_verdict(("B", "D"), True) is None
        assert state.record_verdict(("C", "D"), False) == READY

    def test_all_false_verdicts_kill(self, diamond_model):
        state = RunState(diamond_model)
        state.record_verdict(("B", "D"), False)
        assert state.record_verdict(("C", "D"), False) == DEAD
        assert state.status["D"] == DEAD

    def test_lifecycle(self, diamond_model):
        state = RunState(diamond_model)
        state.mark_source_ready()
        state.mark_running("A")
        state.mark_done("A", (1.0, 2.0))
        assert state.status["A"] == DONE
        assert state.outputs["A"] == (1.0, 2.0)
        assert not state.is_finished()
        assert "B" in state.pending_activities()

    def test_invalid_transitions(self, diamond_model):
        state = RunState(diamond_model)
        with pytest.raises(ValueError):
            state.mark_running("A")  # still pending
        state.mark_source_ready()
        state.mark_running("A")
        with pytest.raises(ValueError):
            state.mark_running("A")
        with pytest.raises(ValueError):
            state.mark_done("B", ())

    def test_initial_statuses(self, diamond_model):
        state = RunState(diamond_model)
        assert all(s == PENDING for s in state.status.values())


class TestWorkflowSimulator:
    def test_chain_runs_in_order(self):
        model = ProcessBuilder("chain").chain("A", "B", "C").build()
        log = WorkflowSimulator(model).run_log(5)
        assert len(log) == 5
        assert log.sequences() == [["A", "B", "C"]] * 5

    def test_parallel_branches_both_run(self, diamond_model):
        execution = WorkflowSimulator(diamond_model).run_once()
        assert execution.activities == {"A", "B", "C", "D"}
        assert execution.first_activity == "A"
        assert execution.last_activity == "D"

    def test_parallel_branches_not_universally_ordered(self, diamond_model):
        # With two agents B and C run concurrently: no execution may
        # claim an ordered pair in the same direction every time, or the
        # miner would see a spurious dependency.
        config = SimulationConfig(agents=2, duration_jitter=0.5, seed=1)
        log = WorkflowSimulator(diamond_model, config).run_log(40)
        b_before_c = sum(
            1 for e in log if ("B", "C") in set(e.ordered_pairs())
        )
        overlaps = sum(
            1 for e in log if ("B", "C") in set(e.overlapping_pairs())
        )
        assert b_before_c < 40
        assert overlaps > 0
        # And the miner indeed reports B, C independent.
        from repro.core.general_dag import mine_general_dag

        mined = mine_general_dag(log)
        assert not mined.has_edge("B", "C")
        assert not mined.has_edge("C", "B")

    def test_single_agent_serializes(self, diamond_model):
        config = SimulationConfig(agents=1, seed=0)
        log = WorkflowSimulator(diamond_model, config).run_log(10)
        for execution in log:
            instances = execution.instances
            for first, second in zip(instances, instances[1:]):
                assert first.end <= second.start

    def test_condition_false_kills_branch(self):
        model = (
            ProcessBuilder("cond")
            .edge("A", "B", condition=never())
            .edge("A", "C")
            .edge("B", "D")
            .edge("C", "D")
            .build()
        )
        execution = WorkflowSimulator(model).run_once()
        assert execution.activities == {"A", "C", "D"}

    def test_dead_path_propagates_through_chain(self):
        model = (
            ProcessBuilder("deadchain")
            .edge("A", "B", condition=never())
            .edge("B", "C")
            .edge("C", "D")
            .edge("A", "D")
            .build()
        )
        execution = WorkflowSimulator(model).run_once()
        assert execution.activities == {"A", "D"}

    def test_conditions_drive_branching(self):
        model = (
            ProcessBuilder("branch")
            .edge("A", "High", condition=attr_gt(0, 50))
            .edge("A", "Low", condition=attr_le(0, 50))
            .edge("High", "Z")
            .edge("Low", "Z")
            .build()
        )
        log = WorkflowSimulator(
            model, SimulationConfig(seed=3)
        ).run_log(60)
        highs = sum(1 for e in log if "High" in e.activities)
        lows = sum(1 for e in log if "Low" in e.activities)
        assert highs + lows >= 60  # some runs may take both? no: exclusive
        assert highs > 5 and lows > 5
        for execution in log:
            assert execution.last_activity == "Z"

    def test_outputs_recorded_on_end_events(self):
        model = (
            ProcessBuilder("out")
            .edge("A", "B")
            .constant_output("A", (7.0, 9.0))
            .build()
        )
        execution = WorkflowSimulator(model).run_once()
        assert execution.last_output_of("A") == (7.0, 9.0)

    def test_every_execution_consistent_with_model(self, diamond_model):
        config = SimulationConfig(agents=3, duration_jitter=0.9, seed=5)
        log = WorkflowSimulator(diamond_model, config).run_log(30)
        graph = diamond_model.graph
        for execution in log:
            assert (
                is_consistent(graph, execution, "A", "D") is None
            ), execution.sequence

    def test_reproducible_under_seed(self, diamond_model):
        config = SimulationConfig(seed=42)
        log1 = WorkflowSimulator(diamond_model, config).run_log(5)
        log2 = WorkflowSimulator(diamond_model, config).run_log(5)
        assert log1.sequences() == log2.sequences()
        records1 = [r.timestamp for r in log1.records()]
        records2 = [r.timestamp for r in log2.records()]
        assert records1 == records2

    def test_cyclic_model_rejected(self):
        from repro.errors import InvalidProcessError
        from repro.model.activity import Activity
        from repro.model.process import ProcessModel

        model = ProcessModel(
            "cyclic",
            activities=[Activity(n) for n in "ABCD"],
            edges=[("A", "B"), ("B", "C"), ("C", "B"), ("C", "D")],
            source="A",
            sink="D",
        )
        with pytest.raises(InvalidProcessError):
            WorkflowSimulator(model)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SimulationConfig(agents=0)
        with pytest.raises(ValueError):
            SimulationConfig(duration_jitter=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(duration_log_range=(0.0, 1.0))

    def test_log_uniform_durations(self, diamond_model):
        config = SimulationConfig(
            duration_log_range=(0.1, 10.0), seed=7
        )
        log = WorkflowSimulator(diamond_model, config).run_log(20)
        durations = [
            inst.end - inst.start
            for execution in log
            for inst in execution.instances
        ]
        assert min(durations) < 0.5
        assert max(durations) > 2.0

    def test_run_log_negative(self, diamond_model):
        with pytest.raises(ValueError):
            WorkflowSimulator(diamond_model).run_log(-1)
