"""Unit tests for repro.model.conditions (the expression AST)."""

import pytest

from repro.errors import ConditionError
from repro.model.conditions import (
    Always,
    And,
    Comparison,
    Never,
    Not,
    Or,
    attr_ge,
    attr_gt,
    attr_le,
    attr_lt,
    param,
    parse_condition,
)


class TestAtoms:
    def test_always_and_never(self):
        assert Always().evaluate(()) is True
        assert Never().evaluate(()) is False
        assert str(Always()) == "true"
        assert str(Never()) == "false"

    def test_comparison_operators(self):
        output = (10.0, 20.0)
        assert Comparison(0, "<", 15).evaluate(output)
        assert Comparison(0, "<=", 10).evaluate(output)
        assert Comparison(1, ">", 15).evaluate(output)
        assert Comparison(1, ">=", 20).evaluate(output)
        assert Comparison(0, "==", 10).evaluate(output)
        assert Comparison(0, "!=", 11).evaluate(output)
        assert not Comparison(0, ">", 10).evaluate(output)

    def test_comparison_against_parameter(self):
        condition = Comparison(0, "<", param(1))
        assert condition.evaluate((1.0, 2.0))
        assert not condition.evaluate((3.0, 2.0))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionError):
            Comparison(0, "~", 3)

    def test_negative_index_rejected(self):
        with pytest.raises(ConditionError):
            Comparison(-1, "<", 3)

    def test_out_of_range_evaluation(self):
        with pytest.raises(ConditionError):
            Comparison(2, "<", 3).evaluate((1.0,))
        with pytest.raises(ConditionError):
            Comparison(0, "<", param(5)).evaluate((1.0,))

    def test_helpers(self):
        assert attr_lt(0, 5).evaluate((4.0,))
        assert attr_le(0, 4).evaluate((4.0,))
        assert attr_gt(0, 3).evaluate((4.0,))
        assert attr_ge(0, 4).evaluate((4.0,))


class TestCombinators:
    def test_and_or_not(self):
        high = attr_gt(0, 10)
        low = attr_lt(0, 20)
        band = high & low
        assert band.evaluate((15.0,))
        assert not band.evaluate((25.0,))
        either = attr_lt(0, 5) | attr_gt(0, 25)
        assert either.evaluate((30.0,))
        assert not either.evaluate((15.0,))
        assert (~high).evaluate((5.0,))

    def test_operator_sugar_builds_ast(self):
        expr = attr_gt(0, 1) & attr_lt(1, 2) | ~attr_ge(0, 3)
        assert isinstance(expr, Or)
        assert isinstance(expr.left, And)
        assert isinstance(expr.right, Not)

    def test_string_rendering_is_paper_style(self):
        condition = attr_gt(0, 0) & attr_lt(1, 50)
        assert str(condition) == "(o[0] > 0 and o[1] < 50)"

    def test_conditions_hashable(self):
        # Mined conditions serve as dict keys in model construction.
        assert hash(attr_gt(0, 3)) == hash(attr_gt(0, 3))
        assert attr_gt(0, 3) == attr_gt(0, 3)
        assert attr_gt(0, 3) != attr_gt(0, 4)

    def test_callable(self):
        assert attr_gt(0, 1)((5.0,))


class TestParsing:
    @pytest.mark.parametrize(
        "text",
        [
            "true",
            "false",
            "o[0] > 5",
            "o[1] <= 3",
            "(o[0] > 0 and o[1] < 50)",
            "(o[0] > 0 or (not o[1] >= 2))",
            "o[0] < o[1]",
            "o[0] == 7",
            "o[0] != 7",
        ],
    )
    def test_roundtrip(self, text):
        condition = parse_condition(text)
        assert str(parse_condition(str(condition))) == str(condition)

    def test_parse_evaluates_correctly(self):
        condition = parse_condition("(o[0] > 0 and o[1] < o[0])")
        assert condition.evaluate((10.0, 5.0))
        assert not condition.evaluate((10.0, 15.0))

    def test_parse_negative_constant(self):
        condition = parse_condition("o[0] > -5")
        assert condition.evaluate((0.0,))

    def test_parse_boolean_constants(self):
        assert parse_condition("True").evaluate(())
        assert not parse_condition("False").evaluate(())

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "o[0] +",
            "x[0] > 5",
            "o[0] > 'text'",
            "o[0] in (1, 2)",
            "1 < o[0] < 2",
            "f(o[0])",
            "o[zzz] > 1",
        ],
    )
    def test_parse_rejects_bad_syntax(self, bad):
        with pytest.raises(ConditionError):
            parse_condition(bad)
