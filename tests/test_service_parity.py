"""Property: the service's interleaved multi-tenant ingest mines the
same model as per-tenant batch mining.

The daemon accepts event batches from many processes in arbitrary
interleavings, chunked at arbitrary request boundaries, with the
records of one tenant's executions themselves interleaved.  The claim
under test is that none of that scheduling is observable: after a
flush, every tenant's state envelope is byte-identical to what ``mine
--stream --state-out`` produces for that tenant's records alone — the
merge-associativity of :class:`~repro.core.state.MiningState` carried
through the wire codec, the ingest stream and the durable session.
"""

import random
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.state import fold_executions, state_envelope
from repro.logs.codec import write_log_file
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.logs.jsonl import record_to_json
from repro.service.registry import TenantConfig, TenantRegistry


@st.composite
def tenant_streams(draw):
    """2-3 tenants, each with a small random log, plus a chunk size."""
    n_tenants = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=9999))
    rng = random.Random(seed)
    streams = {}
    for index in range(n_tenants):
        alphabet = [
            f"T{i}"
            for i in range(draw(st.integers(min_value=1, max_value=5)))
        ]
        executions = []
        for number in range(draw(st.integers(min_value=1, max_value=6))):
            length = rng.randint(1, 6)
            executions.append(
                Execution.from_sequence(
                    [rng.choice(alphabet) for _ in range(length)],
                    execution_id=f"e{number:03d}",
                    start_time=float(number),
                )
            )
        streams[f"proc-{index}"] = executions
    chunk_size = draw(st.integers(min_value=1, max_value=7))
    return streams, chunk_size


def interleaved_lines(process, executions):
    """The tenant's wire lines, records round-robined across executions."""
    queues = [list(execution.records) for execution in executions]
    lines = []
    while any(queues):
        for queue in queues:
            if queue:
                lines.append(record_to_json(queue.pop(0), process))
    return lines


def chunked(lines, size):
    return [lines[i : i + size] for i in range(0, len(lines), size)]


class TestInterleavedServiceParity:
    @given(tenant_streams())
    @settings(max_examples=25, deadline=None)
    def test_flushed_state_matches_stream_cli(self, case):
        streams, chunk_size = case
        with tempfile.TemporaryDirectory() as scratch:
            root = Path(scratch)
            registry = TenantRegistry(root / "data", TenantConfig())
            pending = {
                process: chunked(
                    interleaved_lines(process, executions), chunk_size
                )
                for process, executions in streams.items()
            }
            # Round-robin request batches across tenants until drained.
            while any(pending.values()):
                for process in sorted(pending):
                    if pending[process]:
                        tenant, _ = registry.get_or_create(process)
                        tenant.ingest(pending[process].pop(0))
            for process, executions in sorted(streams.items()):
                tenant = registry.get(process)
                tenant.flush()
                snapshot = tenant.fresh_snapshot()
                log_path = root / f"{process}.tsv"
                write_log_file(
                    EventLog(executions, process_name=process), log_path
                )
                state_out = root / f"{process}.state.json"
                assert (
                    main(
                        [
                            "mine",
                            str(log_path),
                            "--stream",
                            "--no-verify",
                            "--state-out",
                            str(state_out),
                        ]
                    )
                    == 0
                )
                assert (
                    snapshot.envelope == state_out.read_text()
                ), process
            registry.close_all()

    @given(tenant_streams())
    @settings(max_examples=25, deadline=None)
    def test_chunked_folds_merge_to_the_monolithic_state(self, case):
        """The library-level half: merge is associative over chunks."""
        streams, chunk_size = case
        for executions in streams.values():
            monolith = fold_executions(executions, labelled=True)
            merged = None
            for start in range(0, len(executions), chunk_size):
                part = fold_executions(
                    executions[start : start + chunk_size], labelled=True
                )
                merged = part if merged is None else merged.merge(part)
            assert merged is not None
            assert state_envelope(merged) == state_envelope(monolith)
