"""Unit tests for repro.logs.events and repro.logs.execution."""

import pytest

from repro.errors import MalformedExecutionError
from repro.logs.events import (
    END_EVENT,
    START_EVENT,
    EventRecord,
    end_event,
    start_event,
)
from repro.logs.execution import Execution


class TestEventRecord:
    def test_construction(self):
        record = EventRecord(1.5, "run-1", "A", START_EVENT)
        assert record.is_start and not record.is_end
        assert record.output is None

    def test_end_with_output(self):
        record = end_event("run-1", "A", 2.0, output=(1.0, 2.0))
        assert record.is_end
        assert record.output == (1.0, 2.0)

    def test_start_cannot_carry_output(self):
        with pytest.raises(ValueError, match="START"):
            EventRecord(1.0, "run", "A", START_EVENT, output=(1.0,))

    def test_bad_event_type(self):
        with pytest.raises(ValueError, match="START or END"):
            EventRecord(1.0, "run", "A", "MIDDLE")

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            EventRecord(1.0, "run", "", END_EVENT)
        with pytest.raises(ValueError):
            EventRecord(1.0, "", "A", END_EVENT)

    def test_ordering_is_time_major(self):
        early = start_event("run", "B", 1.0)
        late = start_event("run", "A", 2.0)
        assert sorted([late, early]) == [early, late]

    def test_shifted(self):
        record = start_event("run", "A", 1.0).shifted(2.5)
        assert record.timestamp == 3.5
        assert record.activity == "A"


class TestExecutionConstruction:
    def test_from_sequence(self):
        execution = Execution.from_sequence("ABC")
        assert execution.sequence == ["A", "B", "C"]
        assert len(execution) == 3
        assert execution.first_activity == "A"
        assert execution.last_activity == "C"

    def test_records_sorted_by_time(self):
        records = [
            end_event("run", "A", 1.0),
            start_event("run", "A", 0.0),
        ]
        execution = Execution("run", records)
        assert [r.event_type for r in execution.records] == [
            START_EVENT,
            END_EVENT,
        ]

    def test_mixed_execution_ids_rejected(self):
        records = [start_event("run-1", "A", 0.0)]
        with pytest.raises(MalformedExecutionError, match="mixed"):
            Execution("run-2", records)

    def test_end_without_start_rejected(self):
        with pytest.raises(MalformedExecutionError, match="no matching"):
            Execution("run", [end_event("run", "A", 1.0)])

    def test_unmatched_start_tolerated(self):
        records = [
            start_event("run", "A", 0.0),
            end_event("run", "A", 1.0),
            start_event("run", "B", 2.0),  # still running at log cut
        ]
        execution = Execution("run", records)
        assert execution.sequence == ["A"]

    def test_empty_execution_views(self):
        execution = Execution("run", [])
        assert execution.sequence == []
        with pytest.raises(MalformedExecutionError):
            _ = execution.first_activity
        with pytest.raises(MalformedExecutionError):
            _ = execution.last_activity

    def test_repeated_activity_instances_fifo_matched(self):
        records = [
            start_event("run", "A", 0.0),
            start_event("run", "A", 1.0),
            end_event("run", "A", 2.0),
            end_event("run", "A", 3.0),
        ]
        execution = Execution("run", records)
        instances = execution.instances
        assert [(i.start, i.end) for i in instances] == [
            (0.0, 2.0),
            (1.0, 3.0),
        ]


class TestOrderedPairs:
    def test_sequence_pairs(self):
        execution = Execution.from_sequence("ABC")
        assert set(execution.ordered_pairs()) == {
            ("A", "B"),
            ("A", "C"),
            ("B", "C"),
        }

    def test_overlap_contributes_no_pair(self):
        records = [
            start_event("run", "A", 0.0),
            start_event("run", "B", 1.0),  # B starts while A runs
            end_event("run", "A", 2.0),
            end_event("run", "B", 3.0),
            start_event("run", "C", 4.0),
            end_event("run", "C", 5.0),
        ]
        execution = Execution("run", records)
        pairs = set(execution.ordered_pairs())
        assert ("A", "B") not in pairs
        assert ("B", "A") not in pairs
        assert ("A", "C") in pairs
        assert ("B", "C") in pairs

    def test_touching_intervals_are_ordered(self):
        records = [
            start_event("run", "A", 0.0),
            end_event("run", "A", 1.0),
            start_event("run", "B", 1.0),  # starts exactly at A's end
            end_event("run", "B", 2.0),
        ]
        execution = Execution("run", records)
        assert set(execution.ordered_pairs()) == {("A", "B")}

    def test_same_activity_pair_skipped(self):
        execution = Execution.from_sequence("ABA")
        pairs = set(execution.ordered_pairs())
        assert ("A", "A") not in pairs
        assert ("A", "B") in pairs
        assert ("B", "A") in pairs

    def test_overlapping_pairs_canonical(self):
        records = [
            start_event("run", "B", 0.0),
            start_event("run", "A", 1.0),
            end_event("run", "B", 2.0),
            end_event("run", "A", 3.0),
        ]
        execution = Execution("run", records)
        assert set(execution.overlapping_pairs()) == {("A", "B")}


class TestLabelledViews:
    def test_labelled_sequence(self):
        execution = Execution.from_sequence("ABAB")
        assert execution.labelled_sequence() == [
            ("A", 1),
            ("B", 1),
            ("A", 2),
            ("B", 2),
        ]

    def test_labelled_pairs_include_same_activity_instances(self):
        execution = Execution.from_sequence("ABA")
        pairs = set(execution.labelled_ordered_pairs())
        assert (("A", 1), ("A", 2)) in pairs
        assert (("A", 1), ("B", 1)) in pairs
        assert (("B", 1), ("A", 2)) in pairs

    def test_labelled_overlaps(self):
        records = [
            start_event("run", "A", 0.0),
            start_event("run", "B", 1.0),
            end_event("run", "A", 2.0),
            end_event("run", "B", 3.0),
        ]
        execution = Execution("run", records)
        assert set(execution.labelled_overlapping_pairs()) == {
            (("A", 1), ("B", 1))
        }


class TestOutputs:
    def test_outputs_recorded(self):
        execution = Execution.from_sequence(
            "AB", outputs={"A": (5.0, 6.0)}
        )
        assert execution.outputs_of("A") == [(5.0, 6.0)]
        assert execution.last_output_of("A") == (5.0, 6.0)
        assert execution.last_output_of("B") is None

    def test_last_output_of_repeated_activity(self):
        records = [
            start_event("run", "A", 0.0),
            end_event("run", "A", 1.0, output=(1.0,)),
            start_event("run", "A", 2.0),
            end_event("run", "A", 3.0, output=(2.0,)),
        ]
        execution = Execution("run", records)
        assert execution.outputs_of("A") == [(1.0,), (2.0,)]
        assert execution.last_output_of("A") == (2.0,)
