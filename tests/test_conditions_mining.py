"""Tests for Section 7: learning edge conditions from logs with outputs."""

import pytest

from repro.core.conditions import ConditionsMiner
from repro.core.general_dag import mine_general_dag
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.model.builder import ProcessBuilder
from repro.model.conditions import Always, attr_gt, attr_le


@pytest.fixture
def branching_model():
    """A takes High when o(A)[0] > 50, Low otherwise; both join at Z."""
    return (
        ProcessBuilder("branch")
        .edge("A", "High", condition=attr_gt(0, 50))
        .edge("A", "Low", condition=attr_le(0, 50))
        .edge("High", "Z")
        .edge("Low", "Z")
        .build()
    )


@pytest.fixture
def branching_log(branching_model):
    simulator = WorkflowSimulator(
        branching_model, SimulationConfig(seed=11)
    )
    return simulator.run_log(200)


class TestTrainingSet:
    def test_construction_follows_section7(self):
        log = EventLog(
            [
                Execution.from_sequence(
                    "ABZ", outputs={"A": (60.0, 0.0)}, execution_id="e1"
                ),
                Execution.from_sequence(
                    "ACZ", outputs={"A": (40.0, 0.0)}, execution_id="e2"
                ),
            ]
        )
        miner = ConditionsMiner()
        data = miner.training_set(log, ("A", "B"))
        assert len(data) == 2
        labels = {(e.features[0], e.label) for e in data}
        assert labels == {(60.0, True), (40.0, False)}

    def test_executions_without_source_skipped(self):
        log = EventLog(
            [
                Execution.from_sequence(
                    "ABZ", outputs={"A": (1.0, 2.0)}, execution_id="e1"
                ),
                Execution.from_sequence("XZ", execution_id="e2"),
            ]
        )
        data = ConditionsMiner().training_set(log, ("A", "B"))
        assert len(data) == 1

    def test_executions_without_outputs_skipped(self):
        # Flowmark logs carry no outputs: nothing to learn from.
        log = EventLog.from_sequences(["ABZ", "AZ"])
        data = ConditionsMiner().training_set(log, ("A", "B"))
        assert len(data) == 0


class TestMineEdge:
    def test_learns_threshold_condition(self, branching_log):
        miner = ConditionsMiner()
        mined = miner.mine_edge(branching_log, ("A", "High"))
        assert mined.learnable
        assert mined.training_size == 200
        assert mined.training_accuracy >= 0.99
        # The learned condition agrees with the truth on the whole range.
        truth = attr_gt(0, 50)
        errors = sum(
            1
            for v in range(0, 101, 1)
            if mined.condition.evaluate((float(v), 0.0))
            != truth.evaluate((float(v), 0.0))
        )
        assert errors <= 2  # threshold may land between observed values

    def test_complementary_edge(self, branching_log):
        mined = ConditionsMiner().mine_edge(branching_log, ("A", "Low"))
        assert mined.condition.evaluate((30.0, 0.0))
        assert not mined.condition.evaluate((80.0, 0.0))

    def test_unconditional_edge_is_always(self, branching_log):
        mined = ConditionsMiner().mine_edge(branching_log, ("High", "Z"))
        # High only ever ran together with Z.
        assert mined.learnable
        assert isinstance(mined.condition, Always)
        assert mined.positive_fraction == 1.0

    def test_unlearnable_edge_defaults_to_always(self):
        log = EventLog.from_sequences(["ABZ"] * 5)
        mined = ConditionsMiner().mine_edge(log, ("A", "B"))
        assert not mined.learnable
        assert isinstance(mined.condition, Always)
        assert "unlearnable" in mined.describe()

    def test_describe_mentions_stats(self, branching_log):
        mined = ConditionsMiner().mine_edge(branching_log, ("A", "High"))
        text = mined.describe()
        assert "A -> High" in text
        assert "n=200" in text


class TestMineGraph:
    def test_full_pipeline(self, branching_model, branching_log):
        graph = mine_general_dag(branching_log)
        assert graph.edge_set() == branching_model.graph.edge_set()
        results = ConditionsMiner().mine(branching_log, graph)
        assert set(results) == graph.edge_set()

    def test_conditions_for_model_roundtrip(
        self, branching_model, branching_log
    ):
        graph = mine_general_dag(branching_log)
        conditions = ConditionsMiner().conditions_for_model(
            branching_log, graph
        )
        from repro.core.miner import ProcessMiner

        result = ProcessMiner(learn_conditions=True).mine(branching_log)
        rebuilt = result.to_process_model("rebuilt")
        # The rebuilt model simulates to the same branching behaviour.
        log2 = WorkflowSimulator(
            rebuilt, SimulationConfig(seed=13)
        ).run_log(100)
        highs = sum(1 for e in log2 if "High" in e.activities)
        lows = sum(1 for e in log2 if "Low" in e.activities)
        assert highs > 10 and lows > 10
        for execution in log2:
            taken = {"High", "Low"} & set(execution.activities)
            assert len(taken) == 1  # conditions stayed mutually exclusive
        assert set(conditions) == graph.edge_set()

    def test_empty_log_rejected(self, branching_model):
        from repro.errors import EmptyLogError
        from repro.graphs.digraph import DiGraph

        with pytest.raises(EmptyLogError):
            ConditionsMiner().mine(EventLog(), DiGraph())


class TestGeneralizationAccuracy:
    def test_holdout_accuracy(self, branching_model):
        # Train on one log, evaluate the learned conditions on a fresh
        # log from a different seed.
        train = WorkflowSimulator(
            branching_model, SimulationConfig(seed=1)
        ).run_log(300)
        test = WorkflowSimulator(
            branching_model, SimulationConfig(seed=2)
        ).run_log(100)
        graph = mine_general_dag(train)
        mined = ConditionsMiner().mine_edge(train, ("A", "High"))
        hits = 0
        for execution in test:
            output = execution.last_output_of("A")
            predicted = mined.condition.evaluate(output)
            actual = "High" in execution.activities
            hits += predicted == actual
        assert hits / len(test) >= 0.95
