"""CLI tests for ``repro lint`` and ``mine``'s built-in verification."""

import json

import pytest

from repro.cli import main
from repro.logs.codec import write_log_file
from repro.logs.event_log import EventLog
from repro.model.activity import Activity
from repro.model.builder import ProcessBuilder
from repro.model.process import ProcessModel
from repro.model.serialize import save_model


@pytest.fixture
def redundant_model(tmp_path):
    model = (
        ProcessBuilder("demo").chain("A", "B", "C").edge("A", "C").build()
    )
    path = tmp_path / "demo.pm"
    save_model(model, path)
    return path


@pytest.fixture
def clean_model(tmp_path):
    model = ProcessBuilder("demo").chain("A", "B", "C").build()
    path = tmp_path / "clean.pm"
    save_model(model, path)
    return path


@pytest.fixture
def cyclic_model(tmp_path):
    model = ProcessModel(
        "cyc",
        activities=[Activity(n) for n in "ABCD"],
        edges=[("A", "B"), ("B", "C"), ("C", "B"), ("C", "D")],
        source="A",
        sink="D",
    )
    path = tmp_path / "cyc.pm"
    save_model(model, path)
    return path


class TestLintCommand:
    def test_exit_2_on_error(self, redundant_model, capsys):
        assert main(["lint", str(redundant_model)]) == 2
        out = capsys.readouterr().out
        assert "PM108 error:" in out
        assert "1 error(s)" in out

    def test_exit_0_on_clean(self, clean_model, capsys):
        assert main(["lint", str(clean_model)]) == 0
        assert "0 diagnostic(s)" in capsys.readouterr().out

    def test_exit_1_on_warning(self, cyclic_model, capsys):
        assert main(["lint", str(cyclic_model)]) == 1
        out = capsys.readouterr().out
        assert "PM109 warning:" in out
        assert "PM110 warning:" in out

    def test_require_acyclic_escalates(self, cyclic_model):
        assert main(
            ["lint", str(cyclic_model), "--require-acyclic"]
        ) == 2

    def test_select_and_ignore(self, redundant_model):
        assert main(["lint", str(redundant_model), "--ignore", "PM108"]) == 0
        assert main(["lint", str(redundant_model), "--select", "PM2"]) == 0
        assert (
            main(["lint", str(redundant_model), "--select", "PM1"]) == 2
        )

    def test_severity_override(self, redundant_model):
        assert main(
            ["lint", str(redundant_model), "--severity", "PM108=warning"]
        ) == 1

    def test_bad_severity_is_usage_error(self, redundant_model, capsys):
        assert main(
            ["lint", str(redundant_model), "--severity", "PM108"]
        ) == 1
        assert "expected CODE=LEVEL" in capsys.readouterr().err
        assert main(
            ["lint", str(redundant_model), "--severity", "PM108=fatal"]
        ) == 1

    def test_json_format(self, redundant_model, capsys):
        assert main(
            ["lint", str(redundant_model), "--format", "json"]
        ) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2
        assert payload["diagnostics"][0]["code"] == "PM108"
        assert payload["artifact"] == str(redundant_model)

    def test_sarif_format_carries_lines(self, redundant_model, capsys):
        assert main(
            ["lint", str(redundant_model), "--format", "sarif"]
        ) == 2
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (result,) = document["runs"][0]["results"]
        assert result["ruleId"] == "PM108"
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == str(redundant_model)
        assert physical["region"]["startLine"] >= 1

    def test_log_enables_pm3_rules(self, tmp_path, redundant_model, capsys):
        log = EventLog.from_sequences(["ABC", "ABC"], process_name="demo")
        log_path = tmp_path / "demo.log"
        write_log_file(log, log_path)
        assert main(
            [
                "lint",
                str(redundant_model),
                "--log",
                str(log_path),
                "--format",
                "json",
            ]
        ) == 2
        payload = json.loads(capsys.readouterr().out)
        found = {d["code"] for d in payload["diagnostics"]}
        # The never-required A -> C edge trips the log rule too.
        assert "PM301" in found
        assert "PM301" in payload["checked_rules"]

    def test_missing_model_is_io_error(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope.pm")]) == 1


class TestMineVerification:
    def _write_log(self, tmp_path, sequences):
        log = EventLog.from_sequences(sequences, process_name="p")
        path = tmp_path / "p.log"
        write_log_file(log, path)
        return path

    def test_clean_mine_passes_verification(self, tmp_path, capsys):
        path = self._write_log(tmp_path, ["SABZ", "SBAZ", "SAZ"])
        assert main(["mine", str(path)]) == 0
        assert "verification" not in capsys.readouterr().err

    def test_no_verify_flag_accepted(self, tmp_path, capsys):
        path = self._write_log(tmp_path, ["SABZ", "SBAZ", "SAZ"])
        assert main(["mine", str(path), "--no-verify"]) == 0

    def test_ambiguous_endpoints_skip_verification(self, tmp_path, capsys):
        # "ABC" and "ACB" disagree on the terminating activity, so the
        # mined graph cannot be packaged as a process model; mine still
        # succeeds and says why verification was skipped.
        path = self._write_log(tmp_path, ["ABC", "ACB"])
        assert main(["mine", str(path), "--algorithm", "cyclic"]) == 0
        assert "verification: skipped" in capsys.readouterr().err
