"""Tests for engine run statistics and pool sizing."""

import pytest

from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.engine.stats import RunStats, SimulationStats, pool_sizing_table
from repro.model.builder import ProcessBuilder
from repro.model.conditions import never


@pytest.fixture
def wide_model():
    """Four parallel branches between source and sink."""
    builder = ProcessBuilder("wide")
    for branch in "ABCD":
        builder.edge("Start", branch)
        builder.edge(branch, "End")
    return builder.build()


class TestRunStats:
    def test_counts_executed_and_dead(self):
        model = (
            ProcessBuilder("deadpath")
            .edge("A", "B", condition=never())
            .edge("A", "C")
            .edge("B", "D")
            .edge("C", "D")
            .build()
        )
        simulator = WorkflowSimulator(model)
        log, stats = simulator.run_log_with_stats(10)
        assert len(log) == 10
        assert stats.executed_total == 30  # A, C, D each run
        assert stats.dead_total == 10      # B dead every run
        assert stats.dead_path_rate == pytest.approx(0.25)

    def test_makespan_positive(self, wide_model):
        _, stats = WorkflowSimulator(wide_model).run_log_with_stats(5)
        assert stats.mean_makespan > 0

    def test_single_agent_queues(self, wide_model):
        config = SimulationConfig(agents=1, seed=2)
        _, stats = WorkflowSimulator(
            wide_model, config
        ).run_log_with_stats(10)
        # Four ready branches on one agent: waits must occur.
        assert stats.mean_queue_wait > 0
        # One agent is always busy while anything runs.
        assert stats.mean_utilization > 0.9

    def test_many_agents_do_not_queue(self, wide_model):
        config = SimulationConfig(agents=8, seed=2)
        _, stats = WorkflowSimulator(
            wide_model, config
        ).run_log_with_stats(10)
        assert stats.mean_queue_wait == pytest.approx(0.0)
        assert stats.mean_utilization < 0.9

    def test_log_identical_with_and_without_stats(self, wide_model):
        config = SimulationConfig(seed=7)
        plain = WorkflowSimulator(wide_model, config).run_log(5)
        with_stats, _ = WorkflowSimulator(
            wide_model, config
        ).run_log_with_stats(5)
        assert plain.sequences() == with_stats.sequences()

    def test_negative_executions_rejected(self, wide_model):
        with pytest.raises(ValueError):
            WorkflowSimulator(wide_model).run_log_with_stats(-1)


class TestAggregation:
    def test_empty_aggregate(self):
        stats = SimulationStats.aggregate([], agents=3)
        assert stats.runs == 0
        assert stats.dead_path_rate == 0.0

    def test_aggregate_math(self):
        per_run = [
            RunStats(executed=3, dead=1, makespan=10.0, busy_time=5.0,
                     queue_waits=[1.0, 0.0]),
            RunStats(executed=4, dead=0, makespan=20.0, busy_time=10.0,
                     queue_waits=[]),
        ]
        stats = SimulationStats.aggregate(per_run, agents=1)
        assert stats.executed_total == 7
        assert stats.dead_total == 1
        assert stats.mean_makespan == 15.0
        assert stats.mean_utilization == pytest.approx(0.5)
        assert stats.mean_queue_wait == pytest.approx(0.5)

    def test_describe(self):
        stats = SimulationStats.aggregate(
            [RunStats(executed=2, dead=0, makespan=4.0, busy_time=2.0)],
            agents=2,
        )
        text = stats.describe()
        assert "1 runs on 2 agents" in text
        assert "utilization" in text


class TestPoolSizing:
    def test_more_agents_shrink_makespan(self, wide_model):
        table = pool_sizing_table(
            wide_model, executions=20, agent_range=(1, 4), seed=3
        )
        assert table[4].mean_makespan < table[1].mean_makespan
        assert table[1].mean_utilization > table[4].mean_utilization

    def test_diminishing_returns(self, wide_model):
        # Beyond the parallelism width, extra agents stop helping.
        table = pool_sizing_table(
            wide_model, executions=20, agent_range=(4, 8), seed=3
        )
        assert table[8].mean_makespan == pytest.approx(
            table[4].mean_makespan, rel=0.15
        )
