"""Unit tests for repro.model (activity, process, builder, validate)."""

import random

import pytest

from repro.errors import EdgeNotFoundError, InvalidProcessError
from repro.model.activity import Activity, OutputSpec
from repro.model.builder import ProcessBuilder
from repro.model.conditions import Always, attr_gt
from repro.model.process import ProcessModel
from repro.model.validate import validate_process


class TestOutputSpec:
    def test_sample_within_range(self):
        spec = OutputSpec(arity=3, low=5, high=9)
        rng = random.Random(0)
        for _ in range(20):
            sample = spec.sample(rng)
            assert len(sample) == 3
            assert all(5 <= v <= 9 for v in sample)

    def test_zero_arity(self):
        assert OutputSpec(arity=0).sample(random.Random(0)) == ()

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            OutputSpec(arity=-1)
        with pytest.raises(ValueError):
            OutputSpec(low=5, high=4)


class TestActivity:
    def test_defaults(self):
        activity = Activity("Review")
        assert activity.output_spec.arity == 2
        assert activity.duration == 1.0

    def test_custom_sampler(self):
        activity = Activity(
            "A",
            output_spec=OutputSpec(arity=2),
            sampler=lambda rng: (1.0, 2.0),
        )
        assert activity.sample_output(random.Random(0)) == (1.0, 2.0)

    def test_sampler_arity_mismatch(self):
        activity = Activity(
            "A", output_spec=OutputSpec(arity=2), sampler=lambda rng: (1.0,)
        )
        with pytest.raises(ValueError, match="sampler"):
            activity.sample_output(random.Random(0))

    def test_invalid_activity(self):
        with pytest.raises(ValueError):
            Activity("")
        with pytest.raises(ValueError):
            Activity("A", duration=-1)


class TestProcessModel:
    def make_model(self):
        return ProcessModel(
            "demo",
            activities=[Activity(n) for n in "ABCE"],
            edges=[("A", "B"), ("A", "C"), ("B", "E"), ("C", "E")],
            conditions={("A", "C"): attr_gt(0, 5)},
        )

    def test_endpoints_inferred(self):
        model = self.make_model()
        assert model.source == "A"
        assert model.sink == "E"

    def test_counts(self):
        model = self.make_model()
        assert model.activity_count == 4
        assert model.edge_count == 4

    def test_condition_lookup(self):
        model = self.make_model()
        assert model.condition("A", "C") == attr_gt(0, 5)
        assert model.condition("A", "B") == Always()
        with pytest.raises(EdgeNotFoundError):
            model.condition("B", "C")

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(InvalidProcessError, match="unknown activity"):
            ProcessModel(
                "p", activities=[Activity("A")], edges=[("A", "Z")]
            )

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidProcessError, match="self-loop"):
            ProcessModel(
                "p", activities=[Activity("A")], edges=[("A", "A")]
            )

    def test_condition_on_non_edge_rejected(self):
        with pytest.raises(InvalidProcessError, match="non-edge"):
            ProcessModel(
                "p",
                activities=[Activity("A"), Activity("B")],
                edges=[("A", "B")],
                conditions={("B", "A"): Always()},
            )

    def test_duplicate_activity_rejected(self):
        with pytest.raises(InvalidProcessError, match="duplicate"):
            ProcessModel(
                "p", activities=[Activity("A"), Activity("A")], edges=[]
            )

    def test_ambiguous_source_rejected(self):
        with pytest.raises(InvalidProcessError, match="exactly one source"):
            ProcessModel(
                "p",
                activities=[Activity(n) for n in "ABC"],
                edges=[("A", "C"), ("B", "C")],
            )

    def test_explicit_endpoints(self):
        model = ProcessModel(
            "p",
            activities=[Activity(n) for n in "AB"],
            edges=[("A", "B")],
            source="A",
            sink="B",
        )
        assert model.source == "A"

    def test_graph_is_a_copy(self):
        model = self.make_model()
        graph = model.graph
        graph.add_edge("E", "A")
        assert not model.has_edge("E", "A")

    def test_with_conditions(self):
        model = self.make_model()
        updated = model.with_conditions({("A", "B"): attr_gt(1, 2)})
        assert updated.condition("A", "B") == attr_gt(1, 2)
        assert updated.condition("A", "C") == Always()
        assert model.condition("A", "B") == Always()

    def test_acyclicity_flag(self):
        assert self.make_model().is_acyclic

    def test_equality(self):
        assert self.make_model() == self.make_model()
        other = ProcessModel(
            "demo2",
            activities=[Activity(n) for n in "AB"],
            edges=[("A", "B")],
        )
        assert self.make_model() != other


class TestProcessBuilder:
    def test_edge_auto_creates_activities(self):
        model = ProcessBuilder("p").edge("A", "B").edge("B", "C").build()
        assert model.activity_names == ["A", "B", "C"]

    def test_chain(self):
        model = ProcessBuilder("p").chain("A", "B", "C", "D").build()
        assert model.edge_count == 3
        assert model.source == "A"
        assert model.sink == "D"

    def test_chain_too_short(self):
        with pytest.raises(InvalidProcessError):
            ProcessBuilder("p").chain("A")

    def test_condition_attached(self):
        model = (
            ProcessBuilder("p")
            .edge("A", "B", condition=attr_gt(0, 1))
            .edge("B", "C")
            .build()
        )
        assert model.condition("A", "B") == attr_gt(0, 1)

    def test_constant_output(self):
        model = (
            ProcessBuilder("p")
            .edge("A", "B")
            .constant_output("A", (7, 8))
            .build()
        )
        assert model.activity("A").sample_output(random.Random(0)) == (
            7.0,
            8.0,
        )

    def test_explicit_endpoints(self):
        model = (
            ProcessBuilder("p")
            .edge("A", "B")
            .source("A")
            .sink("B")
            .build()
        )
        assert (model.source, model.sink) == ("A", "B")

    def test_duplicate_edges_collapse(self):
        model = (
            ProcessBuilder("p").edge("A", "B").edge("A", "B").build()
        )
        assert model.edge_count == 1


class TestValidation:
    def test_valid_model(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        report = validate_process(model)
        assert report.is_valid
        assert report.warnings == []

    def test_unreachable_activity(self):
        model = ProcessModel(
            "p",
            activities=[Activity(n) for n in "ABCX"],
            edges=[("A", "B"), ("B", "C"), ("X", "C")],
            source="A",
            sink="C",
        )
        report = validate_process(model)
        assert not report.is_valid
        assert any("not reachable" in v for v in report.violations)

    def test_source_with_incoming_edge(self):
        model = ProcessModel(
            "p",
            activities=[Activity(n) for n in "ABC"],
            edges=[("A", "B"), ("B", "C"), ("B", "A")],
            source="A",
            sink="C",
        )
        report = validate_process(model)
        assert any("incoming" in v for v in report.violations)

    def test_cycle_is_warning_by_default(self):
        model = ProcessModel(
            "p",
            activities=[Activity(n) for n in "ABCD"],
            edges=[("A", "B"), ("B", "C"), ("C", "B"), ("C", "D")],
            source="A",
            sink="D",
        )
        report = validate_process(model)
        assert report.is_valid
        assert any("cycle" in w for w in report.warnings)
        strict = validate_process(model, require_acyclic=True)
        assert not strict.is_valid

    def test_raise_if_invalid(self):
        model = ProcessModel(
            "p",
            activities=[Activity(n) for n in "ABX"],
            edges=[("A", "B"), ("X", "B")],
            source="A",
            sink="B",
        )
        with pytest.raises(InvalidProcessError):
            validate_process(model).raise_if_invalid()
