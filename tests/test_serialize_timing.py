"""Tests for model serialization, timing analytics, multi-process logs."""

import io

import pytest

from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.errors import InvalidProcessError
from repro.logs.codec import (
    read_process_logs,
    read_process_logs_file,
    write_process_logs,
)
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.logs.timing import (
    DurationStats,
    activity_durations,
    busiest_activities,
    execution_makespans,
    format_timing_report,
    handover_waits,
)
from repro.model.builder import ProcessBuilder
from repro.model.conditions import Always, attr_gt
from repro.model.serialize import (
    load_model,
    model_from_text,
    model_to_text,
    save_model,
)


def sample_model():
    return (
        ProcessBuilder("claims")
        .activity("A", arity=3, low=1, high=9, duration=2.0)
        .edge("A", "B", condition=attr_gt(0, 30))
        .edge("A", "C")
        .edge("B", "D")
        .edge("C", "D")
        .build()
    )


class TestModelSerialization:
    def test_roundtrip_structure(self):
        model = sample_model()
        parsed = model_from_text(model_to_text(model))
        assert parsed.name == model.name
        assert parsed.graph.edge_set() == model.graph.edge_set()
        assert parsed.source == model.source
        assert parsed.sink == model.sink

    def test_roundtrip_conditions(self):
        model = sample_model()
        parsed = model_from_text(model_to_text(model))
        assert str(parsed.condition("A", "B")) == str(
            model.condition("A", "B")
        )
        assert parsed.condition("A", "C") == Always()

    def test_roundtrip_activity_attributes(self):
        model = sample_model()
        parsed = model_from_text(model_to_text(model))
        activity = parsed.activity("A")
        assert activity.output_spec.arity == 3
        assert activity.output_spec.low == 1
        assert activity.output_spec.high == 9
        assert activity.duration == 2.0

    def test_file_roundtrip(self, tmp_path):
        model = sample_model()
        path = tmp_path / "model.txt"
        save_model(model, path)
        assert load_model(path).graph.edge_set() == model.graph.edge_set()

    def test_bare_edge_list_is_valid(self):
        model = model_from_text("edge A B\nedge B C\n")
        assert model.source == "A"
        assert model.sink == "C"
        assert model.name == "model"

    def test_comments_and_blanks(self):
        text = "# my model\n\nedge A B  # inline comment\n"
        model = model_from_text(text)
        assert model.has_edge("A", "B")

    def test_complex_condition_roundtrip(self):
        text = "edge A B if (o[0] > 5 and o[1] <= 3)\nedge B C\n"
        model = model_from_text(text)
        rendered = model_to_text(model)
        again = model_from_text(rendered)
        assert str(again.condition("A", "B")) == str(
            model.condition("A", "B")
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate A B",
            "edge A",
            "edge A B when o[0] > 5",
            "edge A B if o[0] >",
            "activity A arity",
            "activity A size=3",
        ],
    )
    def test_malformed_lines_rejected_with_line_number(self, bad):
        with pytest.raises(InvalidProcessError, match="line 1"):
            model_from_text(bad)

    def test_parsed_model_simulates(self):
        model = model_from_text(model_to_text(sample_model()))
        log = WorkflowSimulator(
            model, SimulationConfig(seed=1)
        ).run_log(10)
        assert len(log) == 10


class TestDurationStats:
    def test_basic_statistics(self):
        stats = DurationStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == 2.5

    def test_single_sample(self):
        stats = DurationStats.from_samples([7.0])
        assert stats.median == stats.p95 == 7.0
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DurationStats.from_samples([])

    def test_p95_below_max(self):
        stats = DurationStats.from_samples(list(map(float, range(100))))
        assert stats.p95 <= stats.maximum
        assert stats.p95 > stats.median


class TestTimingAnalytics:
    def make_log(self):
        model = (
            ProcessBuilder("timed")
            .activity("A", duration=1.0)
            .activity("B", duration=3.0)
            .activity("C", duration=0.5)
            .edge("A", "B")
            .edge("B", "C")
            .build()
        )
        return WorkflowSimulator(
            model, SimulationConfig(seed=4, duration_jitter=0.2)
        ).run_log(50)

    def test_activity_durations_reflect_nominals(self):
        durations = activity_durations(self.make_log())
        assert durations["B"].mean > durations["A"].mean
        assert durations["A"].mean > durations["C"].mean
        assert durations["B"].count == 50

    def test_makespans(self):
        makespan = execution_makespans(self.make_log())
        # Chain of nominal durations 1 + 3 + 0.5.
        assert 3.0 < makespan.mean < 6.5

    def test_makespan_of_empty_log_rejected(self):
        with pytest.raises(ValueError):
            execution_makespans(EventLog())

    def test_handover_waits_nonnegative(self):
        waits = handover_waits(self.make_log())
        assert ("A", "B") in waits
        assert waits[("A", "B")].minimum >= 0

    def test_handover_filtering(self):
        waits = handover_waits(self.make_log(), edges=[("B", "C")])
        assert set(waits) == {("B", "C")}

    def test_busiest_activities(self):
        ranked = busiest_activities(self.make_log(), top=2)
        assert ranked[0][0] == "B"
        assert len(ranked) == 2

    def test_format_timing_report(self):
        report = format_timing_report(self.make_log())
        assert "execution makespan" in report
        assert "B" in report

    def test_report_on_empty_log(self):
        assert format_timing_report(EventLog()) == (
            "no completed executions"
        )


class TestMultiProcessLogs:
    def make_logs(self):
        log_a = EventLog(
            [Execution.from_sequence("AB", execution_id="a-1")],
            process_name="alpha",
        )
        log_b = EventLog(
            [Execution.from_sequence("XYZ", execution_id="b-1")],
            process_name="beta",
        )
        return log_a, log_b

    def test_interleaved_roundtrip(self):
        log_a, log_b = self.make_logs()
        buffer = io.StringIO()
        lines = write_process_logs([log_a, log_b], buffer)
        assert lines == 4 + 6
        buffer.seek(0)
        parsed = read_process_logs(buffer)
        assert set(parsed) == {"alpha", "beta"}
        assert parsed["alpha"].sequences() == [["A", "B"]]
        assert parsed["beta"].sequences() == [["X", "Y", "Z"]]

    def test_records_interleave_by_timestamp(self):
        log_a, log_b = self.make_logs()
        buffer = io.StringIO()
        write_process_logs([log_a, log_b], buffer)
        lines = buffer.getvalue().splitlines()
        # Both executions start at t=0, so their records alternate by
        # timestamp — the first two lines must name different processes.
        assert lines[0].split("\t")[0] != lines[1].split("\t")[0]

    def test_file_roundtrip(self, tmp_path):
        log_a, log_b = self.make_logs()
        path = tmp_path / "multi.tsv"
        with open(path, "w", encoding="utf-8") as handle:
            write_process_logs([log_a, log_b], handle)
        parsed = read_process_logs_file(path)
        assert len(parsed) == 2

    def test_each_partition_mines_independently(self):
        from repro.core.miner import ProcessMiner

        log_a, log_b = self.make_logs()
        buffer = io.StringIO()
        write_process_logs([log_a, log_b], buffer)
        buffer.seek(0)
        parsed = read_process_logs(buffer)
        graph_a = ProcessMiner().mine(parsed["alpha"]).graph
        assert graph_a.edge_set() == {("A", "B")}
