"""Degrade-to-serial behaviour when no process pool can be created.

Restricted sandboxes (no ``fork``/``spawn``) must not fail a mine that
asked for ``jobs > 1`` — the helpers fall back to serial execution with
*identical* output, and the degrade is observable as one increment of
``repro_parallel_pool_fallback_total{stage}``.  The pool is broken here
by monkeypatching ``concurrent.futures.ProcessPoolExecutor`` (both
helpers import it lazily inside the call, so the patch is seen).
"""

import concurrent.futures

import pytest

from repro.core.parallel import process_fold, process_map
from repro.core.state import MiningState, fold_executions
from repro.logs.execution import Execution
from repro.obs.recorder import ObsRecorder


class _NoPool:
    """Stand-in executor whose construction always fails."""

    def __init__(self, *args, **kwargs):
        raise OSError("process pools are unavailable in this sandbox")


@pytest.fixture
def broken_pool(monkeypatch):
    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", _NoPool
    )


def _square_chunk(chunk):
    return [item * item for item in chunk]


def fallback_count(recorder, stage):
    return recorder.registry.counter(
        "repro_parallel_pool_fallback_total", {"stage": stage}
    ).value


class TestProcessMapFallback:
    CHUNKS = [[1, 2], [3, 4], [5]]

    def test_output_identical_to_serial(self, broken_pool):
        assert process_map(_square_chunk, self.CHUNKS, jobs=4) == [
            _square_chunk(chunk) for chunk in self.CHUNKS
        ]

    def test_fallback_counter_increments(self, broken_pool):
        recorder = ObsRecorder()
        process_map(
            _square_chunk,
            self.CHUNKS,
            jobs=4,
            recorder=recorder,
            stage="reduce",
        )
        assert fallback_count(recorder, "reduce") == 1

    def test_serial_request_never_touches_the_pool(self, broken_pool):
        # jobs=1 must not even attempt pool creation, so no fallback.
        recorder = ObsRecorder()
        process_map(
            _square_chunk,
            self.CHUNKS,
            jobs=1,
            recorder=recorder,
            stage="reduce",
        )
        assert fallback_count(recorder, "reduce") == 0


class TestProcessFoldFallback:
    CHUNKS = [[1, 2], [3, 4], [5, 6], [7]]

    def test_folds_every_chunk_in_order(self, broken_pool):
        seen = []
        recorder = ObsRecorder()
        folded = process_fold(
            _square_chunk,
            iter(self.CHUNKS),
            jobs=4,
            fold=seen.append,
            recorder=recorder,
            stage="stream_fold",
        )
        assert folded == len(self.CHUNKS)
        assert seen == [_square_chunk(chunk) for chunk in self.CHUNKS]
        assert fallback_count(recorder, "stream_fold") == 1

    def test_empty_iterator_is_a_noop(self, broken_pool):
        recorder = ObsRecorder()
        folded = process_fold(
            _square_chunk,
            iter([]),
            jobs=4,
            fold=lambda result: None,
            recorder=recorder,
            stage="stream_fold",
        )
        assert folded == 0
        assert fallback_count(recorder, "stream_fold") == 0


class TestFoldExecutionsFallback:
    SEQUENCES = ["ABCF", "ACDF", "ABDF", "ABCDF"] * 6

    def executions(self):
        return [
            Execution.from_sequence(list(seq), execution_id=f"e{i:03d}")
            for i, seq in enumerate(self.SEQUENCES)
        ]

    def test_streaming_fold_survives_a_dead_pool(self, broken_pool):
        recorder = ObsRecorder()
        degraded = fold_executions(
            iter(self.executions()),
            jobs=4,
            chunk_size=5,
            recorder=recorder,
        )
        serial = MiningState()
        for execution in self.executions():
            serial.update(execution)
        assert degraded.to_payload() == serial.to_payload()
        assert fallback_count(recorder, "stream_fold") == 1


# ----------------------------------------------------------------------
# Supervised fold: retry/backoff, timeouts, poisoned chunks
# ----------------------------------------------------------------------
import os
import time

from repro.core.parallel import RetryPolicy, supervised_fold

FAST = RetryPolicy(
    timeout=2.0, max_retries=1, backoff_base=0.01, backoff_max=0.02
)


def _raise_chunk(args):
    raise ValueError("chunk worker died")


def _eval_chunk(chunk):
    """Picklable worker: ('ok'|'crash'|'hang'|'fail', value)."""
    kind, value = chunk
    if kind == "crash":
        os._exit(70)
    if kind == "hang":
        time.sleep(60)
    if kind == "fail":
        raise ValueError(f"poisonous value {value}")
    return value * 2


def run_supervised(chunks, jobs, policy=FAST, recorder=None):
    folded, poisoned = [], []
    recorder = recorder or ObsRecorder()
    count = supervised_fold(
        _eval_chunk,
        iter(chunks),
        jobs=jobs,
        fold=folded.append,
        policy=policy,
        recorder=recorder,
        stage="stream_fold",
        on_poisoned=lambda chunk, reason: poisoned.append(
            (chunk, reason)
        ),
    )
    return count, folded, poisoned, recorder


def supervision_count(recorder, name):
    return recorder.registry.counter(
        name, {"stage": "stream_fold"}
    ).value


class TestSupervisedFoldSerial:
    def test_clean_chunks_fold_in_order(self):
        chunks = [("ok", i) for i in range(5)]
        count, folded, poisoned, _ = run_supervised(chunks, jobs=1)
        assert count == 5 and not poisoned
        assert folded == [i * 2 for i in range(5)]

    def test_persistent_failure_is_poisoned_after_budget(self):
        chunks = [("ok", 1), ("fail", 2), ("ok", 3)]
        count, folded, poisoned, recorder = run_supervised(
            chunks, jobs=1
        )
        assert count == 2 and folded == [2, 6]
        assert poisoned == [
            (("fail", 2), "error: poisonous value 2")
        ]
        assert (
            supervision_count(recorder, "repro_fold_retries_total")
            == FAST.max_retries
        )
        assert (
            supervision_count(
                recorder, "repro_fold_poisoned_chunks_total"
            )
            == 1
        )

    def test_transient_failure_recovers_within_budget(self, tmp_path):
        marker = tmp_path / "attempts"

        def flaky(chunk):
            attempts = (
                int(marker.read_text()) if marker.exists() else 0
            )
            marker.write_text(str(attempts + 1))
            if attempts == 0:
                raise OSError("transient")
            return chunk

        folded = []
        recorder = ObsRecorder()
        count = supervised_fold(
            flaky,
            iter(["only"]),
            jobs=1,
            fold=folded.append,
            policy=FAST,
            recorder=recorder,
            stage="stream_fold",
        )
        assert count == 1 and folded == ["only"]
        assert (
            supervision_count(recorder, "repro_fold_retries_total")
            == 1
        )

    def test_backoff_is_seeded_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.5, seed=3)
        first = [policy.backoff(k, "chunk") for k in range(1, 6)]
        assert first == [
            policy.backoff(k, "chunk") for k in range(1, 6)
        ]
        ceiling = policy.backoff_max * (1 + policy.jitter)
        assert all(0 < delay <= ceiling for delay in first)


class TestSupervisedFoldParallel:
    def test_worker_crash_poisons_only_its_chunk(self):
        chunks = [("ok", 1), ("crash", 2), ("ok", 3), ("ok", 4)]
        count, folded, poisoned, recorder = run_supervised(
            chunks, jobs=2
        )
        assert count == 3
        assert sorted(folded) == [2, 6, 8]
        assert [chunk for chunk, _ in poisoned] == [("crash", 2)]
        assert poisoned[0][1] in ("worker-crash", "timeout")
        assert (
            supervision_count(
                recorder, "repro_fold_poisoned_chunks_total"
            )
            == 1
        )

    def test_hung_worker_times_out_and_is_poisoned(self):
        policy = RetryPolicy(
            timeout=0.5, max_retries=1, backoff_base=0.01,
            backoff_max=0.02,
        )
        chunks = [("ok", 1), ("hang", 2), ("ok", 3)]
        count, folded, poisoned, recorder = run_supervised(
            chunks, jobs=2, policy=policy
        )
        assert count == 2 and sorted(folded) == [2, 6]
        assert poisoned == [(("hang", 2), "timeout")]
        assert (
            supervision_count(recorder, "repro_fold_timeouts_total")
            >= 1
        )
        assert (
            supervision_count(recorder, "repro_fold_retries_total")
            == 1
        )

    def test_fold_order_is_submission_order_despite_failures(self):
        chunks = [("ok", i) if i != 2 else ("fail", i) for i in range(6)]
        count, folded, poisoned, _ = run_supervised(chunks, jobs=3)
        assert count == 5
        assert folded == [0, 2, 6, 8, 10]  # 2*value, chunk 2 missing
        assert [chunk for chunk, _ in poisoned] == [("fail", 2)]

    def test_broken_pool_degrades_to_serial(self, broken_pool):
        chunks = [("ok", 1), ("ok", 2)]
        count, folded, poisoned, recorder = run_supervised(
            chunks, jobs=4
        )
        assert count == 2 and folded == [2, 4] and not poisoned
        assert fallback_count(recorder, "stream_fold") == 1


class TestFoldExecutionsSupervised:
    SEQUENCES = ["ABCF", "ACDF", "ABDF", "ABCDF"] * 4

    def executions(self):
        return [
            Execution.from_sequence(list(seq), execution_id=f"e{i:03d}")
            for i, seq in enumerate(self.SEQUENCES)
        ]

    def test_retry_policy_path_matches_serial(self):
        recorder = ObsRecorder()
        supervised = fold_executions(
            iter(self.executions()),
            jobs=2,
            chunk_size=4,
            recorder=recorder,
            retry=FAST,
        )
        serial = MiningState()
        for execution in self.executions():
            serial.update(execution)
        assert supervised.to_payload() == serial.to_payload()

    def test_on_poisoned_receives_executions(self, monkeypatch):
        """A chunk whose fold-worker always dies hands its executions
        back through on_poisoned instead of failing the mine."""
        from repro.core import state as state_mod

        monkeypatch.setattr(state_mod, "_fold_chunk", _raise_chunk)
        poisoned = []
        result = fold_executions(
            iter(self.executions()),
            jobs=2,
            chunk_size=4,
            retry=RetryPolicy(
                max_retries=0, backoff_base=0.01, backoff_max=0.02
            ),
            on_poisoned=lambda executions, reason: poisoned.append(
                (len(executions), reason)
            ),
        )
        assert result.execution_count == 0
        assert len(poisoned) == len(self.SEQUENCES) // 4
        assert all(count == 4 for count, _ in poisoned)
