"""Degrade-to-serial behaviour when no process pool can be created.

Restricted sandboxes (no ``fork``/``spawn``) must not fail a mine that
asked for ``jobs > 1`` — the helpers fall back to serial execution with
*identical* output, and the degrade is observable as one increment of
``repro_parallel_pool_fallback_total{stage}``.  The pool is broken here
by monkeypatching ``concurrent.futures.ProcessPoolExecutor`` (both
helpers import it lazily inside the call, so the patch is seen).
"""

import concurrent.futures

import pytest

from repro.core.parallel import process_fold, process_map
from repro.core.state import MiningState, fold_executions
from repro.logs.execution import Execution
from repro.obs.recorder import ObsRecorder


class _NoPool:
    """Stand-in executor whose construction always fails."""

    def __init__(self, *args, **kwargs):
        raise OSError("process pools are unavailable in this sandbox")


@pytest.fixture
def broken_pool(monkeypatch):
    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", _NoPool
    )


def _square_chunk(chunk):
    return [item * item for item in chunk]


def fallback_count(recorder, stage):
    return recorder.registry.counter(
        "repro_parallel_pool_fallback_total", {"stage": stage}
    ).value


class TestProcessMapFallback:
    CHUNKS = [[1, 2], [3, 4], [5]]

    def test_output_identical_to_serial(self, broken_pool):
        assert process_map(_square_chunk, self.CHUNKS, jobs=4) == [
            _square_chunk(chunk) for chunk in self.CHUNKS
        ]

    def test_fallback_counter_increments(self, broken_pool):
        recorder = ObsRecorder()
        process_map(
            _square_chunk,
            self.CHUNKS,
            jobs=4,
            recorder=recorder,
            stage="reduce",
        )
        assert fallback_count(recorder, "reduce") == 1

    def test_serial_request_never_touches_the_pool(self, broken_pool):
        # jobs=1 must not even attempt pool creation, so no fallback.
        recorder = ObsRecorder()
        process_map(
            _square_chunk,
            self.CHUNKS,
            jobs=1,
            recorder=recorder,
            stage="reduce",
        )
        assert fallback_count(recorder, "reduce") == 0


class TestProcessFoldFallback:
    CHUNKS = [[1, 2], [3, 4], [5, 6], [7]]

    def test_folds_every_chunk_in_order(self, broken_pool):
        seen = []
        recorder = ObsRecorder()
        folded = process_fold(
            _square_chunk,
            iter(self.CHUNKS),
            jobs=4,
            fold=seen.append,
            recorder=recorder,
            stage="stream_fold",
        )
        assert folded == len(self.CHUNKS)
        assert seen == [_square_chunk(chunk) for chunk in self.CHUNKS]
        assert fallback_count(recorder, "stream_fold") == 1

    def test_empty_iterator_is_a_noop(self, broken_pool):
        recorder = ObsRecorder()
        folded = process_fold(
            _square_chunk,
            iter([]),
            jobs=4,
            fold=lambda result: None,
            recorder=recorder,
            stage="stream_fold",
        )
        assert folded == 0
        assert fallback_count(recorder, "stream_fold") == 0


class TestFoldExecutionsFallback:
    SEQUENCES = ["ABCF", "ACDF", "ABDF", "ABCDF"] * 6

    def executions(self):
        return [
            Execution.from_sequence(list(seq), execution_id=f"e{i:03d}")
            for i, seq in enumerate(self.SEQUENCES)
        ]

    def test_streaming_fold_survives_a_dead_pool(self, broken_pool):
        recorder = ObsRecorder()
        degraded = fold_executions(
            iter(self.executions()),
            jobs=4,
            chunk_size=5,
            recorder=recorder,
        )
        serial = MiningState()
        for execution in self.executions():
            serial.update(execution)
        assert degraded.to_payload() == serial.to_payload()
        assert fallback_count(recorder, "stream_fold") == 1
