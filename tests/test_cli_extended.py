"""Tests for the extended CLI commands: simulate, compare, evolve, timing."""

import pytest

from repro.cli import main
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_gt
from repro.model.serialize import load_model, save_model


@pytest.fixture
def model_file(tmp_path):
    model = (
        ProcessBuilder("demo")
        .edge("A", "B")
        .edge("A", "C", condition=attr_gt(0, 50))
        .edge("B", "D")
        .edge("C", "D")
        .build()
    )
    path = tmp_path / "model.txt"
    save_model(model, path)
    return path


@pytest.fixture
def simulated_log(tmp_path, model_file, capsys):
    log_path = tmp_path / "sim.tsv"
    assert main(
        [
            "simulate", str(model_file), str(log_path),
            "--executions", "80", "--seed", "3",
        ]
    ) == 0
    capsys.readouterr()
    return log_path


class TestSimulate:
    def test_simulate_writes_log(self, tmp_path, model_file, capsys):
        out = tmp_path / "log.tsv"
        code = main(
            ["simulate", str(model_file), str(out), "--executions", "5"]
        )
        assert code == 0
        assert "simulated 5 executions" in capsys.readouterr().out
        assert out.exists()

    def test_simulate_then_mine(self, simulated_log, capsys):
        assert main(["mine", str(simulated_log)]) == 0
        out = capsys.readouterr().out
        assert "A -> B, C" in out

    def test_bad_model_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("frobnicate\n")
        assert main(
            ["simulate", str(bad), str(tmp_path / "x.tsv")]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestCompare:
    def test_agreeing_model_is_clean(
        self, model_file, simulated_log, capsys
    ):
        code = main(["compare", str(model_file), str(simulated_log)])
        assert code == 0
        assert "no differences" in capsys.readouterr().out

    def test_divergent_model_exits_2(
        self, tmp_path, simulated_log, capsys
    ):
        stale = (
            ProcessBuilder("stale").chain("A", "B", "D").build()
        )
        stale_path = tmp_path / "stale.txt"
        save_model(stale, stale_path)
        code = main(["compare", str(stale_path), str(simulated_log)])
        assert code == 2
        out = capsys.readouterr().out
        assert "C" in out


class TestEvolve:
    def test_evolve_writes_model(
        self, tmp_path, simulated_log, capsys
    ):
        stale = ProcessBuilder("stale").chain("A", "B", "D").build()
        stale_path = tmp_path / "stale.txt"
        save_model(stale, stale_path)
        evolved_path = tmp_path / "evolved.txt"
        code = main(
            [
                "evolve", str(stale_path), str(simulated_log),
                "--output", str(evolved_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "added" in out
        evolved = load_model(evolved_path)
        assert "C" in evolved.activity_names

    def test_evolve_no_changes(self, model_file, simulated_log, capsys):
        code = main(["evolve", str(model_file), str(simulated_log)])
        assert code == 0
        assert "confirms" in capsys.readouterr().out


class TestTiming:
    def test_timing_report(self, simulated_log, capsys):
        assert main(["timing", str(simulated_log)]) == 0
        out = capsys.readouterr().out
        assert "execution makespan" in out
        assert "activity durations" in out


class TestCyclicMineViaCli:
    def test_cyclic_algorithm_selected(self, tmp_path, capsys):
        from repro.logs.codec import write_log_file
        from repro.logs.event_log import EventLog

        log = EventLog.from_sequences(
            ["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"],
            process_name="example8",
        )
        path = tmp_path / "cyclic.tsv"
        write_log_file(log, path)
        assert main(["mine", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# algorithm: cyclic" in out
        # The B/C cycle shows in the adjacency rendering.
        assert "C -> B" in out or "C -> B," in out

    def test_explicit_cyclic_flag(self, tmp_path, capsys):
        from repro.logs.codec import write_log_file
        from repro.logs.event_log import EventLog

        log = EventLog.from_sequences(["ABC", "ACB"])
        path = tmp_path / "plain.tsv"
        write_log_file(log, path)
        assert main(
            ["mine", str(path), "--algorithm", "cyclic"]
        ) == 0
        assert "# algorithm: cyclic" in capsys.readouterr().out


class TestVariantsAndConvert:
    def test_variants_command(self, simulated_log, capsys):
        assert main(["variants", str(simulated_log), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "variants" in out
        assert "A B" in out or "A C" in out

    def test_convert_roundtrip(self, tmp_path, simulated_log, capsys):
        jsonl_path = tmp_path / "log.jsonl"
        assert main(
            ["convert", str(simulated_log), str(jsonl_path)]
        ) == 0
        capsys.readouterr()
        back_path = tmp_path / "back.tsv"
        assert main(["convert", str(jsonl_path), str(back_path)]) == 0
        capsys.readouterr()
        from repro.logs.codec import read_log_file

        original = read_log_file(simulated_log)
        roundtripped = read_log_file(back_path)
        assert roundtripped.sequences() == original.sequences()
