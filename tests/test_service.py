"""The mining service daemon: wire codecs, routing, tenants, the
asyncio app, and a live socket round-trip.

The layering mirrors the implementation: :class:`TestWire` and
:class:`TestRouter` are pure functions; :class:`TestTenants` drives the
synchronous registry directly (no event loop); :class:`TestApp` runs
the transport-free :class:`~repro.service.server.ServiceApp` under
``asyncio.run``; :class:`TestDaemon` boots the real ``repro-miner
serve`` process and asserts the CI acceptance contract — model bytes
identical to batch ``mine`` stdout, state bytes identical to ``mine
--stream --state-out``, ``/metrics`` parses, and SIGTERM checkpoints
every tenant so a restart resumes byte-identically.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.logs.execution import Execution
from repro.logs.jsonl import record_to_json
from repro.obs import ObsRecorder, parse_prometheus
from repro.service import wire
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.registry import (
    ServiceError,
    Tenant,
    TenantConfig,
    TenantRegistry,
    tenant_directory_name,
)
from repro.service.router import RouteError, resolve
from repro.service.server import Request, ServiceApp, ServiceConfig

PROCESS = "claims"
SEQUENCES = ["ABCF", "ACDF", "ABDF", "ABCDF", "ABCF", "ACDF"]
CYCLIC = ["SLBE", "SLBLBE", "SLE"]


def executions(sequences):
    return [
        Execution.from_sequence(
            list(seq), f"e{index:04d}", start_time=float(index)
        )
        for index, seq in enumerate(sequences)
    ]


def event_lines(sequences, process=PROCESS):
    """The JSONL wire lines for ``sequences``, contiguous per execution."""
    return [
        record_to_json(record, process)
        for execution in executions(sequences)
        for record in execution.records
    ]


def write_tsv(tmp_path, sequences, name="batch.tsv", process=PROCESS):
    from repro.logs.codec import write_log_file
    from repro.logs.event_log import EventLog

    path = tmp_path / name
    write_log_file(
        EventLog(executions(sequences), process_name=process), path
    )
    return path


def make_request(method, path, body=b"", query=None, headers=None):
    return Request(
        method=method,
        path=path,
        query=dict(query or {}),
        headers=dict(headers or {}),
        body=body,
    )


class TestWire:
    def test_split_event_lines_drops_blanks(self):
        body = b'{"a": 1}\n\n{"b": 2}\n'
        assert wire.split_event_lines(body) == ['{"a": 1}', '{"b": 2}']

    def test_split_event_lines_single_object(self):
        assert wire.split_event_lines(b'{"a": 1}') == ['{"a": 1}']

    def test_split_event_lines_rejects_bad_utf8(self):
        with pytest.raises(UnicodeDecodeError):
            wire.split_event_lines(b"\xff\xfe")

    def test_dump_json_is_sorted_with_newline(self):
        payload = wire.dump_json({"b": 1, "a": 2})
        assert payload.endswith(b"\n")
        assert payload.index(b'"a"') < payload.index(b'"b"')

    def test_render_graph_block_matches_cli_stdout(
        self, tmp_path, capsys
    ):
        """The shared renderer *is* the CLI output — same bytes."""
        log = write_tsv(tmp_path, SEQUENCES)
        assert (
            main(
                [
                    "mine",
                    str(log),
                    "--algorithm",
                    "general-dag",
                    "--format",
                    "edges",
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        from repro.core.state import fold_executions

        graph = fold_executions(executions(SEQUENCES)).finish()
        block = wire.render_graph_block(
            graph, "edges", name=PROCESS, algorithm="general-dag"
        )
        assert block == stdout


class TestRouter:
    def test_resolves_fixed_routes(self):
        assert resolve("GET", "/healthz").handler == "healthz"
        assert resolve("GET", "/metrics").process is None
        assert resolve("GET", "/v1/tenants").handler == "tenants"

    def test_captures_percent_decoded_process(self):
        match = resolve("POST", "/v1/ship%2Fv2/events")
        assert match.handler == "events"
        assert match.process == "ship/v2"

    def test_unknown_path_is_404(self):
        with pytest.raises(RouteError) as excinfo:
            resolve("GET", "/v2/claims/model")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405_with_allow(self):
        with pytest.raises(RouteError) as excinfo:
            resolve("DELETE", "/v1/claims/events")
        assert excinfo.value.status == 405
        assert "POST" in excinfo.value.allow


class TestTenants:
    def config(self, **overrides):
        return TenantConfig(**overrides)

    def test_directory_name_is_percent_encoded(self):
        assert tenant_directory_name("ship/v2") == "ship%2Fv2"

    def test_validate_rejects_bad_process_ids(self, tmp_path):
        registry = TenantRegistry(tmp_path, self.config())
        for bad in ("", "a\nb", "x" * 201):
            with pytest.raises(ServiceError):
                registry.validate_process_id(bad)

    def test_tenant_limit_answers_429(self, tmp_path):
        registry = TenantRegistry(
            tmp_path, self.config(), max_tenants=1
        )
        registry.get_or_create("one")
        with pytest.raises(ServiceError) as excinfo:
            registry.get_or_create("two")
        assert excinfo.value.status == 429

    def test_ingest_flush_snapshot(self, tmp_path):
        registry = TenantRegistry(tmp_path, self.config())
        tenant, recovery = registry.get_or_create(PROCESS)
        assert recovery is not None and not recovery.covered
        tenant.ingest(event_lines(SEQUENCES))
        tenant.flush()
        snapshot = tenant.snapshot()
        assert snapshot is not None
        assert snapshot.executions == len(SEQUENCES)
        assert snapshot.algorithm == "general-dag"
        stats = tenant.stats()
        assert stats["executions"] == len(SEQUENCES)
        assert stats["open_executions"] == 0

    def test_cyclic_logs_resolve_to_cyclic(self, tmp_path):
        registry = TenantRegistry(tmp_path, self.config())
        tenant, _ = registry.get_or_create("loops")
        tenant.ingest(event_lines(CYCLIC, process="loops"))
        tenant.flush()
        assert tenant.snapshot().algorithm == "cyclic"

    def test_url_owns_the_process_name(self, tmp_path):
        """Records for another process quarantine as mixed-process."""
        registry = TenantRegistry(tmp_path, self.config())
        tenant, _ = registry.get_or_create(PROCESS)
        foreign = event_lines(["AB"], process="other")
        tenant.ingest(foreign)
        tenant.flush()
        assert tenant.report.reasons.get("mixed-process")

    def test_late_record_after_flush_is_quarantined(self, tmp_path):
        registry = TenantRegistry(tmp_path, self.config())
        tenant, _ = registry.get_or_create(PROCESS)
        lines = event_lines(["ABC"])
        tenant.ingest(lines[:-1])
        tenant.flush()
        tenant.ingest(lines[-1:])
        tenant.flush()
        assert tenant.report.reasons.get("late-record")

    def test_close_then_reopen_resumes_byte_identically(self, tmp_path):
        registry = TenantRegistry(tmp_path, self.config())
        tenant, _ = registry.get_or_create(PROCESS)
        tenant.ingest(event_lines(SEQUENCES))
        tenant.flush()
        envelope = tenant.fresh_snapshot().envelope
        receipt = tenant.close()
        assert receipt.clean
        reopened = TenantRegistry(tmp_path, self.config())
        recovered = dict(reopened.startup())
        assert PROCESS in recovered
        successor = reopened.get(PROCESS)
        assert successor.fresh_snapshot().envelope == envelope
        assert successor.close().clean

    def test_close_flushes_open_windows_first(self, tmp_path):
        registry = TenantRegistry(tmp_path, self.config())
        tenant, _ = registry.get_or_create(PROCESS)
        tenant.ingest(event_lines(["ABCF"]))
        assert tenant.stream.open_executions == 1
        receipt = tenant.close()
        assert receipt.clean
        assert receipt.covered_seq == 1


def run_app(tmp_path, scenario, recorder=None, **config_overrides):
    """Run ``scenario(app)`` against a started app, then shut down."""
    config = ServiceConfig(
        data_dir=tmp_path / "service-data", **config_overrides
    )

    async def runner():
        app = ServiceApp(
            config,
            **({"recorder": recorder} if recorder is not None else {}),
        )
        app.startup()
        try:
            return await scenario(app)
        finally:
            await app.shutdown()

    return asyncio.run(runner())


async def push_and_flush(app, sequences=SEQUENCES, process=PROCESS):
    body = ("\n".join(event_lines(sequences, process)) + "\n").encode()
    accepted = await app.handle(
        make_request("POST", f"/v1/{process}/events", body=body)
    )
    assert accepted.status == 202
    flushed = await app.handle(
        make_request("POST", f"/v1/{process}/flush")
    )
    assert flushed.status == 200
    return json.loads(flushed.body)


class TestApp:
    def test_events_then_flush_then_model(self, tmp_path):
        async def scenario(app):
            stats = await push_and_flush(app)
            assert stats["executions"] == len(SEQUENCES)
            assert stats["flushed_executions"] >= 1
            response = await app.handle(
                make_request("GET", f"/v1/{PROCESS}/model")
            )
            assert response.status == 200
            assert dict(response.headers)["X-Snapshot-Seq"] == str(
                len(SEQUENCES)
            )
            document = json.loads(response.body)
            assert document["algorithm"] == "general-dag"
            assert ["A", "B"] in document["edges"]
            return document

        document = run_app(tmp_path, scenario)
        assert document["process"] == PROCESS

    def test_model_text_matches_batch_cli(self, tmp_path, capsys):
        async def scenario(app):
            await push_and_flush(app)
            response = await app.handle(
                make_request(
                    "GET",
                    f"/v1/{PROCESS}/model",
                    query={"format": "edges"},
                )
            )
            assert response.status == 200
            return response.body

        body = run_app(tmp_path, scenario)
        log = write_tsv(tmp_path, SEQUENCES)
        assert (
            main(
                [
                    "mine",
                    str(log),
                    "--algorithm",
                    "general-dag",
                    "--format",
                    "edges",
                ]
            )
            == 0
        )
        assert body == capsys.readouterr().out.encode("utf-8")

    def test_state_matches_stream_cli_state_out(self, tmp_path):
        async def scenario(app):
            await push_and_flush(app)
            response = await app.handle(
                make_request("GET", f"/v1/{PROCESS}/state")
            )
            assert response.status == 200
            return response.body

        body = run_app(tmp_path, scenario)
        log = write_tsv(tmp_path, SEQUENCES)
        state_out = tmp_path / "cli-state.json"
        assert (
            main(
                [
                    "mine",
                    str(log),
                    "--stream",
                    "--state-out",
                    str(state_out),
                ]
            )
            == 0
        )
        assert body == state_out.read_bytes()

    def test_read_endpoints_answer_404_before_any_model(self, tmp_path):
        async def scenario(app):
            statuses = {}
            for leaf in ("model", "state"):
                response = await app.handle(
                    make_request("GET", f"/v1/nobody/{leaf}")
                )
                statuses[leaf] = response.status
            return statuses

        assert run_app(tmp_path, scenario) == {
            "model": 404,
            "state": 404,
        }

    def test_bad_requests_answer_400(self, tmp_path):
        async def scenario(app):
            empty = await app.handle(
                make_request("POST", f"/v1/{PROCESS}/events")
            )
            bad_utf8 = await app.handle(
                make_request(
                    "POST", f"/v1/{PROCESS}/events", body=b"\xff\xfe"
                )
            )
            await push_and_flush(app)
            bad_format = await app.handle(
                make_request(
                    "GET",
                    f"/v1/{PROCESS}/model",
                    query={"format": "yaml"},
                )
            )
            return empty.status, bad_utf8.status, bad_format.status

        assert run_app(tmp_path, scenario) == (400, 400, 400)

    def test_route_errors_carry_status_and_allow(self, tmp_path):
        async def scenario(app):
            missing = await app.handle(
                make_request("GET", "/v2/nothing")
            )
            wrong = await app.handle(
                make_request("DELETE", f"/v1/{PROCESS}/events")
            )
            return missing, wrong

        missing, wrong = run_app(tmp_path, scenario)
        assert missing.status == 404
        assert wrong.status == 405
        assert dict(wrong.headers)["Allow"] == "POST"

    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        async def scenario(app):
            body = (event_lines(["AB"])[0] + "\n").encode()
            request = make_request(
                "POST", f"/v1/{PROCESS}/events", body=body
            )
            first = await app.handle(request)
            second = await app.handle(request)
            flushed = await app.handle(
                make_request("POST", f"/v1/{PROCESS}/flush")
            )
            return first, second, flushed

        first, second, flushed = run_app(
            tmp_path, scenario, queue_limit=1
        )
        assert first.status == 202
        assert second.status == 429
        assert dict(second.headers)["Retry-After"] == "1"
        assert flushed.status == 200

    def test_large_body_off_loop_decode_matches_small_batches(
        self, tmp_path
    ):
        """Bodies over the offload threshold decode in the executor
        pool; the resulting state must be byte-identical to the same
        lines pushed as many small inline-decoded bodies."""
        from repro.service.server import _OFFLOAD_BODY_BYTES

        sequences = ["ABCF", "ACDF", "ABDF", "ABCDF"] * 50
        lines = event_lines(sequences)
        body = ("\n".join(lines) + "\n").encode()
        assert len(body) >= _OFFLOAD_BODY_BYTES

        async def one_big(app):
            response = await app.handle(
                make_request("POST", f"/v1/{PROCESS}/events", body=body)
            )
            assert response.status == 202
            flushed = await app.handle(
                make_request("POST", f"/v1/{PROCESS}/flush")
            )
            assert json.loads(flushed.body)["executions"] == len(
                sequences
            )
            state = await app.handle(
                make_request("GET", f"/v1/{PROCESS}/state")
            )
            return state.body

        async def many_small(app):
            for start in range(0, len(lines), 100):
                chunk = (
                    "\n".join(lines[start : start + 100]) + "\n"
                ).encode()
                assert len(chunk) < _OFFLOAD_BODY_BYTES
                response = await app.handle(
                    make_request(
                        "POST", f"/v1/{PROCESS}/events", body=chunk
                    )
                )
                assert response.status == 202
            flushed = await app.handle(
                make_request("POST", f"/v1/{PROCESS}/flush")
            )
            assert flushed.status == 200
            state = await app.handle(
                make_request("GET", f"/v1/{PROCESS}/state")
            )
            return state.body

        big = run_app(tmp_path / "big", one_big)
        small = run_app(
            tmp_path / "small", many_small, queue_limit=128
        )
        assert big == small

    def test_queued_format_errors_are_reported_on_flush(self, tmp_path):
        async def scenario(app):
            bad = make_request(
                "POST",
                f"/v1/{PROCESS}/events",
                body=b"this is not json\n",
            )
            assert (await app.handle(bad)).status == 202
            flushed = await app.handle(
                make_request("POST", f"/v1/{PROCESS}/flush")
            )
            return json.loads(flushed.body)

        stats = run_app(tmp_path, scenario)
        assert stats["quarantined_lines"] == 1

    def test_healthz_and_draining(self, tmp_path):
        async def scenario(app):
            live = await app.handle(make_request("GET", "/healthz"))
            app.draining = True
            draining = await app.handle(make_request("GET", "/healthz"))
            rejected = await app.handle(
                make_request(
                    "POST", f"/v1/{PROCESS}/events", body=b"{}\n"
                )
            )
            app.draining = False
            return live, draining, rejected

        live, draining, rejected = run_app(tmp_path, scenario)
        assert live.status == 200
        assert json.loads(live.body)["status"] == "ok"
        assert draining.status == 503
        assert rejected.status == 503

    def test_metrics_endpoint_parses_and_counts(self, tmp_path):
        async def scenario(app):
            await push_and_flush(app)
            response = await app.handle(
                make_request("GET", "/metrics")
            )
            assert response.status == 200
            assert response.content_type == wire.MEDIA_PROMETHEUS
            return response.body.decode("utf-8")

        text = run_app(tmp_path, scenario, recorder=ObsRecorder())
        samples = parse_prometheus(text)
        names = {name for name, _ in samples}
        assert "repro_service_events_total" in names
        assert "repro_service_requests_total" in names
        assert "repro_service_tenants" in names

    def test_lint_endpoint_honors_config(self, tmp_path):
        """PM108 fires on the raw follows graph; ignoring it passes."""

        async def scenario(app):
            await push_and_flush(app)
            strict = await app.handle(
                make_request("POST", f"/v1/{PROCESS}/lint")
            )
            relaxed = await app.handle(
                make_request(
                    "POST",
                    f"/v1/{PROCESS}/lint",
                    body=b'{"ignore": ["PM108"]}',
                )
            )
            assert strict.status == 200
            assert relaxed.status == 200
            return json.loads(strict.body), json.loads(relaxed.body)

        strict, relaxed = run_app(tmp_path, scenario)
        assert strict["exit_code"] == 2
        codes = {
            finding["code"]
            for finding in strict["report"]["diagnostics"]
        }
        assert codes == {"PM108"}
        assert relaxed["exit_code"] == 0

    def test_lint_rejects_malformed_config(self, tmp_path):
        async def scenario(app):
            await push_and_flush(app)
            response = await app.handle(
                make_request(
                    "POST", f"/v1/{PROCESS}/lint", body=b"[not, an, obj"
                )
            )
            return response.status

        assert run_app(tmp_path, scenario) == 400

    def test_tenants_listing(self, tmp_path):
        async def scenario(app):
            await push_and_flush(app, process="alpha")
            await push_and_flush(app, process="beta")
            response = await app.handle(
                make_request("GET", "/v1/tenants")
            )
            return json.loads(response.body)

        document = run_app(tmp_path, scenario)
        names = [entry["process"] for entry in document["tenants"]]
        assert names == ["alpha", "beta"]

    def test_maintenance_flushes_idle_open_windows(self, tmp_path):
        async def scenario(app):
            body = ("\n".join(event_lines(["ABCF"])) + "\n").encode()
            await app.handle(
                make_request("POST", f"/v1/{PROCESS}/events", body=body)
            )
            worker = app._workers[PROCESS]
            await worker.drain()
            assert worker.tenant.stream.open_executions == 1
            worker.last_activity -= 3600.0
            flushed = await app.maintenance_pass()
            assert flushed == 1
            response = await app.handle(
                make_request("GET", f"/v1/{PROCESS}/model")
            )
            return response.status

        assert run_app(tmp_path, scenario) == 200

    def test_shutdown_then_restart_serves_same_bytes(self, tmp_path):
        async def first(app):
            await push_and_flush(app)
            response = await app.handle(
                make_request("GET", f"/v1/{PROCESS}/state")
            )
            return response.body

        async def second(app):
            state = await app.handle(
                make_request("GET", f"/v1/{PROCESS}/state")
            )
            model = await app.handle(
                make_request(
                    "GET",
                    f"/v1/{PROCESS}/model",
                    query={"format": "edges"},
                )
            )
            return state.body, model.status

        before = run_app(tmp_path, first)
        after, model_status = run_app(tmp_path, second)
        assert after == before
        assert model_status == 200


class TestDaemon:
    """The real daemon process: the CI service job's contract."""

    @staticmethod
    def start(data_dir, port_file, *extra):
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"),
        )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(data_dir),
                "--port",
                "0",
                "--port-file",
                str(port_file),
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    @staticmethod
    def ready_client(port_file):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if port_file.exists():
                port = int(port_file.read_text().strip())
                client = ServiceClient(port=port, timeout=10.0)
                client.wait_ready(budget=10.0)
                return client
            time.sleep(0.05)
        raise ServiceUnavailable("port file never appeared")

    @staticmethod
    def stop(daemon):
        daemon.send_signal(signal.SIGTERM)
        try:
            return daemon.communicate(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hang
            daemon.kill()
            raise

    def test_serve_push_mine_parity_sigterm_resume(self, tmp_path):
        data_dir = tmp_path / "data"
        port_file = tmp_path / "port"
        daemon = self.start(data_dir, port_file)
        try:
            client = self.ready_client(port_file)
            client.push_lines(PROCESS, event_lines(SEQUENCES))
            stats = client.flush(PROCESS)
            assert stats["executions"] == len(SEQUENCES)
            model = client.model_text(PROCESS, fmt="edges")
            state = client.state_bytes(PROCESS)
            samples = parse_prometheus(client.metrics())
            assert any(
                name == "repro_service_requests_total"
                for name, _ in samples
            )
        finally:
            stdout, stderr = self.stop(daemon)
        assert daemon.returncode == 0, stderr
        assert f"checkpointed {PROCESS!r}" in stderr

        # Batch CLI parity on the same records.
        log = write_tsv(tmp_path, SEQUENCES)
        state_out = tmp_path / "cli-state.json"
        mined = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "mine",
                str(log),
                "--algorithm",
                "general-dag",
                "--format",
                "edges",
                "--stream",
                "--state-out",
                str(state_out),
            ],
            env=dict(
                os.environ,
                PYTHONPATH=str(
                    Path(__file__).resolve().parents[1] / "src"
                ),
            ),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert mined.returncode == 0, mined.stderr
        assert model == mined.stdout.encode("utf-8")
        assert state == state_out.read_bytes()

        # Restart: the recovered daemon serves the same bytes.
        restarted = self.start(data_dir, tmp_path / "port2")
        try:
            client = self.ready_client(tmp_path / "port2")
            assert client.state_bytes(PROCESS) == state
            assert client.model_text(PROCESS, fmt="edges") == model
        finally:
            stdout, stderr = self.stop(restarted)
        assert restarted.returncode == 0, stderr
        assert f"recovered {PROCESS}" in stderr
