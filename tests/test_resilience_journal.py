"""Write-ahead journal and durable-write primitives.

The journal's contract is *prefix recovery*: whatever bytes survive a
crash, scanning yields an unbroken prefix of the appended records, a
torn final frame is discarded (and truncated away on reopen), and
damage anywhere earlier is reported as corruption rather than silently
skipped.  The hypothesis property drives that contract directly:
append N records, truncate the segment at a random byte, and assert
the replay is an exact prefix.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JournalError
from repro.logs.events import EventRecord
from repro.logs.execution import Execution
from repro.resilience.durable import crc32c, durable_write
from repro.resilience.journal import (
    MAGIC,
    Journal,
    decode_execution,
    encode_execution,
    list_segments,
    pack_frame,
    replay_executions,
    scan_journal,
    scan_segment,
)


def payloads(count):
    return [f"record-{i:04d}".encode() for i in range(count)]


def append_all(directory, items, sync=False):
    with Journal(directory, sync=sync) as journal:
        for item in items:
            journal.append(item)


class TestCrc32c:
    def test_castagnoli_check_vector(self):
        # The canonical CRC-32C check value (RFC 3720 appendix).
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_is_zero(self):
        assert crc32c(b"") == 0


class TestDurableWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.json"
        durable_write(target, b"first")
        durable_write(target, b"second")
        assert target.read_bytes() == b"second"

    def test_leaves_no_temp_siblings(self, tmp_path):
        target = tmp_path / "out.json"
        durable_write(target, b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestFraming:
    def test_round_trip(self, tmp_path):
        items = payloads(10)
        append_all(tmp_path, items)
        scan = scan_journal(tmp_path)
        assert [p for _, p in scan.records] == items
        assert [s for s, _ in scan.records] == list(range(1, 11))
        assert not scan.torn_tail and not scan.corrupt

    def test_payload_size_bound(self, tmp_path):
        from repro.resilience.journal import MAX_PAYLOAD

        with pytest.raises(JournalError):
            pack_frame(b"x" * (MAX_PAYLOAD + 1))

    def test_bad_magic_raises(self, tmp_path):
        bogus = tmp_path / "wal-0000000000000001.seg"
        bogus.write_bytes(b"NOTAWAL!" + pack_frame(b"x"))
        with pytest.raises(JournalError):
            scan_segment(bogus, 1)


class TestTornTail:
    def test_torn_final_frame_is_tolerated(self, tmp_path):
        items = payloads(5)
        append_all(tmp_path, items)
        (seq, path), = [
            (s, p)
            for s, p in list_segments(tmp_path)
        ]
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        scan = scan_journal(tmp_path)
        assert scan.torn_tail and not scan.corrupt
        assert [p for _, p in scan.records] == items[:4]

    def test_reopen_truncates_torn_tail(self, tmp_path):
        append_all(tmp_path, payloads(5))
        (_, path), = list_segments(tmp_path)
        good = path.read_bytes()
        path.write_bytes(good[:-3])
        journal = Journal(tmp_path, sync=False)
        assert journal.last_seq == 4
        journal.append(b"replacement")
        journal.close()
        scan = scan_journal(tmp_path)
        assert not scan.torn_tail and not scan.corrupt
        assert scan.records[-1] == (5, b"replacement")

    def test_corrupt_frame_in_nonfinal_segment(self, tmp_path):
        with Journal(tmp_path, sync=False) as journal:
            for item in payloads(3):
                journal.append(item)
            journal.rotate()
            journal.append(b"next-segment")
        first = list_segments(tmp_path)[0][1]
        data = bytearray(first.read_bytes())
        data[len(MAGIC) + 8] ^= 0xFF  # first frame's payload byte
        first.write_bytes(bytes(data))
        scan = scan_journal(tmp_path)
        assert scan.corrupt
        with pytest.raises(JournalError):
            list(replay_executions(tmp_path))

    def test_segment_gap_is_corrupt(self, tmp_path):
        with Journal(tmp_path, sync=False) as journal:
            for item in payloads(3):
                journal.append(item)
            journal.rotate()
            journal.append(b"tail")
        last = list_segments(tmp_path)[-1][1]
        os.rename(last, last.with_name("wal-0000000000000009.seg"))
        assert scan_journal(tmp_path).corrupt


class TestPruneAndAdvance:
    def test_prune_keeps_uncovered_segments(self, tmp_path):
        with Journal(tmp_path, sync=False) as journal:
            for item in payloads(4):
                journal.append(item)
            journal.rotate()
            for item in payloads(4):
                journal.append(item)
            journal.rotate()
            assert journal.prune(upto_seq=4) == 1
            scan = scan_journal(tmp_path)
            assert [s for s, _ in scan.records] == [5, 6, 7, 8]

    def test_advance_to_restarts_numbering(self, tmp_path):
        with Journal(tmp_path, sync=False) as journal:
            for item in payloads(3):
                journal.append(item)
            journal.advance_to(10)
            assert journal.append(b"after") == 11
        scan = scan_journal(tmp_path)
        assert not scan.corrupt
        assert scan.records == [(11, b"after")]

    def test_advance_to_never_moves_backwards(self, tmp_path):
        with Journal(tmp_path, sync=False) as journal:
            for item in payloads(5):
                journal.append(item)
            journal.advance_to(2)
            assert journal.last_seq == 5


class TestExecutionPayloads:
    def test_execution_round_trip(self):
        execution = Execution.from_sequence(list("ABC"), "exec-7")
        rebuilt = decode_execution(encode_execution(execution))
        assert rebuilt.execution_id == "exec-7"
        assert [r.activity for r in rebuilt.records] == [
            r.activity for r in execution.records
        ]

    def test_output_tuples_survive(self):
        records = [
            EventRecord(1.0, "e", "A", "START"),
            EventRecord(2.0, "e", "A", "END", output=(1, "x")),
        ]
        execution = Execution("e", records)
        rebuilt = decode_execution(encode_execution(execution))
        assert rebuilt.records[1].output == (1, "x")

    def test_garbage_payload_raises(self):
        with pytest.raises(JournalError):
            decode_execution(b'{"id": "e"}')


class TestTruncationProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=12),
        cut=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    def test_any_truncation_replays_a_prefix(
        self, tmp_path_factory, count, cut, data
    ):
        """Journal write -> truncate anywhere -> replay is a prefix."""
        directory = tmp_path_factory.mktemp("wal")
        executions = [
            Execution.from_sequence(
                data.draw(
                    st.lists(
                        st.sampled_from("ABCDE"),
                        min_size=1,
                        max_size=6,
                    )
                ),
                f"e{i:03d}",
            )
            for i in range(count)
        ]
        with Journal(directory, sync=False) as journal:
            for execution in executions:
                journal.append_execution(execution)
        (_, path), = list_segments(directory)
        blob = path.read_bytes()
        path.write_bytes(blob[: min(cut, len(blob))])
        scan = scan_journal(directory)
        assert not scan.corrupt
        recovered = [
            execution
            for _, execution in replay_executions(directory)
        ]
        # An unbroken prefix, record for record.
        assert len(recovered) <= count
        for original, replayed in zip(executions, recovered):
            assert encode_execution(original) == encode_execution(
                replayed
            )
