"""Differential tests: fast interned/variant/parallel core vs reference.

The high-throughput pipeline of :mod:`repro.core.general_dag` (packed
pair codes, trace-variant dedup, optional worker processes) must be
*byte-identical* in output to the naive per-execution pipeline retained
in :mod:`repro.core.reference`.  These hypothesis properties drive both
over random logs — sequential subset logs, duplicated-variant logs,
cyclic logs with relabelled instances, and overlapping-interval logs —
and assert equal node sets, edge sets, and stage diagnostics.
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.general_dag import (
    MiningTrace,
    mine_general_dag,
    prepare_log,
)
from repro.core.cyclic import mine_cyclic
from repro.core.incremental import IncrementalMiner
from repro.core.reference import (
    mine_cyclic_reference,
    mine_general_dag_reference,
    prepare_log_reference,
)
from repro.logs.event_log import EventLog
from repro.logs.events import end_event, start_event
from repro.logs.execution import Execution


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def subset_logs(draw, max_activities=7, max_executions=10):
    """Sequential logs whose executions may skip interior activities and
    may repeat whole traces (exercising variant dedup)."""
    n = draw(st.integers(min_value=1, max_value=max_activities))
    interior = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    duplicate = draw(st.booleans())
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        chosen = [a for a in interior if rng.random() < 0.7]
        rng.shuffle(chosen)
        sequences.append(["S", *chosen, "Z"])
    if duplicate and sequences:
        # Repeat a random prefix of the log so several executions share
        # one trace variant.
        sequences += sequences[: rng.randint(1, len(sequences))]
    return EventLog.from_sequences(sequences)


@st.composite
def cyclic_logs(draw, max_activities=5, max_executions=8):
    """Logs whose executions repeat activities (Algorithm 3's setting)."""
    n = draw(st.integers(min_value=1, max_value=max_activities))
    activities = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        length = rng.randint(1, 8)
        sequence = [rng.choice(activities) for _ in range(length)]
        sequences.append(["S", *sequence, "Z"])
    if draw(st.booleans()) and sequences:
        sequences += sequences[: rng.randint(1, len(sequences))]
    return EventLog.from_sequences(sequences)


@st.composite
def interval_logs(draw, max_activities=6, max_executions=6):
    """Logs with arbitrary activity intervals, including overlaps.

    Random start/duration pairs make some instances run concurrently,
    which drives the overlap-independence filter — the path the
    sequential-trace shortcut never takes.
    """
    n = draw(st.integers(min_value=2, max_value=max_activities))
    activities = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    executions = []
    for index in range(m):
        chosen = [a for a in activities if rng.random() < 0.8] or [
            activities[0]
        ]
        records = []
        execution_id = f"iv-{index}"
        for activity in chosen:
            start = rng.randint(0, 20)
            end = start + rng.randint(1, 6)
            records.append(start_event(execution_id, activity, start))
            records.append(end_event(execution_id, activity, end))
        executions.append(Execution(execution_id, records))
    return EventLog(executions)


def assert_same_mining(fast_graph, ref_graph, fast_trace, ref_trace):
    assert set(fast_graph.nodes()) == set(ref_graph.nodes())
    assert fast_graph.edge_set() == ref_graph.edge_set()
    assert fast_trace.pair_counts == ref_trace.pair_counts
    assert fast_trace.overlap_counts == ref_trace.overlap_counts
    assert fast_trace.edges_after_step2 == ref_trace.edges_after_step2
    assert (
        fast_trace.edges_dropped_by_threshold
        == ref_trace.edges_dropped_by_threshold
    )
    assert (
        fast_trace.edges_dropped_by_overlap
        == ref_trace.edges_dropped_by_overlap
    )
    assert fast_trace.edges_after_step3 == ref_trace.edges_after_step3
    assert fast_trace.edges_after_step4 == ref_trace.edges_after_step4
    assert fast_trace.edges_after_step6 == ref_trace.edges_after_step6
    assert fast_trace.scc_edge_removals == ref_trace.scc_edge_removals


# ---------------------------------------------------------------------------
# Algorithm 2 differentials
# ---------------------------------------------------------------------------
@given(subset_logs(), st.integers(min_value=0, max_value=3))
def test_general_dag_matches_reference(log, threshold):
    fast_trace, ref_trace = MiningTrace(), MiningTrace()
    fast = mine_general_dag(log, threshold=threshold, trace=fast_trace)
    ref = mine_general_dag_reference(
        log, threshold=threshold, trace=ref_trace
    )
    assert_same_mining(fast, ref, fast_trace, ref_trace)
    assert fast_trace.execution_count == len(log)
    assert fast_trace.variant_count <= fast_trace.execution_count


@given(interval_logs(), st.integers(min_value=0, max_value=2))
def test_overlapping_intervals_match_reference(log, threshold):
    fast_trace, ref_trace = MiningTrace(), MiningTrace()
    fast = mine_general_dag(log, threshold=threshold, trace=fast_trace)
    ref = mine_general_dag_reference(
        log, threshold=threshold, trace=ref_trace
    )
    assert_same_mining(fast, ref, fast_trace, ref_trace)


@given(subset_logs())
def test_prepare_log_matches_reference(log):
    assert prepare_log(log) == prepare_log_reference(log)


# ---------------------------------------------------------------------------
# Algorithm 3 differentials (relabelled instances)
# ---------------------------------------------------------------------------
@given(cyclic_logs(), st.integers(min_value=0, max_value=3))
def test_cyclic_matches_reference(log, threshold):
    fast_trace, ref_trace = MiningTrace(), MiningTrace()
    fast = mine_cyclic(log, threshold=threshold, trace=fast_trace)
    ref = mine_cyclic_reference(
        log, threshold=threshold, trace=ref_trace
    )
    assert set(fast.nodes()) == set(ref.nodes())
    assert fast.edge_set() == ref.edge_set()
    assert fast_trace.pair_counts == ref_trace.pair_counts
    assert fast_trace.edges_after_step6 == ref_trace.edges_after_step6


# ---------------------------------------------------------------------------
# Incremental miner stays equivalent to the batch fast path
# ---------------------------------------------------------------------------
@given(subset_logs(max_executions=6))
def test_incremental_matches_batch_reference(log):
    miner = IncrementalMiner()
    miner.add_log(log)
    ref = mine_general_dag_reference(log)
    mined = miner.graph()
    assert set(mined.nodes()) == set(ref.nodes())
    assert mined.edge_set() == ref.edge_set()
    assert miner.execution_count == len(log)
    assert miner.variant_count <= miner.execution_count


# ---------------------------------------------------------------------------
# Parallel determinism: jobs=1 and jobs=2 agree exactly
# ---------------------------------------------------------------------------
def test_parallel_jobs_deterministic_general():
    log = EventLog.from_sequences(
        ["SABZ", "SBAZ", "SACZ", "SCZ", "SABZ", "SBCZ"] * 3
    )
    serial_trace, parallel_trace = MiningTrace(), MiningTrace()
    serial = mine_general_dag(log, trace=serial_trace, jobs=1)
    parallel = mine_general_dag(log, trace=parallel_trace, jobs=2)
    assert set(serial.nodes()) == set(parallel.nodes())
    assert serial.edge_set() == parallel.edge_set()
    assert serial_trace.pair_counts == parallel_trace.pair_counts
    assert serial_trace.jobs == 1
    assert parallel_trace.jobs == 2


def test_parallel_jobs_deterministic_cyclic():
    log = EventLog.from_sequences(
        ["SABABZ", "SABZ", "SBAZ", "SABABZ"] * 2
    )
    serial = mine_cyclic(log, jobs=1)
    parallel = mine_cyclic(log, jobs=2)
    assert set(serial.nodes()) == set(parallel.nodes())
    assert serial.edge_set() == parallel.edge_set()


def test_parallel_jobs_match_on_interval_log():
    records = []
    for execution_id, offsets in (
        ("p-0", [(0, 5), (2, 4), (6, 8)]),
        ("p-1", [(0, 1), (1, 3), (2, 6)]),
    ):
        for (start, end), activity in zip(offsets, "ABC"):
            records.append(start_event(execution_id, activity, start))
            records.append(end_event(execution_id, activity, end))
    log = EventLog(
        [
            Execution("p-0", [r for r in records if r.execution_id == "p-0"]),
            Execution("p-1", [r for r in records if r.execution_id == "p-1"]),
        ]
    )
    serial = mine_general_dag(log, jobs=1)
    parallel = mine_general_dag(log, jobs=2)
    ref = mine_general_dag_reference(log)
    assert serial.edge_set() == parallel.edge_set() == ref.edge_set()
    assert (
        set(serial.nodes()) == set(parallel.nodes()) == set(ref.nodes())
    )
