"""Unit tests for Algorithms 1, 2 and 3 against the paper's examples."""

import pytest

from repro.core.cyclic import (
    max_instance_counts,
    merge_instances,
    mine_cyclic,
    prepare_labelled_log,
)
from repro.core.general_dag import (
    MiningTrace,
    mine_general_dag,
    mine_prepared,
    prepare_log,
    presence_by_vertex,
)
from repro.core.special_dag import mine_special_dag
from repro.datasets.examples import (
    example6_expected_edges,
    example6_log,
    example7_expected_edges,
    example7_log,
    example8_expected_cycle,
    example8_log,
    open_problem_log,
)
from repro.errors import EmptyLogError, MiningError
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog


class TestAlgorithm1:
    def test_example6_published_result(self):
        mined = mine_special_dag(example6_log())
        assert mined.edge_set() == example6_expected_edges()

    def test_single_execution_yields_chain(self):
        mined = mine_special_dag(EventLog.from_sequences(["ABCD"]))
        assert mined.edge_set() == {("A", "B"), ("B", "C"), ("C", "D")}

    def test_fully_parallel_interior(self):
        log = EventLog.from_sequences(
            ["ABCD", "ACBD"]
        )  # B, C in both orders
        mined = mine_special_dag(log)
        assert mined.edge_set() == {
            ("A", "B"),
            ("A", "C"),
            ("B", "D"),
            ("C", "D"),
        }

    def test_output_is_transitively_reduced(self):
        from repro.graphs.transitive import is_transitively_reduced

        mined = mine_special_dag(example6_log())
        assert is_transitively_reduced(mined)

    def test_missing_activity_rejected_in_strict_mode(self):
        log = EventLog.from_sequences(["ABC", "AC"])
        with pytest.raises(MiningError, match="misses activities"):
            mine_special_dag(log)

    def test_repeated_activity_rejected_in_strict_mode(self):
        log = EventLog.from_sequences(["ABAC"])
        with pytest.raises(MiningError, match="repeats"):
            mine_special_dag(log)

    def test_non_strict_mode_mines_anyway(self):
        log = EventLog.from_sequences(["ABC", "AC"])
        mined = mine_special_dag(log, strict=False)
        assert mined.has_edge("A", "B")

    def test_empty_log_rejected(self):
        with pytest.raises(EmptyLogError):
            mine_special_dag(EventLog())

    def test_minimality_against_alternative(self):
        # Any conformal graph must contain at least the mined edges: the
        # mined graph is the transitive reduction of the dependency order.
        log = EventLog.from_sequences(["ABCDE", "ACDBE", "ACBDE"])
        mined = mine_special_dag(log)
        from repro.core.dependency import dependency_relation

        relation = dependency_relation(log)
        minimal = relation.minimal_graph()
        assert mined.edge_set() == minimal.edge_set()


class TestAlgorithm2:
    def test_example7_published_result(self):
        mined = mine_general_dag(example7_log())
        assert mined.edge_set() == example7_expected_edges()

    def test_example7_scc_removed(self):
        trace = MiningTrace()
        mine_general_dag(example7_log(), trace=trace)
        # C, D, E form one strongly connected component: 3 edges removed.
        assert trace.scc_edge_removals == 3

    def test_example5_dependency_graph_allows_all_executions(self):
        # The log {ADCE, ABCDE} of Example 5: Algorithm 2's result must be
        # consistent with both executions (the second graph of Figure 2
        # was not).
        from repro.core.conformance import is_consistent

        log = EventLog.from_sequences(["ADCE", "ABCDE"])
        mined = mine_general_dag(log)
        for execution in log:
            assert is_consistent(mined, execution, "A", "E") is None

    def test_open_problem_log_mines_conformal_graph(self):
        from repro.core.conformance import check_conformance

        log = open_problem_log()
        mined = mine_general_dag(log)
        report = check_conformance(mined, log)
        assert report.is_conformal, report.violations()

    def test_trace_stage_counts_monotone(self):
        trace = MiningTrace()
        mine_general_dag(example7_log(), trace=trace)
        assert trace.edges_after_step2 >= trace.edges_after_step3
        assert trace.edges_after_step3 >= trace.edges_after_step4
        assert trace.edges_after_step4 >= trace.edges_after_step6

    def test_agrees_with_algorithm1_on_complete_logs(self):
        log = example6_log()
        assert mine_general_dag(log).edge_set() == mine_special_dag(
            log
        ).edge_set()

    def test_empty_log_rejected(self):
        with pytest.raises(EmptyLogError):
            mine_general_dag(EventLog())

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            mine_general_dag(example7_log(), threshold=-1)

    def test_all_kept_edges_needed_by_some_execution(self):
        # Step 6: every surviving edge appears in at least one
        # per-execution transitive reduction.
        log = example7_log()
        mined = mine_general_dag(log)
        from repro.graphs.transitive import transitive_reduction_edges

        needed = set()
        edge_set = mined.edge_set()
        for execution in log:
            pairs = set(execution.ordered_pairs())
            induced = DiGraph(
                nodes=execution.activities, edges=pairs & edge_set
            )
            needed |= transitive_reduction_edges(induced)
        assert edge_set == needed

    def test_ablation_switches(self):
        prepared = prepare_log(example7_log())
        with_scc = mine_prepared(prepared)
        without_scc = mine_prepared(prepared, skip_scc_removal=True)
        # Without SCC removal the C/D/E independence cycle survives.
        assert without_scc.edge_count > with_scc.edge_count
        unmarked = mine_prepared(prepared, skip_execution_marking=True)
        assert unmarked.edge_count >= with_scc.edge_count

    def test_presence_by_vertex(self):
        prepared = prepare_log(example7_log())
        counts = presence_by_vertex(prepared)
        assert counts["A"] == 4
        assert counts["B"] == 1


class TestAlgorithm3:
    def test_example8_cycle_recovered(self):
        mined = mine_cyclic(example8_log())
        for edge in example8_expected_cycle():
            assert mined.has_edge(*edge), edge

    def test_example8_published_merged_graph(self):
        mined = mine_cyclic(example8_log())
        # Figure 6 (right): the merged graph's backbone.
        assert mined.has_edge("A", "B")
        assert mined.has_edge("A", "D")
        assert mined.has_edge("C", "E")
        assert mined.has_edge("D", "E")
        # No self-loops ever.
        for node in mined.nodes():
            assert not mined.has_edge(node, node)

    def test_example8_instance_graph_structure(self):
        merged, instances = mine_cyclic(
            example8_log(), return_instance_graph=True
        )
        # The paper notes there are no edges between D and C1 (both
        # orders observed) nor between D and B2.
        assert not instances.has_edge(("D", 1), ("C", 1))
        assert not instances.has_edge(("C", 1), ("D", 1))
        assert not instances.has_edge(("D", 1), ("B", 2))
        assert not instances.has_edge(("B", 2), ("D", 1))

    def test_acyclic_log_matches_algorithm2(self):
        log = example7_log()
        assert mine_cyclic(log).edge_set() == mine_general_dag(
            log
        ).edge_set()

    def test_merge_instances(self):
        instance_graph = DiGraph(
            edges=[
                (("A", 1), ("B", 1)),
                (("B", 1), ("C", 1)),
                (("C", 1), ("B", 2)),
                (("B", 1), ("B", 2)),  # same activity: no self-loop
            ]
        )
        merged = merge_instances(instance_graph)
        assert merged.edge_set() == {
            ("A", "B"),
            ("B", "C"),
            ("C", "B"),
        }

    def test_prepare_labelled_log(self):
        prepared = prepare_labelled_log(
            EventLog.from_sequences(["ABA"])
        )
        assert prepared[0].vertices == {("A", 1), ("B", 1), ("A", 2)}
        assert (("A", 1), ("A", 2)) in prepared[0].pairs

    def test_max_instance_counts(self):
        counts = max_instance_counts(example8_log())
        assert counts["B"] == 2
        assert counts["C"] == 2
        assert counts["A"] == 1

    def test_empty_log_rejected(self):
        with pytest.raises(EmptyLogError):
            mine_cyclic(EventLog())

    def test_self_loop_style_repetition(self):
        # A immediately repeated: A1 -> A2 edge merges away, but the
        # mined graph must not invent a self-loop.
        log = EventLog.from_sequences(["SAAE", "SAE"])
        mined = mine_cyclic(log)
        assert not mined.has_edge("A", "A")
        assert mined.has_edge("S", "A")
        assert mined.has_edge("A", "E")
