"""Tests for ``repro.devlint`` — the codebase linting itself.

Covers every RL code with a trigger/clean fixture pair, the engine's
suppression and baseline machinery, the CLI surface, the shared-
vocabulary SARIF round-trip through the ``repro.lint`` emitters, and
the two acceptance mutations (a reintroduced raw ``open("w")`` and an
unsorted-set serialization) against copies of the real source files.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.devlint.baseline import (
    Baseline,
    baseline_from_entries,
    load_baseline,
    save_baseline,
)
from repro.devlint.cli import main as devlint_main
from repro.devlint.context import SourceModule
from repro.devlint.emitters import (
    DEVLINT_TOOL_NAME,
    render_json,
    render_sarif,
    render_text,
)
from repro.devlint.engine import (
    CODE_PARSE_ERROR,
    CODE_STALE_SUPPRESSION,
    PROJECT_ARTIFACT,
    DevConfig,
    run_devlint,
    rules_for_report,
)
from repro.devlint.rules import all_dev_rules, get_dev_rule
from repro.lint.diagnostics import Severity
from repro.lint.emitters import render_sarif as lint_render_sarif
from repro.lint.engine import LintReport

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"


def run_on(
    source,
    filename="pkg/mod.py",
    select=None,
    registry=None,
    project_root=None,
):
    """Run devlint over one in-memory module."""
    module = SourceModule(
        Path("/virtual") / filename,
        filename,
        textwrap.dedent(source),
    )
    config = DevConfig(
        select=frozenset(select) if select else None,
        registry_names=registry,
        project_root=project_root,
    )
    return run_devlint([], config=config, modules=[module])


def codes(report):
    return [diagnostic.code for diagnostic in report.diagnostics]


# ---------------------------------------------------------------------------
# Registry basics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_twelve_rules_in_four_families(self):
        rules = all_dev_rules()
        assert len(rules) == 12
        families = {rule.code[:3] for rule in rules}
        assert families == {"RL1", "RL2", "RL3", "RL4"}
        assert [r.code for r in rules] == sorted(r.code for r in rules)

    def test_get_dev_rule(self):
        rule = get_dev_rule("RL101")
        assert rule.name == "raw-artifact-write"
        with pytest.raises(KeyError):
            get_dev_rule("RL999")

    def test_as_lint_rule_carries_metadata(self):
        rule = get_dev_rule("RL403")
        adapted = rule.as_lint_rule()
        assert adapted.code == "RL403"
        assert adapted.severity is rule.severity
        assert adapted.description == rule.description


# ---------------------------------------------------------------------------
# RL1xx durability
# ---------------------------------------------------------------------------
class TestDurabilityRules:
    def test_rl101_triggers_on_raw_write(self):
        report = run_on(
            """
            def save(path, data):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(data)
            """,
            select=["RL101"],
        )
        assert codes(report) == ["RL101"]
        assert report.exit_code == 1

    def test_rl101_triggers_on_write_text(self):
        report = run_on(
            """
            from pathlib import Path

            def save(path, data):
                Path(path).write_text(data)
            """,
            select=["RL101"],
        )
        assert codes(report) == ["RL101"]

    def test_rl101_clean_on_reads_and_durable_module(self):
        clean = run_on(
            """
            def load(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()
            """,
            select=["RL101"],
        )
        assert codes(clean) == []
        exempt = run_on(
            "def write(path, data):\n"
            "    open(path, 'wb').write(data)\n",
            filename="repro/resilience/durable.py",
            select=["RL101"],
        )
        assert codes(exempt) == []

    def test_rl102_triggers_without_fsync(self):
        report = run_on(
            """
            import os

            def rotate(tmp, path):
                os.replace(tmp, path)
            """,
            select=["RL102"],
        )
        assert codes(report) == ["RL102"]

    def test_rl102_clean_with_fsync(self):
        report = run_on(
            """
            import os
            from repro.resilience.durable import fsync_directory

            def rotate(tmp, path):
                os.replace(tmp, path)
                fsync_directory(path.parent)
            """,
            select=["RL102"],
        )
        assert codes(report) == []

    def test_rl103_triggers_outside_resilience(self):
        report = run_on(
            """
            def fallback(path):
                return path.with_name(path.name + ".prev")
            """,
            select=["RL103"],
        )
        assert codes(report) == ["RL103"]
        assert "PREVIOUS_SUFFIX" in report.diagnostics[0].fixit

    def test_rl103_clean_inside_resilience_and_docstrings(self):
        exempt = run_on(
            "CHECKPOINT_NAME = 'checkpoint.json'\n",
            filename="repro/resilience/session.py",
            select=["RL103"],
        )
        assert codes(exempt) == []
        docstring = run_on(
            '"""Talks about checkpoint.json in prose only."""\n',
            select=["RL103"],
        )
        assert codes(docstring) == []


# ---------------------------------------------------------------------------
# RL2xx determinism
# ---------------------------------------------------------------------------
class TestDeterminismRules:
    def test_rl201_triggers_on_set_iteration_in_serializer(self):
        report = run_on(
            """
            def to_payload(edges):
                return [edge for edge in set(edges)]
            """,
            select=["RL201"],
        )
        assert codes(report) == ["RL201"]

    def test_rl201_triggers_on_dict_values(self):
        report = run_on(
            """
            def to_json(table):
                out = []
                for entry in table.values():
                    out.append(entry)
                return out
            """,
            select=["RL201"],
        )
        assert codes(report) == ["RL201"]

    def test_rl201_clean_when_sorted_or_sink_or_noncanonical(self):
        assert (
            codes(
                run_on(
                    "def to_payload(edges):\n"
                    "    return [e for e in sorted(set(edges))]\n",
                    select=["RL201"],
                )
            )
            == []
        )
        assert (
            codes(
                run_on(
                    "def to_payload(edges):\n"
                    "    return sum(e.weight for e in set(edges))\n",
                    select=["RL201"],
                )
            )
            == []
        )
        # Non-canonical function names are out of scope entirely.
        assert (
            codes(
                run_on(
                    "def display(edges):\n"
                    "    return [e for e in set(edges)]\n",
                    select=["RL201"],
                )
            )
            == []
        )

    def test_rl202_triggers_on_wall_clock_and_bare_random(self):
        report = run_on(
            """
            import random
            import time

            def stamp():
                return time.time(), random.random()
            """,
            select=["RL202"],
        )
        assert codes(report) == ["RL202", "RL202"]

    def test_rl202_clean_with_injected_clock_and_seeded_rng(self):
        report = run_on(
            """
            import random

            from repro.resilience.faults import now

            def stamp(seed):
                rng = random.Random(seed)
                return now(), rng.random()
            """,
            select=["RL202"],
        )
        assert codes(report) == []

    def test_rl203_triggers_on_float_spec_in_serializer(self):
        report = run_on(
            """
            def to_text(value):
                return f"duration={value:g}"
            """,
            select=["RL203"],
        )
        assert codes(report) == ["RL203"]

    def test_rl203_clean_with_repr_policy_or_display_renderer(self):
        assert (
            codes(
                run_on(
                    "def to_text(value):\n"
                    "    return f'duration={repr(float(value))}'\n",
                    select=["RL203"],
                )
            )
            == []
        )
        # format_* report renderers produce human output, not
        # round-trippable artifacts.
        assert (
            codes(
                run_on(
                    "def format_summary(value):\n"
                    "    return f'{value:.2f}'\n",
                    select=["RL203"],
                )
            )
            == []
        )


# ---------------------------------------------------------------------------
# RL3xx observability
# ---------------------------------------------------------------------------
class TestObservabilityRules:
    REGISTRY = frozenset({"repro_good_total", "repro_quiet_total"})

    def test_rl301_triggers_on_undeclared_metric(self):
        report = run_on(
            """
            def work(recorder):
                recorder.count("repro_bogus_total")
            """,
            select=["RL301"],
            registry=self.REGISTRY,
        )
        assert codes(report) == ["RL301"]
        assert "repro_bogus_total" in report.diagnostics[0].message

    def test_rl301_clean_on_declared_metric(self):
        report = run_on(
            """
            def work(recorder):
                recorder.count("repro_good_total")
                recorder.count("repro_quiet_total")
            """,
            select=["RL301"],
            registry=self.REGISTRY,
        )
        assert codes(report) == []

    def test_rl302_triggers_on_declared_but_unemitted(self):
        report = run_on(
            """
            def work(recorder):
                recorder.count("repro_good_total")
            """,
            select=["RL302"],
            registry=self.REGISTRY,
        )
        assert codes(report) == ["RL302"]
        assert "repro_quiet_total" in report.diagnostics[0].message
        assert report.entries[0][0] == PROJECT_ARTIFACT

    def test_rl302_skipped_without_registry_or_obs_scan(self):
        report = run_on(
            "def work():\n    return 1\n",
            select=["RL302"],
        )
        assert codes(report) == []

    def test_rl303_triggers_on_spanless_handler(self):
        report = run_on(
            """
            def _cmd_mine(args):
                recorder = _metrics_recorder(args)
                return 0
            """,
            select=["RL303"],
        )
        assert codes(report) == ["RL303"]

    def test_rl303_clean_with_span(self):
        report = run_on(
            """
            def _cmd_mine(args):
                recorder = _metrics_recorder(args)
                with recorder.span("mine"):
                    return 0
            """,
            select=["RL303"],
        )
        assert codes(report) == []


# ---------------------------------------------------------------------------
# RL4xx concurrency
# ---------------------------------------------------------------------------
class TestConcurrencyRules:
    def test_rl401_triggers_on_lambda_closure_and_bound_method(self):
        report = run_on(
            """
            from repro.core.parallel import process_map

            def run(items, pool, worker_object):
                def local(chunk):
                    return chunk

                process_map(lambda c: c, items, 2)
                process_map(local, items, 2)
                pool.submit(worker_object.fold, items)
            """,
            select=["RL401"],
        )
        assert codes(report) == ["RL401", "RL401", "RL401"]

    def test_rl401_clean_on_module_level_function(self):
        report = run_on(
            """
            from repro.core.parallel import process_map

            def worker(chunk):
                return chunk

            def run(items):
                process_map(worker, items, 2)
            """,
            select=["RL401"],
        )
        assert codes(report) == []

    def test_rl402_triggers_on_global_in_worker(self):
        report = run_on(
            """
            from repro.core.parallel import process_map

            _CACHE = {}

            def worker(chunk):
                global _CACHE
                _CACHE = {"warm": True}
                return chunk

            def run(items):
                process_map(worker, items, 2)
            """,
            select=["RL402"],
        )
        assert codes(report) == ["RL402"]

    def test_rl402_clean_when_worker_returns_state(self):
        report = run_on(
            """
            from repro.core.parallel import process_map

            def worker(chunk):
                return {"result": chunk}

            def run(items):
                process_map(worker, items, 2)
            """,
            select=["RL402"],
        )
        assert codes(report) == []

    def test_rl403_triggers_on_swallowing_except(self):
        report = run_on(
            """
            from repro.resilience.faults import maybe_fault

            def choke(payload):
                try:
                    return maybe_fault("point", payload=payload)
                except Exception:
                    return None
            """,
            select=["RL403"],
        )
        assert codes(report) == ["RL403"]

    def test_rl403_clean_when_reraising_or_out_of_scope(self):
        assert (
            codes(
                run_on(
                    """
                    from repro.resilience.faults import maybe_fault

                    def choke(payload):
                        try:
                            return maybe_fault("p", payload=payload)
                        except Exception:
                            raise
                    """,
                    select=["RL403"],
                )
            )
            == []
        )
        # Modules with no fault choke points are out of scope.
        assert (
            codes(
                run_on(
                    "def soft(x):\n"
                    "    try:\n"
                    "        return int(x)\n"
                    "    except Exception:\n"
                    "        return 0\n",
                    select=["RL403"],
                )
            )
            == []
        )


# ---------------------------------------------------------------------------
# Engine: parse errors, suppressions, baseline
# ---------------------------------------------------------------------------
class TestEngine:
    def test_rl001_on_unparsable_module(self):
        report = run_on("def broken(:\n")
        assert codes(report) == [CODE_PARSE_ERROR]
        assert report.exit_code == 2

    def test_suppression_masks_finding(self):
        report = run_on(
            "def save(path, data):\n"
            "    h = open(path, 'w')  # devlint: ignore[RL101]\n"
            "    h.write(data)\n",
            select=["RL101", "RL002"],
        )
        assert codes(report) == []
        assert report.suppressed == 1

    def test_stale_suppression_is_an_error(self):
        report = run_on(
            "def load(path):  # devlint: ignore[RL101]\n"
            "    return open(path).read()\n",
            select=["RL101", "RL002"],
        )
        assert codes(report) == [CODE_STALE_SUPPRESSION]
        assert report.exit_code == 2

    def test_stale_suppression_not_judged_when_rule_disabled(self):
        report = run_on(
            "def load(path):  # devlint: ignore[RL101]\n"
            "    return open(path).read()\n",
            select=["RL201"],
        )
        assert codes(report) == []

    def test_select_and_ignore_prefixes(self):
        source = """
        import time

        def save(path):
            with open(path, "w") as h:
                h.write(str(time.time()))
        """
        both = run_on(source, select=["RL1", "RL2"])
        assert codes(both) == ["RL101", "RL202"]
        config_ignored = run_on(source, select=["RL101"])
        assert codes(config_ignored) == ["RL101"]

    def test_baseline_round_trip(self, tmp_path):
        report = run_on(
            "def save(path, data):\n"
            "    open(path, 'w').write(data)\n",
            select=["RL101"],
        )
        assert report.exit_code == 1
        baseline = baseline_from_entries(report.entries)
        path = tmp_path / "baseline.json"
        save_baseline(path, baseline)
        loaded = load_baseline(path)
        assert len(loaded) == 1
        module = SourceModule(
            Path("/virtual/pkg/mod.py"),
            "pkg/mod.py",
            "def save(path, data):\n"
            "    open(path, 'w').write(data)\n",
        )
        config = DevConfig(
            select=frozenset(["RL101"]), baseline=loaded
        )
        rerun = run_devlint([], config=config, modules=[module])
        assert codes(rerun) == []
        assert rerun.baselined == 1
        no_baseline = run_devlint(
            [],
            config=DevConfig(
                select=frozenset(["RL101"]),
                baseline=loaded,
                use_baseline=False,
            ),
            modules=[module],
        )
        assert codes(no_baseline) == ["RL101"]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "absent.json")) == 0

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_report_ordering_is_deterministic(self):
        report = run_on(
            "import time\n"
            "def save(path):\n"
            "    open(path, 'w').write(str(time.time()))\n",
            select=["RL1", "RL2"],
        )
        assert codes(report) == sorted(codes(report))


# ---------------------------------------------------------------------------
# Emitters: text / JSON / SARIF, shared vocabulary with repro.lint
# ---------------------------------------------------------------------------
@pytest.fixture
def trigger_report():
    return run_on(
        "def save(path, data):\n"
        "    open(path, 'w').write(data)\n",
        select=["RL101"],
    )


class TestEmitters:
    def test_text_carries_path_line_code(self, trigger_report):
        text = render_text(trigger_report)
        assert "pkg/mod.py:2: RL101 warning:" in text
        assert "1 finding(s)" in text

    def test_json_shape(self, trigger_report):
        payload = json.loads(render_json(trigger_report))
        assert payload["tool"] == DEVLINT_TOOL_NAME
        assert payload["exit_code"] == 1
        assert payload["findings"][0]["code"] == "RL101"
        assert payload["findings"][0]["artifact"] == "pkg/mod.py"
        assert payload["findings"][0]["line"] == 2

    def test_sarif_shape(self, trigger_report):
        document = json.loads(render_sarif(trigger_report))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == DEVLINT_TOOL_NAME
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["RL101"]
        result = run["results"][0]
        assert result["ruleId"] == "RL101"
        assert result["level"] == "warning"
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "pkg/mod.py"
        assert physical["region"]["startLine"] == 2
        assert result["ruleIndex"] == 0

    def test_shared_vocabulary_round_trip_through_lint_emitter(
        self, trigger_report
    ):
        """Devlint findings flow through the repro.lint SARIF emitter
        unchanged: same Diagnostic objects, same severity mapping,
        same rule-metadata shape via DevRule.as_lint_rule()."""
        lint_rules = [
            rule.as_lint_rule()
            for rule in rules_for_report(trigger_report)
        ]
        report = LintReport(
            model_name="devlint",
            diagnostics=trigger_report.diagnostics,
            checked_rules=list(trigger_report.checked_rules),
        )
        document = json.loads(
            lint_render_sarif(
                report, artifact="pkg/mod.py", rules=lint_rules
            )
        )
        run = document["runs"][0]
        shipped = {
            r["id"]: r for r in run["tool"]["driver"]["rules"]
        }
        assert "RL101" in shipped
        assert (
            shipped["RL101"]["defaultConfiguration"]["level"]
            == "warning"
        )
        result = run["results"][0]
        assert result["ruleId"] == "RL101"
        assert result["level"] == "warning"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        # Severity mapping is the shared one: INFO would become
        # "note", WARNING/ERROR pass through.
        assert Severity.INFO.sarif_level == "note"

    def test_exit_codes_mirror_lint(self):
        assert run_on("x = 1\n").exit_code == 0
        warning = run_on(
            "def save(p, d):\n    open(p, 'w').write(d)\n",
            select=["RL101"],
        )
        assert warning.exit_code == 1
        assert run_on("def broken(:\n").exit_code == 2


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def _write_trigger(self, tmp_path):
        target = tmp_path / "pkg"
        target.mkdir()
        (target / "bad.py").write_text(
            "def save(path, data):\n"
            "    open(path, 'w').write(data)\n",
            encoding="utf-8",
        )
        return target

    def test_exit_1_and_text_output(self, tmp_path, capsys):
        target = self._write_trigger(tmp_path)
        code = devlint_main(
            [str(target), "--project-root", str(tmp_path)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "RL101 warning" in out

    def test_json_and_sarif_formats(self, tmp_path, capsys):
        target = self._write_trigger(tmp_path)
        assert (
            devlint_main(
                [
                    str(target),
                    "--project-root",
                    str(tmp_path),
                    "--format",
                    "json",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == DEVLINT_TOOL_NAME
        assert (
            devlint_main(
                [
                    str(target),
                    "--project-root",
                    str(tmp_path),
                    "--format",
                    "sarif",
                ]
            )
            == 1
        )
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"

    def test_write_baseline_then_clean_then_no_baseline(
        self, tmp_path, capsys
    ):
        target = self._write_trigger(tmp_path)
        root = ["--project-root", str(tmp_path)]
        assert (
            devlint_main([str(target), *root, "--write-baseline"])
            == 0
        )
        assert (tmp_path / "devlint-baseline.json").exists()
        capsys.readouterr()
        assert devlint_main([str(target), *root]) == 0
        assert "1 baselined" in capsys.readouterr().out
        assert (
            devlint_main([str(target), *root, "--no-baseline"]) == 1
        )

    def test_select_ignore_and_list_rules(self, tmp_path, capsys):
        target = self._write_trigger(tmp_path)
        root = ["--project-root", str(tmp_path)]
        assert (
            devlint_main(
                [str(target), *root, "--select", "RL2,RL3"]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            devlint_main([str(target), *root, "--ignore", "RL101"])
            == 0
        )
        capsys.readouterr()
        assert devlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RL101 raw-artifact-write" in out
        assert "RL403" in out

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        target = self._write_trigger(tmp_path)
        (tmp_path / "devlint-baseline.json").write_text(
            "nonsense", encoding="utf-8"
        )
        assert (
            devlint_main(
                [str(target), "--project-root", str(tmp_path)]
            )
            == 2
        )


# ---------------------------------------------------------------------------
# The real tree, and the acceptance mutations
# ---------------------------------------------------------------------------
class TestRealTree:
    def test_src_repro_is_clean_without_baseline(self):
        config = DevConfig(use_baseline=False, project_root=REPO_ROOT)
        report = run_devlint([SRC_TREE], config=config)
        rendered = "\n".join(
            f"{artifact}: {diagnostic.code} {diagnostic.message}"
            for artifact, diagnostic in report.entries
        )
        assert report.exit_code == 0, rendered

    def test_shipped_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / "devlint-baseline.json")
        assert len(baseline) == 0

    def test_mutated_codec_raw_open_fails_rl101(self, tmp_path):
        source = (SRC_TREE / "logs" / "codec.py").read_text(
            encoding="utf-8"
        )
        mutated = source.replace(
            'with durable_stream_writer(path, fsync=durable) as handle:\n'
            '        return write_log(log, handle)',
            'with open(path, "w", encoding="utf-8") as handle:\n'
            '        return write_log(log, handle)',
        )
        assert mutated != source
        target = tmp_path / "codec.py"
        target.write_text(mutated, encoding="utf-8")
        config = DevConfig(use_baseline=False)
        report = run_devlint([target], config=config)
        assert "RL101" in codes(report)
        assert report.exit_code == 1

    def test_mutated_serialize_unsorted_set_fails_rl201(
        self, tmp_path
    ):
        source = (SRC_TREE / "model" / "serialize.py").read_text(
            encoding="utf-8"
        )
        mutated = source.replace(
            "for source, target in sorted(model.graph.edges()):",
            "for source, target in set(model.graph.edges()):",
        )
        assert mutated != source
        target = tmp_path / "serialize.py"
        target.write_text(mutated, encoding="utf-8")
        config = DevConfig(use_baseline=False)
        report = run_devlint([target], config=config)
        assert "RL201" in codes(report)
        assert report.exit_code == 1

    def test_suppressions_in_tree_are_all_used(self):
        config = DevConfig(use_baseline=False, project_root=REPO_ROOT)
        report = run_devlint([SRC_TREE], config=config)
        assert report.by_code(CODE_STALE_SUPPRESSION) == []
        assert report.suppressed > 0


class TestFloatReprPolicy:
    def test_model_to_text_round_trips_long_floats(self):
        from repro.model.activity import Activity
        from repro.model.process import ProcessModel
        from repro.model.serialize import (
            model_from_text,
            model_to_text,
        )

        duration = 0.1 + 0.2  # 0.30000000000000004 — ':g' would lose it
        model = ProcessModel(
            "precise",
            activities=[
                Activity("A", duration=duration),
                Activity("B"),
            ],
            edges=[("A", "B")],
            source="A",
            sink="B",
        )
        text = model_to_text(model)
        assert re.search(
            r"activity A .*duration=0\.30000000000000004", text
        )
        parsed = model_from_text(text)
        assert parsed.activity("A").duration == duration

    def test_integral_durations_stay_ints(self):
        from repro.model.builder import ProcessBuilder
        from repro.model.serialize import model_to_text

        model = ProcessBuilder("plain").chain("A", "B").build()
        text = model_to_text(model)
        assert "duration=1\n" in text or "duration=1 " in text
