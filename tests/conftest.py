"""Shared pytest configuration: hypothesis settings profiles.

Two profiles are registered and selected via the ``HYPOTHESIS_PROFILE``
environment variable (CI's nightly job exports ``deep``):

* ``default`` — the everyday budget (50 examples, no deadline; the
  deadline is disabled because CI runners jitter far beyond
  hypothesis's 200 ms default).
* ``deep`` — the nightly soak budget (600 examples).

Tests that pin ``max_examples`` in their own ``@settings`` decorator
keep their pinned budget regardless of profile — only unpinned tests
(e.g. the differential fast-path suite) scale up under ``deep``.
"""

import os

from hypothesis import settings

settings.register_profile("default", max_examples=50, deadline=None)
settings.register_profile("deep", max_examples=600, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
