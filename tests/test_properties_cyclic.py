"""Property-based tests for Algorithm 3 and the cyclic workloads."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cyclic import merge_instances, mine_cyclic
from repro.core.general_dag import mine_general_dag
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog


@st.composite
def cyclic_logs(draw, max_interior=4, max_executions=8):
    """Logs whose executions may repeat interior activities.

    Built by optionally 'looping back' a random slice of a random
    interior permutation — the trace shape cyclic processes produce.
    """
    n = draw(st.integers(min_value=1, max_value=max_interior))
    interior = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=9999))
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        middle = list(interior)
        rng.shuffle(middle)
        if len(middle) >= 2 and rng.random() < 0.6:
            # Repeat a contiguous slice: ... x y x y ...
            start = rng.randrange(len(middle) - 1)
            end = rng.randrange(start + 1, len(middle))
            middle = (
                middle[: end + 1]
                + middle[start : end + 1]
                + middle[end + 1 :]
            )
        sequences.append(["S", *middle, "Z"])
    return EventLog.from_sequences(sequences)


class TestAlgorithm3Properties:
    @given(cyclic_logs())
    @settings(max_examples=50, deadline=None)
    def test_no_self_loops_ever(self, log):
        mined = mine_cyclic(log)
        for node in mined.nodes():
            assert not mined.has_edge(node, node)

    @given(cyclic_logs())
    @settings(max_examples=50, deadline=None)
    def test_vertices_are_the_log_activities(self, log):
        mined = mine_cyclic(log)
        assert set(mined.nodes()) == set(log.activities())

    @given(cyclic_logs())
    @settings(max_examples=30, deadline=None)
    def test_repetition_free_logs_reduce_to_algorithm2(self, log):
        repetition_free = EventLog(
            [
                execution
                for execution in log
                if len(set(execution.sequence)) == len(execution.sequence)
            ]
        )
        if len(repetition_free) == 0:
            return
        assert mine_cyclic(repetition_free).edge_set() == (
            mine_general_dag(repetition_free).edge_set()
        )

    @given(cyclic_logs())
    @settings(max_examples=30, deadline=None)
    def test_endpoints_never_inside_a_cycle(self, log):
        # S initiates and Z terminates every trace; no mined edge may
        # point into S or out of Z (that would claim S re-runs or Z
        # precedes something).
        mined = mine_cyclic(log)
        if mined.has_node("S"):
            assert mined.in_degree("S") == 0
        if mined.has_node("Z"):
            assert mined.out_degree("Z") == 0

    @given(cyclic_logs())
    @settings(max_examples=30, deadline=None)
    def test_insensitive_to_log_order(self, log):
        forward = mine_cyclic(log)
        backward = mine_cyclic(EventLog(list(reversed(log.executions))))
        assert forward.edge_set() == backward.edge_set()


class TestMergeInstancesProperties:
    @given(st.integers(min_value=0, max_value=9999))
    @settings(max_examples=30, deadline=None)
    def test_merge_never_invents_activities(self, seed):
        rng = random.Random(seed)
        activities = ["A", "B", "C"]
        instance_graph = DiGraph()
        for _ in range(rng.randint(0, 10)):
            a = (rng.choice(activities), rng.randint(1, 2))
            b = (rng.choice(activities), rng.randint(1, 2))
            if a != b:
                instance_graph.add_edge(a, b)
        merged = merge_instances(instance_graph)
        assert set(merged.nodes()) <= set(activities)
        for a, b in merged.edges():
            assert a != b
            assert any(
                (x, i) in instance_graph
                and (y, j) in instance_graph
                and instance_graph.has_edge((x, i), (y, j))
                for (x, i) in instance_graph.nodes()
                for (y, j) in instance_graph.nodes()
                if x == a and y == b
            )
