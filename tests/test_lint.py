"""Tests of the :mod:`repro.lint` static analyzer.

Every shipped diagnostic code gets one fixture that triggers it and one
that stays clean, plus engine/config behavior, emitter output shape,
and hypothesis properties tying the linter back to the miner: graphs
the paper's algorithms produce from conformal logs carry no
error-severity structural (PM1xx) diagnostics.
"""

import json

import pytest
from hypothesis import given, settings

from repro.core.miner import ProcessMiner
from repro.lint import (
    LintConfig,
    Severity,
    all_rules,
    get_rule,
    lint_model,
)
from repro.lint.emitters import (
    model_line_map,
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.engine import severity_overrides
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.model.activity import Activity
from repro.model.builder import ProcessBuilder
from repro.model.conditions import parse_condition
from repro.model.process import ProcessModel

from .test_properties import permutation_logs, subset_logs

ALL_CODES = [
    "PM101", "PM102", "PM103", "PM104", "PM105",
    "PM106", "PM107", "PM108", "PM109", "PM110",
    "PM201", "PM202", "PM203", "PM204",
    "PM301", "PM302", "PM303", "PM304", "PM305",
]


def model_of(edges, source, sink, names=None, conditions=None):
    activities = sorted(
        names or {n for edge in edges for n in edge}
    )
    return ProcessModel(
        "fixture",
        activities=[Activity(n) for n in activities],
        edges=edges,
        conditions={
            edge: parse_condition(text)
            for edge, text in (conditions or {}).items()
        },
        source=source,
        sink=sink,
    )


def codes(model, select=None, log=None, **config_kwargs):
    config = LintConfig(select=select, **config_kwargs)
    report = lint_model(model, log=log, config=config)
    return [d.code for d in report.diagnostics]


class TestRegistry:
    def test_all_codes_registered_once(self):
        assert [r.code for r in all_rules()] == ALL_CODES

    def test_rules_have_descriptions_and_slugs(self):
        for r in all_rules():
            assert r.description
            assert r.name == r.name.lower()
            assert " " not in r.name

    def test_get_rule(self):
        assert get_rule("PM108").name == "redundant-transitive-edge"
        with pytest.raises(KeyError):
            get_rule("PM999")


class TestStructuralRules:
    def test_pm101_source_with_incoming(self):
        model = model_of(
            [("A", "B"), ("B", "C"), ("B", "A")], "A", "C"
        )
        found = codes(model, select=["PM101"])
        assert found == ["PM101"]

    def test_pm101_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        assert codes(model, select=["PM101"]) == []

    def test_pm102_sink_with_outgoing(self):
        model = model_of(
            [("A", "B"), ("B", "C"), ("C", "B")], "A", "C"
        )
        assert codes(model, select=["PM102"]) == ["PM102"]

    def test_pm102_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        assert codes(model, select=["PM102"]) == []

    def test_pm103_extra_source_names_activity(self):
        model = model_of([("A", "B"), ("X", "B")], "A", "B")
        report = lint_model(model, config=LintConfig(select=["PM103"]))
        assert [d.code for d in report.diagnostics] == ["PM103"]
        assert "'X'" in report.diagnostics[0].message
        assert report.diagnostics[0].location.activity == "X"

    def test_pm103_clean(self):
        model = ProcessBuilder("p").chain("A", "B").build()
        assert codes(model, select=["PM103"]) == []

    def test_pm104_extra_sink_names_activity(self):
        model = model_of([("A", "B"), ("A", "X")], "A", "B")
        report = lint_model(model, config=LintConfig(select=["PM104"]))
        assert [d.code for d in report.diagnostics] == ["PM104"]
        assert "'X'" in report.diagnostics[0].message

    def test_pm104_clean(self):
        model = ProcessBuilder("p").chain("A", "B").build()
        assert codes(model, select=["PM104"]) == []

    def test_pm105_unreachable(self):
        model = model_of(
            [("A", "B"), ("B", "C"), ("X", "C")], "A", "C"
        )
        report = lint_model(model, config=LintConfig(select=["PM105"]))
        assert [d.code for d in report.diagnostics] == ["PM105"]
        assert "'X'" in report.diagnostics[0].message

    def test_pm105_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        assert codes(model, select=["PM105"]) == []

    def test_pm106_cannot_reach_sink(self):
        model = model_of(
            [("A", "B"), ("B", "C"), ("A", "X")], "A", "C"
        )
        assert codes(model, select=["PM106"]) == ["PM106"]

    def test_pm106_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        assert codes(model, select=["PM106"]) == []

    def test_pm107_disconnected_component(self):
        model = model_of(
            [("A", "B"), ("X", "Y")], "A", "B"
        )
        report = lint_model(model, config=LintConfig(select=["PM107"]))
        assert [d.code for d in report.diagnostics] == ["PM107"]
        assert "'X'" in report.diagnostics[0].message
        assert "'Y'" in report.diagnostics[0].message

    def test_pm107_clean(self):
        model = ProcessBuilder("p").chain("A", "B").build()
        assert codes(model, select=["PM107"]) == []

    def test_pm108_redundant_edge_without_log(self):
        model = (
            ProcessBuilder("p")
            .chain("A", "B", "C")
            .edge("A", "C")
            .build()
        )
        report = lint_model(model, config=LintConfig(select=["PM108"]))
        assert [d.code for d in report.diagnostics] == ["PM108"]
        assert report.diagnostics[0].fixit == "remove edge A -> C"
        assert report.diagnostics[0].location.edge == ("A", "C")

    def test_pm108_required_edge_exempt_with_log(self):
        # "AC" skips B, so a conformal model must keep the direct edge:
        # minimality is judged against the log, not pure reachability.
        model = (
            ProcessBuilder("p")
            .chain("A", "B", "C")
            .edge("A", "C")
            .build()
        )
        log = EventLog.from_sequences(["ABC", "AC"])
        assert codes(model, select=["PM108"], log=log) == []

    def test_pm108_unrequired_edge_still_reported_with_log(self):
        model = (
            ProcessBuilder("p")
            .chain("A", "B", "C")
            .edge("A", "C")
            .build()
        )
        log = EventLog.from_sequences(["ABC", "ABC"])
        assert codes(model, select=["PM108"], log=log) == ["PM108"]

    def test_pm108_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        assert codes(model, select=["PM108"]) == []

    def test_pm109_two_cycle_warning_escalates_in_dag_mode(self):
        model = model_of(
            [("A", "B"), ("B", "C"), ("C", "B"), ("C", "D")], "A", "D"
        )
        report = lint_model(model, config=LintConfig(select=["PM109"]))
        assert [d.code for d in report.diagnostics] == ["PM109"]
        assert report.diagnostics[0].severity is Severity.WARNING
        strict = lint_model(
            model, config=LintConfig(select=["PM109"], dag_mode=True)
        )
        assert strict.diagnostics[0].severity is Severity.ERROR

    def test_pm109_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        assert codes(model, select=["PM109"]) == []

    def test_pm110_cycle_warning_escalates_in_dag_mode(self):
        model = model_of(
            [("A", "B"), ("B", "C"), ("C", "D"), ("D", "B"), ("C", "E")],
            "A",
            "E",
        )
        report = lint_model(model, config=LintConfig(select=["PM110"]))
        assert [d.code for d in report.diagnostics] == ["PM110"]
        assert report.diagnostics[0].severity is Severity.WARNING
        assert report.exit_code == 1
        strict = lint_model(
            model, config=LintConfig(select=["PM110"], dag_mode=True)
        )
        assert strict.exit_code == 2

    def test_pm110_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        assert codes(model, select=["PM110"]) == []


class TestConditionRules:
    def test_pm201_unsatisfiable_condition(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] > 10 and o[0] < 5"},
        )
        assert codes(model, select=["PM201"]) == ["PM201"]

    def test_pm201_contradictory_parameter_comparison(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] < o[1] and o[1] < o[0]"},
        )
        assert codes(model, select=["PM201"]) == ["PM201"]

    def test_pm201_clean(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] > 10"},
        )
        assert codes(model, select=["PM201"]) == []

    def test_pm202_vacuous_condition(self):
        # Default output domain is [0, 100], so o[0] >= 0 always holds.
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] >= 0"},
        )
        report = lint_model(model, config=LintConfig(select=["PM202"]))
        assert [d.code for d in report.diagnostics] == ["PM202"]
        assert report.diagnostics[0].severity is Severity.INFO
        assert report.exit_code == 0

    def test_pm202_clean(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] > 10"},
        )
        assert codes(model, select=["PM202"]) == []

    def test_pm203_invalid_output_reference(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[5] > 3"},
        )
        report = lint_model(model, config=LintConfig(select=["PM203"]))
        assert [d.code for d in report.diagnostics] == ["PM203"]
        assert "o[5]" in report.diagnostics[0].message

    def test_pm203_suppresses_satisfiability_rules(self):
        # The out-of-range reference is the real problem; PM201/PM202
        # stay quiet rather than guessing at semantics.
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[5] > 3"},
        )
        assert codes(model, select=["PM201", "PM202", "PM204"]) == []

    def test_pm203_clean(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] > 3"},
        )
        assert codes(model, select=["PM203"]) == []

    def test_pm204_jointly_unsatisfiable_guards(self):
        model = model_of(
            [("A", "B"), ("B", "C")],
            "A",
            "C",
            conditions={("B", "C"): "o[0] > 100"},
        )
        report = lint_model(model, config=LintConfig(select=["PM204"]))
        assert [d.code for d in report.diagnostics] == ["PM204"]
        assert report.diagnostics[0].location.activity == "B"

    def test_pm204_clean_with_complementary_guards(self):
        model = model_of(
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
            "A",
            "D",
            conditions={
                ("A", "B"): "o[0] <= 50",
                ("A", "C"): "o[0] > 50",
            },
        )
        assert codes(model, select=["PM204"]) == []


class TestLogRules:
    def test_pm3xx_skipped_without_log(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        report = lint_model(model)
        assert not any(c.startswith("PM3") for c in report.checked_rules)

    def test_pm301_unexercised_edge(self):
        model = (
            ProcessBuilder("p")
            .chain("A", "B", "C")
            .edge("A", "C")
            .build()
        )
        log = EventLog.from_sequences(["ABC", "ABC"])
        report = lint_model(
            model, log=log, config=LintConfig(select=["PM301"])
        )
        assert [d.code for d in report.diagnostics] == ["PM301"]
        assert report.diagnostics[0].location.edge == ("A", "C")

    def test_pm301_clean(self):
        model = (
            ProcessBuilder("p")
            .chain("A", "B", "C")
            .edge("A", "C")
            .build()
        )
        log = EventLog.from_sequences(["ABC", "AC"])
        assert codes(model, select=["PM301"], log=log) == []

    def test_pm302_low_support_edge(self):
        model = ProcessBuilder("p").chain("A", "B", "C").edge(
            "A", "C"
        ).build()
        log = EventLog.from_sequences(["ABC"] * 5 + ["AC"])
        found = codes(
            model, select=["PM302"], log=log, noise_threshold=3
        )
        assert found == ["PM302"]

    def test_pm302_disabled_at_zero_threshold(self):
        model = ProcessBuilder("p").chain("A", "B", "C").edge(
            "A", "C"
        ).build()
        log = EventLog.from_sequences(["ABC"] * 5 + ["AC"])
        assert codes(model, select=["PM302"], log=log) == []

    def test_pm303_unknown_log_activity(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        log = EventLog.from_sequences(["ABC", "ABDC"])
        report = lint_model(
            model, log=log, config=LintConfig(select=["PM303"])
        )
        assert [d.code for d in report.diagnostics] == ["PM303"]
        assert "'D'" in report.diagnostics[0].message

    def test_pm303_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        log = EventLog.from_sequences(["ABC"])
        assert codes(model, select=["PM303"], log=log) == []

    def test_pm304_unobserved_activity(self):
        model = (
            ProcessBuilder("p")
            .chain("A", "B", "C")
            .edge("A", "X")
            .edge("X", "C")
            .build()
        )
        log = EventLog.from_sequences(["ABC"])
        report = lint_model(
            model, log=log, config=LintConfig(select=["PM304"])
        )
        assert [d.code for d in report.diagnostics] == ["PM304"]
        assert report.diagnostics[0].severity is Severity.INFO

    def test_pm304_clean(self):
        model = ProcessBuilder("p").chain("A", "B", "C").build()
        log = EventLog.from_sequences(["ABC"])
        assert codes(model, select=["PM304"], log=log) == []

    def _log_with_outputs(self, output):
        return EventLog(
            [
                Execution.from_sequence(
                    ["A", "B"],
                    execution_id="e0",
                    outputs={"A": output},
                )
            ]
        )

    def test_pm305_condition_never_observed(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] > 50"},
        )
        log = self._log_with_outputs((10.0, 20.0))
        assert codes(model, select=["PM305"], log=log) == ["PM305"]

    def test_pm305_clean_when_condition_observed(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] > 50"},
        )
        log = self._log_with_outputs((60.0, 20.0))
        assert codes(model, select=["PM305"], log=log) == []


class TestConfigAndEngine:
    def _noisy_model(self):
        return (
            ProcessBuilder("p")
            .chain("A", "B", "C")
            .edge("A", "C")
            .build()
        )

    def test_select_prefix(self):
        model = self._noisy_model()
        assert codes(model, select=["PM2"]) == []
        assert codes(model, select=["PM1"]) == ["PM108"]

    def test_ignore_wins_over_select(self):
        model = self._noisy_model()
        assert codes(model, select=["PM1"], ignore=["PM108"]) == []

    def test_severity_override_changes_exit_code(self):
        model = self._noisy_model()
        report = lint_model(
            model,
            config=LintConfig(
                severity_overrides=severity_overrides(
                    {"PM108": "warning"}
                )
            ),
        )
        assert report.exit_code == 1
        assert report.by_code("PM108")[0].severity is Severity.WARNING

    def test_severity_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            severity_overrides({"PM108": "fatal"})

    def test_exit_codes(self):
        clean = ProcessBuilder("p").chain("A", "B").build()
        assert lint_model(clean).exit_code == 0
        assert lint_model(self._noisy_model()).exit_code == 2

    def test_report_summary_counts(self):
        report = lint_model(self._noisy_model())
        assert "1 error(s)" in report.summary()
        assert report.count(Severity.ERROR) == 1
        assert report.max_severity is Severity.ERROR


class TestEmitters:
    def _report(self):
        model = (
            ProcessBuilder("p")
            .chain("A", "B", "C")
            .edge("A", "C")
            .build()
        )
        return lint_model(model)

    def test_text_contains_code_and_fixit(self):
        text = render_text(self._report(), artifact="demo.pm")
        assert "PM108 error:" in text
        assert "fix: remove edge A -> C" in text
        # 14 of the 19 rules run without a log (PM3xx need one).
        assert text.strip().endswith("[14 rules checked]")

    def test_json_round_trips(self):
        payload = json.loads(render_json(self._report()))
        assert payload["exit_code"] == 2
        assert payload["max_severity"] == "error"
        diagnostic = payload["diagnostics"][0]
        assert diagnostic["code"] == "PM108"
        assert diagnostic["location"]["edge"] == {
            "source": "A",
            "target": "C",
        }

    def test_sarif_shape(self):
        document = json.loads(
            render_sarif(self._report(), artifact="demo.pm")
        )
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert len(rule_ids) == len(set(rule_ids))
        for sarif_rule in driver["rules"]:
            assert sarif_rule["shortDescription"]["text"]
            assert sarif_rule["defaultConfiguration"]["level"] in (
                "note",
                "warning",
                "error",
            )
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            (location,) = result["locations"]
            assert location["logicalLocations"][0]["name"]
            uri = location["physicalLocation"]["artifactLocation"]["uri"]
            assert uri == "demo.pm"
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]

    def test_sarif_info_maps_to_note(self):
        model = model_of(
            [("A", "B")],
            "A",
            "B",
            conditions={("A", "B"): "o[0] >= 0"},
        )
        report = lint_model(model, config=LintConfig(select=["PM202"]))
        document = json.loads(render_sarif(report))
        assert document["runs"][0]["results"][0]["level"] == "note"

    def test_line_map_attaches_lines(self):
        text = "\n".join(
            [
                "process p",
                "activity A",
                "activity B",
                "activity C",
                "edge A B",
                "edge B C",
                "edge A C",
            ]
        )
        line_map = model_line_map(text)
        report = self._report().with_lines(line_map)
        assert report.diagnostics[0].line == 7
        rendered = report.diagnostics[0].render("p.pm")
        assert rendered.startswith("p.pm:7: PM108")


class TestMinerOutputIsClean:
    """Acceptance: the miner's own output carries no PM1xx errors."""

    @settings(max_examples=40, deadline=None)
    @given(permutation_logs())
    def test_algorithm1_output_has_no_structural_errors(self, log):
        model = (
            ProcessMiner(algorithm="special-dag")
            .mine(log)
            .to_process_model()
        )
        report = lint_model(model, log=log)
        errors = [
            d
            for d in report.at_least(Severity.ERROR)
            if d.code.startswith("PM1")
        ]
        assert errors == []

    @settings(max_examples=40, deadline=None)
    @given(subset_logs())
    def test_algorithm2_output_has_no_structural_errors(self, log):
        model = (
            ProcessMiner(algorithm="general-dag")
            .mine(log)
            .to_process_model()
        )
        report = lint_model(model, log=log)
        errors = [
            d
            for d in report.at_least(Severity.ERROR)
            if d.code.startswith("PM1")
        ]
        assert errors == []

    def test_synthetic_dataset_mined_model_fully_clean(self):
        from repro.datasets.synthetic import (
            SyntheticConfig,
            synthetic_dataset,
        )

        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=10, n_executions=60, seed=3)
        )
        model = ProcessMiner().mine(dataset.log).to_process_model()
        report = lint_model(model, log=dataset.log)
        assert report.at_least(Severity.ERROR) == []


class TestValidateDelegation:
    def test_validate_exposes_diagnostics(self):
        from repro.model.validate import validate_process

        model = model_of([("A", "B"), ("X", "B")], "A", "B")
        report = validate_process(model)
        assert not report.is_valid
        assert any(d.code == "PM103" for d in report.diagnostics)
        assert any("'X'" in v for v in report.violations)
