"""Tests for repro.analysis and the command-line interface."""

import pytest

from repro.analysis.metrics import recovery_metrics
from repro.analysis.recovery import run_recovery
from repro.analysis.tables import TextTable
from repro.cli import main
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.graphs.digraph import DiGraph
from repro.logs.codec import write_log_file
from repro.logs.event_log import EventLog


class TestMetrics:
    def test_exact_recovery(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        metrics = recovery_metrics(g, g.copy())
        assert metrics.is_exact
        assert metrics.verdict == "exact"
        assert metrics.edges_present == metrics.edges_found == 2
        assert metrics.f1 == 1.0

    def test_with_log_context(self):
        log = EventLog.from_sequences(["AB"] * 3, process_name="p")
        g = DiGraph(edges=[("A", "B")])
        metrics = recovery_metrics(g, g.copy(), log=log)
        assert metrics.executions == 3
        assert metrics.log_bytes > 0
        assert "executions=3" in metrics.describe()

    def test_describe_without_log(self):
        g = DiGraph(edges=[("A", "B")])
        text = recovery_metrics(g, DiGraph(nodes=["A", "B"])).describe()
        assert "present=1" in text
        assert "found=0" in text


class TestRecoveryRun:
    def test_small_cell(self):
        run = run_recovery(n_vertices=10, n_executions=50, seed=1)
        assert run.n_vertices == 10
        assert run.n_executions == 50
        assert run.mining_seconds > 0
        assert run.metrics.recall == 1.0
        assert len(run.log) == 50

    def test_recovery_improves_with_more_executions(self):
        small = run_recovery(15, 20, seed=2)
        large = run_recovery(15, 400, seed=2)
        assert large.metrics.f1 >= small.metrics.f1


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row(["alpha", 1])
        table.add_row(["b", 123.4567])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "123.5" in text  # 4 significant digits

    def test_bool_formatting(self):
        table = TextTable(["ok"])
        table.add_row([True])
        table.add_row([False])
        assert "yes" in table.render()
        assert "no" in table.render()

    def test_ragged_rows_padded(self):
        table = TextTable(["a", "b"])
        table.add_row(["only-one"])
        assert "only-one" in table.render()


@pytest.fixture
def log_file(tmp_path):
    dataset = synthetic_dataset(
        SyntheticConfig(n_vertices=8, n_executions=30, seed=6)
    )
    path = tmp_path / "log.tsv"
    write_log_file(dataset.log, path)
    return path


class TestCli:
    def test_mine_ascii(self, log_file, capsys):
        assert main(["mine", str(log_file)]) == 0
        out = capsys.readouterr().out
        assert "# algorithm:" in out
        assert "->" in out

    def test_mine_dot(self, log_file, capsys):
        assert main(["mine", str(log_file), "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_mine_edges(self, log_file, capsys):
        assert main(["mine", str(log_file), "--format", "edges"]) == 0
        assert "START" in capsys.readouterr().out

    def test_mine_with_algorithm_and_threshold(self, log_file, capsys):
        code = main(
            [
                "mine",
                str(log_file),
                "--algorithm",
                "general-dag",
                "--threshold",
                "2",
            ]
        )
        assert code == 0

    def test_stats(self, log_file, capsys):
        assert main(["stats", str(log_file)]) == 0
        out = capsys.readouterr().out
        assert "executions:" in out

    def test_generate_synthetic(self, tmp_path, capsys):
        out_path = tmp_path / "generated.tsv"
        code = main(
            [
                "generate",
                str(out_path),
                "--vertices",
                "8",
                "--executions",
                "12",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        assert out_path.exists()
        assert "12 executions" in capsys.readouterr().out

    def test_generate_flowmark(self, tmp_path, capsys):
        out_path = tmp_path / "fm.tsv"
        code = main(
            [
                "generate",
                str(out_path),
                "--kind",
                "Pend_Block",
                "--executions",
                "10",
            ]
        )
        assert code == 0
        assert out_path.exists()

    def test_generate_then_mine_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "roundtrip.tsv"
        main(
            [
                "generate", str(out_path), "--kind", "Local_Swap",
                "--executions", "10",
            ]
        )
        capsys.readouterr()
        assert main(["mine", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Swap" in out

    def test_conditions_command(self, tmp_path, capsys):
        out_path = tmp_path / "cond.tsv"
        main(
            [
                "generate", str(out_path), "--kind", "Pend_Block",
                "--executions", "50",
            ]
        )
        capsys.readouterr()
        assert main(["conditions", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Check -> Pend" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["mine", "/nonexistent/log.tsv"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_file_is_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsv"
        bad.write_text("not\ta\tvalid\tlog\n")
        assert main(["mine", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
