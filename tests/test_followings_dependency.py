"""Unit tests for repro.core.followings and repro.core.dependency.

These pin the paper's Definitions 3–5 to its own worked examples.
"""

import pytest

from repro.core.dependency import (
    DEPENDS,
    DEPENDS_REVERSED,
    INDEPENDENT,
    dependency_relation,
)
from repro.core.followings import (
    execution_pair_sets,
    follow_relation,
    pair_execution_counts,
    presence_counts,
    remove_two_cycles,
    union_pairs,
)
from repro.logs.event_log import EventLog


@pytest.fixture
def example3():
    # The paper's Example 3 log.
    return EventLog.from_sequences(["ABCE", "ACDE", "ADBE"])


@pytest.fixture
def example3_extended():
    # Example 3's second half: ADCE added.
    return EventLog.from_sequences(["ABCE", "ACDE", "ADBE", "ADCE"])


class TestFollowRelation:
    def test_direct_followings_grounded_in_co_occurrence(self, example3):
        relation = follow_relation(example3)
        assert relation.directly_follows("A", "B")
        assert relation.directly_follows("D", "B")  # sole co-occurrence
        assert relation.directly_follows("B", "C")  # ABCE only
        assert not relation.directly_follows("B", "A")

    def test_example3_transitive_following(self, example3):
        relation = follow_relation(example3)
        # "D follows B (because it follows C, which follows B)".
        assert relation.follows("B", "D")
        # And B follows D directly.
        assert relation.follows("D", "B")

    def test_example3_extension_severs_path(self, example3_extended):
        relation = follow_relation(example3_extended)
        # C and D now appear in both orders: no *direct* following.
        assert not relation.directly_follows("C", "D")
        assert not relation.directly_follows("D", "C")
        # Definition 3's transitive case still gives "C follows D" via B
        # (D -> B -> C); the key fact for Example 3's argument is the
        # other direction: D no longer follows B, so B depends on D.
        assert relation.follows("D", "C")
        assert not relation.follows("B", "D")
        assert relation.follows("D", "B")

    def test_never_co_occurring_activities_do_not_follow(self):
        log = EventLog.from_sequences(["ABD", "ACD"])
        relation = follow_relation(log)
        assert not relation.follows("B", "C")
        assert not relation.follows("C", "B")

    def test_followings_graph_nodes(self, example3):
        graph = follow_relation(example3).graph()
        assert set(graph.nodes()) == {"A", "B", "C", "D", "E"}


class TestDependencyRelation:
    def test_example3_classification(self, example3):
        relation = dependency_relation(example3)
        assert relation.depends_on("B", "A")
        assert relation.independent("B", "D")
        assert relation.classify("A", "B") == DEPENDS
        assert relation.classify("B", "A") == DEPENDS_REVERSED
        assert relation.classify("B", "D") == INDEPENDENT

    def test_example3_extension_creates_dependency(
        self, example3_extended
    ):
        relation = dependency_relation(example3_extended)
        # "B and D are no longer independent; rather, B depends on D."
        assert relation.depends_on("B", "D")
        assert not relation.independent("B", "D")

    def test_everything_depends_on_initiator(self, example3):
        relation = dependency_relation(example3)
        for activity in "BCDE":
            assert relation.depends_on(activity, "A")

    def test_terminator_depends_on_everything(self, example3):
        relation = dependency_relation(example3)
        for activity in "ABCD":
            assert relation.depends_on("E", activity)

    def test_independence_is_symmetric_and_irreflexive(self, example3):
        relation = dependency_relation(example3)
        assert relation.independent("B", "D") == relation.independent(
            "D", "B"
        )
        assert not relation.independent("A", "A")

    def test_minimal_graph_is_reduced_and_complete(self, example3):
        relation = dependency_relation(example3)
        minimal = relation.minimal_graph()
        full = relation.full_graph()
        from repro.graphs.transitive import (
            closure_equal,
            is_transitively_reduced,
        )

        assert is_transitively_reduced(minimal)
        assert closure_equal(minimal, full)

    def test_dependence_is_a_strict_partial_order(self):
        # Transitivity on a richer log.
        log = EventLog.from_sequences(
            ["ABCDE", "ABDCE", "ACBDE"], process_name="p"
        )
        relation = dependency_relation(log)
        for a, b in relation.depends:
            assert (b, a) not in relation.depends  # antisymmetry
        for a, b in relation.depends:
            for c, d in relation.depends:
                if b == c:
                    assert (a, d) in relation.depends  # transitivity


class TestPairHelpers:
    def test_execution_pair_sets(self, example3):
        pair_sets = execution_pair_sets(example3)
        assert len(pair_sets) == 3
        assert ("A", "B") in pair_sets[0]
        assert ("B", "C") in pair_sets[0]

    def test_union_and_two_cycle_removal(self):
        # Example 6's log has B/C and B/D in both orders.
        log = EventLog.from_sequences(["ABCDE", "ACDBE", "ACBDE"])
        edges = union_pairs(execution_pair_sets(log))
        assert ("B", "C") in edges and ("C", "B") in edges
        pruned = remove_two_cycles(edges)
        assert ("B", "C") not in pruned and ("C", "B") not in pruned
        assert ("B", "D") not in pruned and ("D", "B") not in pruned
        assert ("A", "B") in pruned

    def test_pair_execution_counts(self, example3):
        counts = pair_execution_counts(example3)
        assert counts[("A", "E")] == 3
        assert counts[("B", "C")] == 1
        assert counts[("Z", "A")] == 0

    def test_presence_counts(self, example3):
        counts = presence_counts(example3)
        assert counts["A"] == 3
        assert counts["B"] == 2
