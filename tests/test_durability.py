"""Crash-safe durability: session recovery, checkpoint hardening, and
the SIGKILL-and-resume integration suite.

The headline guarantee under test: a streaming mine killed at *any*
injected fault point, then resumed from its ``--journal`` directory,
produces byte-identical output (rendered graph and canonical
``--state-out`` serialization) to a run that was never interrupted.
The integration class drives real subprocesses with seeded
:func:`FaultPlan.seeded_kill` plans — the same sweep CI's chaos job
runs wider.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.state import (
    load_state,
    load_state_with_fallback,
    save_state,
)
from repro.errors import CheckpointError
from repro.logs.codec import write_log_file
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.obs.recorder import ObsRecorder
from repro.resilience.faults import FaultPlan
from repro.resilience.session import DurableSession

SEQUENCES = ["ABCF", "ACDF", "ABDF", "ABCDF", "ABCF", "ACDF"] * 6


def executions(sequences=SEQUENCES):
    return [
        Execution.from_sequence(list(seq), f"e{i:04d}")
        for i, seq in enumerate(sequences)
    ]


def write_log(tmp_path, count=120, name="mine.tsv"):
    path = tmp_path / name
    rows = [SEQUENCES[i % len(SEQUENCES)] for i in range(count)]
    write_log_file(
        EventLog(executions(rows), process_name="claims"), path
    )
    return path


def canonical(state):
    return json.dumps(state.to_payload(), sort_keys=True)


class TestCheckpointHardening:
    def test_integrity_envelope_round_trips(self, tmp_path):
        session = DurableSession(tmp_path / "s", checkpoint_every=0)
        for execution in executions():
            session.fold(execution)
        state = session.finalize()
        loaded, meta = load_state(tmp_path / "s" / "checkpoint.json")
        assert meta["verified"] is True
        assert meta["journal_seq"] == len(SEQUENCES)
        assert canonical(loaded) == canonical(state)

    def test_corruption_is_detected(self, tmp_path):
        path = tmp_path / "state.json"
        from repro.core.state import MiningState

        state = MiningState()
        for execution in executions():
            state.update(execution)
        save_state(state, path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_fallback_to_prev_checkpoint(self, tmp_path):
        from repro.core.state import MiningState

        path = tmp_path / "checkpoint.json"
        good = MiningState()
        for execution in executions()[:6]:
            good.update(execution)
        save_state(good, path.with_name(path.name + ".prev"))
        path.write_bytes(b"{ definitely not json")
        recorder = ObsRecorder()
        state, meta, used_fallback = load_state_with_fallback(
            path, recorder
        )
        assert used_fallback
        assert canonical(state) == canonical(good)
        assert (
            recorder.registry.counter(
                "repro_checkpoint_fallback_total"
            ).value
            == 1
        )

    def test_missing_fallback_reraises_primary(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            load_state_with_fallback(path)


class TestDurableSession:
    def test_recovery_equals_uninterrupted(self, tmp_path):
        home = tmp_path / "sess"
        session = DurableSession(home, checkpoint_every=5)
        for execution in executions()[:17]:
            session.fold(execution)
        # Simulate a crash: no finalize, just drop the session.
        session.journal.close()

        resumed = DurableSession(home, checkpoint_every=5)
        report = resumed.recover()
        assert report.resumed and report.covered == 17
        for execution in executions()[17:]:
            resumed.fold(execution)
        recovered = resumed.finalize()

        reference = DurableSession(tmp_path / "ref", checkpoint_every=5)
        for execution in executions():
            reference.fold(execution)
        assert canonical(recovered) == canonical(reference.finalize())

    def test_recover_on_fresh_directory(self, tmp_path):
        session = DurableSession(tmp_path / "new")
        report = session.recover()
        assert not report.resumed and report.covered == 0
        assert "fresh session" in report.summary()

    def test_recover_must_precede_folds(self, tmp_path):
        session = DurableSession(tmp_path / "s")
        session.fold(executions()[0])
        with pytest.raises(RuntimeError):
            session.recover()

    def test_mode_mismatch_is_an_error(self, tmp_path):
        home = tmp_path / "sess"
        session = DurableSession(home, labelled=True, checkpoint_every=0)
        session.fold(executions()[0])
        session.finalize()
        other = DurableSession(home, labelled=False)
        with pytest.raises(CheckpointError):
            other.recover()

    def test_journal_pruned_but_sufficient(self, tmp_path):
        """After many checkpoints the journal stays small, yet the
        .prev checkpoint plus the retained tail rebuild the state."""
        home = tmp_path / "sess"
        session = DurableSession(home, checkpoint_every=4)
        for execution in executions():
            session.fold(execution)
        session.journal.close()
        from repro.resilience.journal import scan_journal

        scan = scan_journal(home / "wal")
        assert len(scan.records) < len(SEQUENCES)
        # Kill the newest checkpoint: recovery must still reach the
        # exact same coverage through .prev + tail replay.
        (home / "checkpoint.json").write_bytes(b"trashed")
        resumed = DurableSession(home, checkpoint_every=4)
        report = resumed.recover()
        assert report.used_fallback
        assert report.covered == session.covered_seq


class _CliRunner:
    """Drive the real CLI in subprocesses (faults need real SIGKILL)."""

    def __init__(self, log_path):
        self.log = str(log_path)
        self.env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"),
        )

    def mine(self, *extra, fault_plan=None):
        env = dict(self.env)
        env.pop("REPRO_FAULT_PLAN", None)
        if fault_plan is not None:
            env["REPRO_FAULT_PLAN"] = str(fault_plan)
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "mine",
                self.log,
                "--format",
                "edges",
                "--checkpoint-every",
                "25",
                *extra,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )


class TestKillAndResume:
    """SIGKILL at seeded fault points; resume must be byte-identical."""

    SEEDS = range(5)

    @pytest.fixture(scope="class")
    def arena(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("kill-resume")
        runner = _CliRunner(write_log(root, count=120))
        reference = runner.mine(
            "--journal",
            str(root / "ref"),
            "--state-out",
            str(root / "ref-state.json"),
        )
        assert reference.returncode == 0, reference.stderr
        return {
            "root": root,
            "runner": runner,
            "stdout": reference.stdout,
            "state": (root / "ref-state.json").read_bytes(),
        }

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_kill_then_resume(self, arena, seed):
        root, runner = arena["root"], arena["runner"]
        plan_path = root / f"plan-{seed}.json"
        FaultPlan.seeded_kill(seed).save(plan_path)
        session_dir = root / f"sess-{seed}"

        first = runner.mine(
            "--journal", str(session_dir), fault_plan=plan_path
        )
        # Either the plan killed the run (-SIGKILL) or its hit index
        # was beyond this log — then the run completed and resume
        # must be a no-op continuation.
        assert first.returncode in (-9, 0), first.stderr

        state_out = root / f"state-{seed}.json"
        resume = runner.mine(
            "--journal",
            str(session_dir),
            "--resume",
            "--state-out",
            str(state_out),
        )
        assert resume.returncode == 0, resume.stderr
        assert resume.stdout == arena["stdout"]
        assert state_out.read_bytes() == arena["state"]

    def test_double_resume_is_stable(self, arena):
        root, runner = arena["root"], arena["runner"]
        session_dir = root / "sess-twice"
        plan_path = root / "plan-twice.json"
        FaultPlan.seeded_kill(1).save(plan_path)
        runner.mine("--journal", str(session_dir), fault_plan=plan_path)
        for _ in range(2):
            again = runner.mine(
                "--journal", str(session_dir), "--resume"
            )
            assert again.returncode == 0, again.stderr
            assert again.stdout == arena["stdout"]


class TestVerifyStateCli:
    def _session(self, tmp_path):
        home = tmp_path / "sess"
        session = DurableSession(home, checkpoint_every=5)
        for execution in executions():
            session.fold(execution)
        session.finalize()
        return home

    def test_clean_session_passes(self, tmp_path, capsys):
        home = self._session(tmp_path)
        assert main(["verify-state", str(home)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint.json: ok" in out and "wal: ok" in out

    def test_state_file_passes(self, tmp_path, capsys):
        from repro.core.state import MiningState

        path = tmp_path / "state.json"
        state = MiningState()
        for execution in executions():
            state.update(execution)
        save_state(state, path)
        assert main(["verify-state", str(path)]) == 0
        assert "crc32c verified" in capsys.readouterr().out

    def test_missing_target_exits_1(self, tmp_path, capsys):
        assert main(["verify-state", str(tmp_path / "nope")]) == 1

    def test_corrupt_checkpoint_exits_2(self, tmp_path, capsys):
        home = self._session(tmp_path)
        path = home / "checkpoint.json"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert main(["verify-state", str(home)]) == 2
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "fall back to the .prev" in out

    def test_torn_journal_tail_is_tolerated(self, tmp_path, capsys):
        from repro.resilience.journal import list_segments

        home = self._session(tmp_path)
        _, tail = list_segments(home / "wal")[-1]
        tail.write_bytes(tail.read_bytes()[:-2])
        assert main(["verify-state", str(home)]) == 0
        assert "torn tail tolerated" in capsys.readouterr().out

    def test_corrupt_journal_exits_2(self, tmp_path, capsys):
        from repro.resilience.journal import Journal, list_segments

        # A session directory holding only a journal: two segments,
        # with damage in the first — unreachable records, corruption.
        home = tmp_path / "sess"
        with Journal(home / "wal", sync=False) as journal:
            for execution in executions()[:4]:
                journal.append_execution(execution)
            journal.rotate()
            journal.append_execution(executions()[4])
        first = list_segments(home / "wal")[0][1]
        blob = bytearray(first.read_bytes())
        blob[12] ^= 0xFF
        first.write_bytes(bytes(blob))
        assert main(["verify-state", str(home)]) == 2
        assert "CORRUPT" in capsys.readouterr().out


class TestResumeCliGuards:
    def test_resume_without_journal_fails(self, tmp_path, capsys):
        log = write_log(tmp_path, count=6)
        assert main(["mine", str(log), "--stream", "--resume"]) == 1
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_fresh_run_refuses_existing_session(self, tmp_path, capsys):
        log = write_log(tmp_path, count=6)
        sess = tmp_path / "sess"
        assert main(["mine", str(log), "--journal", str(sess)]) == 0
        capsys.readouterr()
        assert main(["mine", str(log), "--journal", str(sess)]) == 1
        assert "pass --resume" in capsys.readouterr().err
