"""Tests for the related-work baselines (sequential patterns, k-tails)."""

import pytest

from repro.baselines.ktails import (
    Automaton,
    ktails_automaton,
    prefix_tree_acceptor,
)
from repro.baselines.sequential import (
    is_subsequence,
    maximal_sequential_patterns,
    mine_sequential_patterns,
    pattern_support,
)
from repro.errors import EmptyLogError
from repro.logs.event_log import EventLog


class TestSubsequence:
    def test_positive_cases(self):
        assert is_subsequence("AC", "ABC")
        assert is_subsequence("ABC", "ABC")
        assert is_subsequence("", "ABC")

    def test_negative_cases(self):
        assert not is_subsequence("CA", "ABC")
        assert not is_subsequence("AA", "ABC")
        assert not is_subsequence("ABCD", "ABC")

    def test_repeated_symbols(self):
        assert is_subsequence("AA", "ABA")
        assert not is_subsequence("AAA", "ABA")


class TestSequentialPatterns:
    def test_chain_log_yields_full_chain(self):
        log = EventLog.from_sequences(["ABCD"] * 10)
        patterns = mine_sequential_patterns(log, min_support=0.9)
        maximal = [p for p in patterns if p.maximal]
        assert len(maximal) == 1
        assert maximal[0].sequence == ("A", "B", "C", "D")
        assert maximal[0].support == 1.0

    def test_support_threshold_respected(self):
        log = EventLog.from_sequences(["AB"] * 7 + ["AC"] * 3)
        patterns = {
            p.sequence: p.support
            for p in mine_sequential_patterns(log, min_support=0.5)
        }
        assert ("A", "B") in patterns
        assert ("A", "C") not in patterns
        assert patterns[("A",)] == 1.0

    def test_parallel_branches_yield_both_orders(self):
        # The paper's argument: a parallel process produces multiple
        # overlapping total-order patterns, none capturing the structure.
        log = EventLog.from_sequences(["SABE"] * 5 + ["SBAE"] * 5)
        maximal = maximal_sequential_patterns(log, min_support=0.4)
        sequences = {p.sequence for p in maximal}
        assert ("S", "A", "B", "E") in sequences
        assert ("S", "B", "A", "E") in sequences

    def test_apriori_consistency(self):
        # Every subsequence of a frequent pattern is frequent with at
        # least the same support.
        log = EventLog.from_sequences(
            ["ABCE", "ACBE", "ABE", "ACE", "ABCE"]
        )
        patterns = {
            p.sequence: p.support
            for p in mine_sequential_patterns(log, min_support=0.4)
        }
        for sequence, support in patterns.items():
            for skip in range(len(sequence)):
                sub = sequence[:skip] + sequence[skip + 1:]
                if sub:
                    assert sub in patterns
                    assert patterns[sub] >= support

    def test_pattern_support_function(self):
        log = EventLog.from_sequences(["ABC", "AC", "BC"])
        assert pattern_support(("A", "C"), log) == pytest.approx(2 / 3)
        with pytest.raises(EmptyLogError):
            pattern_support(("A",), EventLog())

    def test_invalid_parameters(self):
        log = EventLog.from_sequences(["AB"])
        with pytest.raises(ValueError):
            mine_sequential_patterns(log, min_support=0.0)
        with pytest.raises(ValueError):
            mine_sequential_patterns(log, min_support=1.5)
        with pytest.raises(ValueError):
            mine_sequential_patterns(log, max_length=0)
        with pytest.raises(EmptyLogError):
            mine_sequential_patterns(EventLog())

    def test_str_rendering(self):
        log = EventLog.from_sequences(["AB"] * 2)
        patterns = mine_sequential_patterns(log, min_support=1.0)
        rendered = {str(p) for p in patterns}
        assert any("A -> B" in r and "maximal" in r for r in rendered)


class TestPrefixTree:
    def test_accepts_exactly_the_log(self):
        log = EventLog.from_sequences(["SABE", "SBAE"])
        pta = prefix_tree_acceptor(log)
        assert pta.accepts(["S", "A", "B", "E"])
        assert pta.accepts(["S", "B", "A", "E"])
        assert not pta.accepts(["S", "A", "E"])
        assert not pta.accepts(["S", "A", "B"])

    def test_shared_prefixes_shared_states(self):
        log = EventLog.from_sequences(["ABC", "ABD"])
        pta = prefix_tree_acceptor(log)
        # Root + A + B + C + D = 5 states, 4 transitions.
        assert pta.state_count == 5
        assert pta.transition_count == 4

    def test_empty_log_rejected(self):
        with pytest.raises(EmptyLogError):
            prefix_tree_acceptor(EventLog())


class TestKTails:
    def test_still_accepts_log(self):
        log = EventLog.from_sequences(["SABE", "SBAE", "SABE"])
        for k in (0, 1, 2, 5):
            automaton = ktails_automaton(log, k=k)
            for sequence in log.sequences():
                assert automaton.accepts(sequence), (k, sequence)

    def test_merging_reduces_states(self):
        log = EventLog.from_sequences(["SABE", "SBAE"])
        pta = prefix_tree_acceptor(log)
        merged = ktails_automaton(log, k=1)
        assert merged.state_count <= pta.state_count

    def test_large_k_is_conservative(self):
        # With k larger than any trace, only behaviourally identical
        # states merge; the language stays exactly the log's.
        log = EventLog.from_sequences(["AB", "AC"])
        automaton = ktails_automaton(log, k=10)
        assert automaton.accepts(["A", "B"])
        assert automaton.accepts(["A", "C"])
        assert not automaton.accepts(["A"])
        assert not automaton.accepts(["B"])

    def test_papers_parallelism_argument(self):
        # Section 1: the process graph for S -> {A, B} -> E has each
        # activity once; the automaton for {SABE, SBAE} must label
        # multiple transitions with the same activity.
        log = EventLog.from_sequences(["SABE", "SBAE"])
        automaton = ktails_automaton(log, k=2)
        multiplicity = automaton.label_multiplicity()
        assert multiplicity["A"] >= 2 or multiplicity["B"] >= 2
        # While the paper's graph has 4 vertices and 4 edges.
        from repro.core.general_dag import mine_general_dag

        graph = mine_general_dag(log)
        assert graph.node_count == 4
        assert graph.edge_set() == {
            ("S", "A"), ("S", "B"), ("A", "E"), ("B", "E"),
        }

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ktails_automaton(EventLog.from_sequences(["AB"]), k=-1)

    def test_automaton_dataclass_helpers(self):
        automaton = Automaton(
            initial=0,
            accepting=frozenset({2}),
            transitions=frozenset({(0, "A", 1), (1, "B", 2)}),
        )
        assert automaton.state_count == 3
        assert automaton.transition_count == 2
        assert automaton.accepts(["A", "B"])
        assert not automaton.accepts(["A"])
        assert automaton.label_multiplicity() == {"A": 1, "B": 1}
