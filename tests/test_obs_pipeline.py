"""Integration tests: the pipeline's :mod:`repro.obs` instrumentation.

Each subsystem that takes a recorder is exercised with a real
:class:`ObsRecorder` and checked for the stable span names and metric
series documented in ``docs/OBSERVABILITY.md`` — and for identical
behaviour under the default :data:`NULL_RECORDER`.
"""

from collections import Counter as TallyCounter


from repro.core.conditions import ConditionsMiner
from repro.core.general_dag import MiningTrace, mine_general_dag
from repro.core.incremental import IncrementalMiner
from repro.core.miner import ALGORITHM_GENERAL, ProcessMiner
from repro.core.parallel import process_map_timed, split_chunks
from repro.core.special_dag import mine_special_dag
from repro.datasets.examples import example6_log, example7_log
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.lint.engine import lint_model
from repro.logs.ingest import IngestReport, publish_ingest_report
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_gt, attr_le
from repro.obs import NULL_RECORDER, ObsRecorder


def _branching_log():
    """200 simulated executions of a branching model with outputs."""
    model = (
        ProcessBuilder("branch")
        .edge("A", "High", condition=attr_gt(0, 50))
        .edge("A", "Low", condition=attr_le(0, 50))
        .edge("High", "Z")
        .edge("Low", "Z")
        .build()
    )
    simulator = WorkflowSimulator(model, SimulationConfig(seed=11))
    return simulator.run_log(200)


def _counter(recorder, name, labels=None):
    metric = recorder.registry.get(name, labels)
    return metric.value if metric is not None else None


class TestMinerInstrumentation:
    def test_general_dag_stage_spans_and_counters(self):
        log = example7_log()
        recorder = ObsRecorder()
        result = ProcessMiner(recorder=recorder).mine(log)
        assert result.algorithm == ALGORITHM_GENERAL
        names = recorder.span_names()
        for stage in (
            "mine",
            "mine/prepare",
            "mine/step2_counters",
            "mine/step3_filters",
            "mine/step4_scc",
            "mine/step5_reduce",
            "mine/step6_assemble",
        ):
            assert stage in names, f"missing span {stage}"
        assert _counter(recorder, "repro_mine_executions_total") == len(log)
        variants = _counter(recorder, "repro_mine_variants_total")
        assert 0 < variants <= len(log)
        assert _counter(recorder, "repro_mine_pairs_extracted_total") > 0
        edges = recorder.registry.get(
            "repro_mine_edges", {"stage": "step6"}
        )
        assert edges.value == result.graph.edge_count

    def test_stage_spans_nest_under_mine(self):
        """Span nesting mirrors the span-name path: ``mine/x`` is a
        child of ``mine``, ``mine/prepare/parse`` of ``mine/prepare``."""
        recorder = ObsRecorder()
        ProcessMiner(recorder=recorder).mine(example7_log())
        spans = {span.name: span for span in recorder.spans}
        assert "mine" in spans
        for name, span in spans.items():
            if name.startswith("mine/"):
                parent_name = name.rsplit("/", 1)[0]
                assert span.parent == spans[parent_name].index

    def test_special_dag_records_spans(self):
        recorder = ObsRecorder()
        graph = mine_special_dag(example6_log(), recorder=recorder)
        names = recorder.span_names()
        assert "mine/prepare" in names
        assert "mine/step6_assemble" in names
        edges = recorder.registry.get(
            "repro_mine_edges", {"stage": "step6"}
        )
        assert edges.value == graph.edge_count

    def test_mining_trace_timings_match_spans(self):
        """MiningTrace.timings stays a thin façade over the spans."""
        recorder = ObsRecorder()
        trace = MiningTrace(recorder=recorder)
        mine_general_dag(example7_log(), trace=trace)
        span_stages = {
            span.name.removeprefix("mine/")
            for span in recorder.spans
            if span.name.startswith("mine/")
        }
        assert set(trace.timings) <= span_stages

    def test_null_recorder_identical_graph(self):
        log = example7_log()
        with_obs = ProcessMiner(recorder=ObsRecorder()).mine(log)
        without = ProcessMiner().mine(log)
        assert with_obs.graph.edge_set() == without.graph.edge_set()


class TestParallelMergeDeterminism:
    def test_process_map_timed_records_chunk_metrics(self):
        recorder = ObsRecorder()
        chunks = split_chunks(list(range(20)), 4)
        results = process_map_timed(
            sorted, chunks, jobs=1, recorder=recorder, stage="step5"
        )
        assert [item for block in results for item in block] == list(
            range(20)
        )
        total = recorder.registry.get(
            "repro_parallel_chunks_total", {"stage": "step5"}
        )
        assert total.value == len(chunks)
        hist = recorder.registry.get(
            "repro_parallel_chunk_seconds", {"stage": "step5"}
        )
        assert hist.count == len(chunks)

    def test_null_recorder_bypasses_timing(self):
        results = process_map_timed(
            sorted, split_chunks(list(range(6)), 2), jobs=1
        )
        assert [item for block in results for item in block] == list(
            range(6)
        )


class TestIngestInstrumentation:
    def test_report_mirrors_into_counters(self):
        report = IngestReport(
            accepted_executions=10,
            accepted_records=42,
            repaired_executions=2,
            repairs=TallyCounter({"fill_end_time": 2}),
            quarantined_lines=3,
            quarantined_executions=1,
            reasons=TallyCounter({"bad_timestamp": 3, "orphan": 1}),
        )
        recorder = ObsRecorder()
        publish_ingest_report(report, recorder)
        assert (
            _counter(recorder, "repro_ingest_executions_accepted_total")
            == 10
        )
        assert (
            _counter(recorder, "repro_ingest_records_accepted_total") == 42
        )
        assert (
            _counter(
                recorder,
                "repro_ingest_repairs_total",
                {"rule": "fill_end_time"},
            )
            == 2
        )
        assert (
            _counter(
                recorder,
                "repro_ingest_quarantined_total",
                {"kind": "line"},
            )
            == 3
        )
        assert (
            _counter(
                recorder,
                "repro_ingest_quarantine_reasons_total",
                {"reason": "orphan"},
            )
            == 1
        )

    def test_null_recorder_is_noop(self):
        publish_ingest_report(IngestReport(), NULL_RECORDER)


class TestIncrementalInstrumentation:
    def test_checkpoint_gauges(self, tmp_path):
        recorder = ObsRecorder()
        miner = IncrementalMiner(recorder=recorder)
        miner.add_log(example7_log())
        miner.graph()
        path = tmp_path / "state.ckpt"
        miner.checkpoint(path)
        assert "incremental/materialize" in recorder.span_names()
        assert "incremental/checkpoint" in recorder.span_names()
        size = recorder.registry.get("repro_checkpoint_bytes")
        assert size.value == path.stat().st_size
        assert recorder.registry.get(
            "repro_checkpoint_executions"
        ).value == len(example7_log())

    def test_resume_records_age(self, tmp_path):
        path = tmp_path / "state.ckpt"
        first = IncrementalMiner()
        first.add_log(example7_log())
        first.checkpoint(path)
        recorder = ObsRecorder()
        resumed = IncrementalMiner.resume(path, recorder=recorder)
        age = recorder.registry.get("repro_checkpoint_age_seconds")
        assert age.value >= 0.0
        assert recorder.registry.get(
            "repro_checkpoint_bytes"
        ).value == path.stat().st_size
        assert resumed.graph().edge_count > 0


class TestConditionsInstrumentation:
    def test_tree_metrics_recorded(self):
        log = _branching_log()
        graph = mine_general_dag(log)
        recorder = ObsRecorder()
        mined = ConditionsMiner(pairwise=True).mine(
            log, graph, recorder=recorder
        )
        assert _counter(recorder, "repro_conditions_edges_total") == len(
            mined
        )
        learnable = _counter(recorder, "repro_conditions_learnable_total")
        assert learnable == sum(
            1 for condition in mined.values() if condition.learnable
        )
        depth = recorder.registry.get("repro_conditions_tree_depth")
        if depth is not None:  # only present when a tree was fit
            assert depth.count >= 1


class TestLintInstrumentation:
    def test_findings_by_severity(self):
        model = (
            ProcessBuilder("demo")
            .chain("A", "B", "C")
            .edge("A", "C")
            .build()
        )
        recorder = ObsRecorder()
        report = lint_model(model, recorder=recorder)
        assert "lint" in recorder.span_names()
        assert _counter(
            recorder, "repro_lint_rules_checked_total"
        ) == len(report.checked_rules)
        for severity in ("error", "warning", "info"):
            value = _counter(
                recorder,
                "repro_lint_findings_total",
                {"severity": severity},
            )
            assert value is not None and value >= 0

    def test_recorder_does_not_change_report(self):
        model = ProcessBuilder("demo").chain("A", "B").build()
        plain = lint_model(model)
        observed = lint_model(model, recorder=ObsRecorder())
        assert [d.code for d in plain.diagnostics] == [
            d.code for d in observed.diagnostics
        ]


class TestConditionsViaFacade:
    def test_miner_facade_conditions_span(self):
        log = _branching_log()
        recorder = ObsRecorder()
        miner = ProcessMiner(learn_conditions=True, recorder=recorder)
        result = miner.mine(log)
        assert result.conditions is not None
        assert "conditions" in recorder.span_names()
