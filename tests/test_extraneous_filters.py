"""Tests for extraneous-execution analysis and log filters/variants."""

import pytest

from repro.core.extraneous import (
    admitted_executions,
    count_admitted,
    extraneous_executions,
    extraneous_ratio,
)
from repro.core.general_dag import mine_general_dag
from repro.core.minimize import minimize_conformal
from repro.datasets.examples import open_problem_log
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.logs.filters import (
    deduplicate_variants,
    filter_log,
    format_variants,
    keep_variants,
    started_between,
    top_variants,
    variant_counts,
    with_activities,
    with_length_between,
    without_activities,
)


class TestAdmittedExecutions:
    def test_chain_admits_only_itself(self):
        graph = DiGraph(edges=[("A", "B"), ("B", "C")])
        admitted = admitted_executions(graph, "A", "C")
        # Definition 6 requires connectivity: A-C without B is not
        # admitted when the only edges go through B... A->? A has no
        # direct edge to C, so the subset {A, C} is disconnected.
        assert admitted == [("A", "B", "C")]

    def test_parallel_branches_admit_both_orders(self):
        graph = DiGraph(
            edges=[("S", "A"), ("S", "B"), ("A", "E"), ("B", "E")]
        )
        admitted = set(admitted_executions(graph, "S", "E"))
        assert ("S", "A", "B", "E") in admitted
        assert ("S", "B", "A", "E") in admitted
        # Single-branch subsets are consistent too (induced subgraph
        # connected, reachable, ordered).
        assert ("S", "A", "E") in admitted
        assert ("S", "B", "E") in admitted

    def test_example4_matches_paper(self):
        # Figure 1's graph: ACBE consistent, ADBE not.
        from repro.datasets.examples import example1_edges

        graph = DiGraph(edges=example1_edges())
        admitted = set(admitted_executions(graph, "A", "E"))
        assert ("A", "C", "B", "E") in admitted
        assert ("A", "D", "B", "E") not in admitted

    def test_count_admitted(self):
        graph = DiGraph(edges=[("A", "B"), ("B", "C")])
        assert count_admitted(graph, "A", "C") == 1

    def test_max_count_guard(self):
        # A wide parallel block admits factorially many executions.
        edges = [("S", c) for c in "ABCDEFG"]
        edges += [(c, "E!") for c in "ABCDEFG"]
        graph = DiGraph(edges=edges)
        with pytest.raises(ValueError, match="more than"):
            admitted_executions(graph, "S", "E!", max_count=100)

    def test_bad_endpoints(self):
        graph = DiGraph(edges=[("A", "B")])
        with pytest.raises(ValueError):
            admitted_executions(graph, "X", "B")


class TestExtraneous:
    def test_log_exactly_covered_means_zero(self):
        graph = DiGraph(edges=[("A", "B"), ("B", "C")])
        log = EventLog.from_sequences(["ABC"])
        assert extraneous_executions(graph, log) == []
        assert extraneous_ratio(graph, log) == 0.0

    def test_parallel_graph_over_partial_log(self):
        graph = DiGraph(
            edges=[("S", "A"), ("S", "B"), ("A", "E"), ("B", "E")]
        )
        log = EventLog.from_sequences(["SABE"])
        extraneous = extraneous_executions(graph, log)
        assert ("S", "B", "A", "E") in extraneous
        assert 0.0 < extraneous_ratio(graph, log) < 1.0

    def test_figure5_open_problem_quantified(self):
        # The two conformal graphs of Figure 5 "allow a different set of
        # extraneous executions"; measure ours.
        log = open_problem_log()
        mined = mine_general_dag(log)
        minimized = minimize_conformal(mined, log)
        for graph in (mined, minimized):
            ratio = extraneous_ratio(graph, log)
            assert 0.0 <= ratio < 1.0
        # Every logged variant is admitted by both (conformance).
        for graph in (mined, minimized):
            admitted = set(admitted_executions(graph, "A", "F"))
            for sequence in log.sequences():
                assert tuple(sequence) in admitted


class TestFilters:
    def make_log(self):
        return EventLog.from_sequences(
            ["ABE", "ABE", "ACE", "ABCE", "ABE"],
            process_name="demo",
        )

    def test_filter_log(self):
        log = self.make_log()
        short = filter_log(log, lambda e: len(e) == 3)
        assert len(short) == 4
        assert short.process_name == "demo"

    def test_with_activities(self):
        log = self.make_log()
        assert len(with_activities(log, "B")) == 4
        assert len(with_activities(log, "B", "C")) == 1

    def test_without_activities(self):
        log = self.make_log()
        assert len(without_activities(log, "C")) == 3

    def test_with_length_between(self):
        log = self.make_log()
        assert len(with_length_between(log, 4)) == 1
        assert len(with_length_between(log, 0, 3)) == 4

    def test_started_between(self):
        log = EventLog(
            [
                __import__(
                    "repro.logs.execution", fromlist=["Execution"]
                ).Execution.from_sequence(
                    "AB", execution_id="early", start_time=0.0
                ),
                __import__(
                    "repro.logs.execution", fromlist=["Execution"]
                ).Execution.from_sequence(
                    "AB", execution_id="late", start_time=100.0
                ),
            ]
        )
        windowed = started_between(log, 50.0, 150.0)
        assert [e.execution_id for e in windowed] == ["late"]

    def test_variant_counts_ordering(self):
        log = self.make_log()
        variants = variant_counts(log)
        assert list(variants)[0] == ("A", "B", "E")
        assert variants[("A", "B", "E")] == 3
        assert len(variants) == 3

    def test_top_variants(self):
        log = self.make_log()
        top = top_variants(log, count=2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]

    def test_keep_variants(self):
        log = self.make_log()
        kept = keep_variants(log, ("A", "C", "E"))
        assert len(kept) == 1

    def test_deduplicate_variants_preserves_mining(self):
        log = self.make_log()
        deduplicated = deduplicate_variants(log)
        assert len(deduplicated) == 3
        assert mine_general_dag(log).edge_set() == mine_general_dag(
            deduplicated
        ).edge_set()

    def test_format_variants(self):
        text = format_variants(self.make_log())
        assert "5 executions, 3 variants" in text
        assert "A B E" in text
