"""Tests for repro.datasets (synthetic, examples, cyclic, flowmark)."""

import pytest

from repro.core.conformance import is_consistent
from repro.core.general_dag import mine_general_dag
from repro.datasets.cyclic import CyclicTraceGenerator, loop_edges
from repro.datasets.examples import (
    example1_model,
    graph10,
    graph10_model,
    graph10_typical_executions,
)
from repro.datasets.flowmark import (
    FLOWMARK_EXECUTIONS,
    FLOWMARK_PROCESS_NAMES,
    FLOWMARK_SHAPES,
    flowmark_dataset,
    flowmark_model,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_executions,
    synthetic_dataset,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.random_dag import END, START
from repro.graphs.transitive import transitive_closure
from repro.model.validate import validate_process


class TestSyntheticGenerator:
    def test_executions_start_and_end_correctly(self):
        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=12, n_executions=50, seed=4)
        )
        for execution in dataset.log:
            assert execution.first_activity == START
            assert execution.last_activity == END

    def test_executions_respect_dependencies(self):
        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=10, n_executions=40, seed=2)
        )
        closure = transitive_closure(dataset.graph)
        for execution in dataset.log:
            sequence = execution.sequence
            position = {a: i for i, a in enumerate(sequence)}
            for a in sequence:
                for b in sequence:
                    if closure.has_edge(a, b) and not closure.has_edge(
                        b, a
                    ):
                        assert position[a] < position[b], (a, b, sequence)

    def test_executions_consistent_with_graph(self):
        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=10, n_executions=30, seed=9)
        )
        for execution in dataset.log:
            reason = is_consistent(
                dataset.graph, execution, START, END
            )
            assert reason is None, (execution.sequence, reason)

    def test_not_all_activities_in_all_executions(self):
        # The paper: "In this way, not all activities are present in all
        # executions."
        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=15, n_executions=50, seed=3)
        )
        lengths = {len(e) for e in dataset.log}
        assert len(lengths) > 1

    def test_no_duplicate_activities_within_execution(self):
        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=20, n_executions=30, seed=5)
        )
        for execution in dataset.log:
            assert len(set(execution.sequence)) == len(execution.sequence)

    def test_deterministic(self):
        a = synthetic_dataset(SyntheticConfig(8, 20, seed=7))
        b = synthetic_dataset(SyntheticConfig(8, 20, seed=7))
        assert a.graph == b.graph
        assert a.log.sequences() == b.log.sequences()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_vertices=1, n_executions=5)
        with pytest.raises(ValueError):
            SyntheticConfig(n_vertices=5, n_executions=-1)

    def test_custom_endpoint_names(self):
        graph = DiGraph(edges=[("S", "M"), ("M", "T")])
        log = generate_executions(graph, 5, start="S", end="T")
        assert log.sequences() == [["S", "M", "T"]] * 5


class TestExamples:
    def test_example1_model_valid(self):
        model = example1_model()
        assert validate_process(model).is_valid
        assert model.source == "A"
        assert model.sink == "E"

    def test_graph10_shape(self):
        g = graph10()
        assert g.node_count == 10
        assert g.sources() == ["A"]
        assert g.sinks() == ["J"]

    def test_graph10_admits_typical_executions(self):
        g = graph10()
        from repro.logs.execution import Execution

        for trace in graph10_typical_executions():
            execution = Execution.from_sequence(trace)
            assert is_consistent(g, execution, "A", "J") is None, trace

    def test_graph10_model_matches_graph(self):
        model = graph10_model()
        assert model.graph.edge_set() == graph10().edge_set()
        assert validate_process(model, require_acyclic=True).is_valid


class TestCyclicGenerator:
    def make_loop_graph(self):
        return DiGraph(
            edges=[
                ("A", "B"), ("B", "C"), ("C", "B"), ("C", "E"),
            ]
        )

    def test_loop_edges_detected(self):
        assert loop_edges(self.make_loop_graph()) == {("C", "B")}

    def test_acyclic_graph_has_no_loop_edges(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        assert loop_edges(g) == set()

    def test_traces_repeat_loop_body(self):
        generator = CyclicTraceGenerator(
            self.make_loop_graph(),
            loop_probability=1.0,
            max_loop_iterations=2,
            seed=3,
        )
        log = generator.generate(5)
        for execution in log:
            sequence = execution.sequence
            assert sequence.count("B") == 3  # initial + two loop passes
            assert sequence[0] == "A"
            assert sequence[-1] == "E"

    def test_zero_probability_gives_acyclic_traces(self):
        generator = CyclicTraceGenerator(
            self.make_loop_graph(), loop_probability=0.0, seed=1
        )
        for execution in generator.generate(10):
            assert len(set(execution.sequence)) == len(execution.sequence)

    def test_mining_generated_traces_recovers_cycle(self):
        from repro.core.cyclic import mine_cyclic

        generator = CyclicTraceGenerator(
            self.make_loop_graph(),
            loop_probability=0.5,
            max_loop_iterations=2,
            seed=5,
        )
        log = generator.generate(60)
        mined = mine_cyclic(log)
        assert mined.has_edge("B", "C")
        assert mined.has_edge("C", "B")
        assert mined.has_edge("A", "B")
        assert mined.has_edge("C", "E")

    def test_invalid_parameters(self):
        g = self.make_loop_graph()
        with pytest.raises(ValueError):
            CyclicTraceGenerator(g, loop_probability=1.5)
        with pytest.raises(ValueError):
            CyclicTraceGenerator(g, max_loop_iterations=-1)

    def test_multi_source_skeleton_rejected(self):
        g = DiGraph(edges=[("A", "C"), ("B", "C")])
        with pytest.raises(ValueError, match="one source"):
            CyclicTraceGenerator(g)


class TestFlowmark:
    @pytest.mark.parametrize("name", FLOWMARK_PROCESS_NAMES)
    def test_shapes_match_table3(self, name):
        model = flowmark_model(name)
        vertices, edges = FLOWMARK_SHAPES[name]
        assert model.activity_count == vertices
        assert model.edge_count == edges
        assert validate_process(model, require_acyclic=True).is_valid

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown Flowmark"):
            flowmark_model("NoSuchProcess")

    def test_dataset_execution_counts(self):
        dataset = flowmark_dataset("Pend_Block", seed=1)
        assert len(dataset.log) == FLOWMARK_EXECUTIONS["Pend_Block"]

    def test_custom_execution_count(self):
        dataset = flowmark_dataset("Local_Swap", executions=5, seed=1)
        assert len(dataset.log) == 5

    @pytest.mark.parametrize(
        "name", ["Upload_and_Notify", "Pend_Block", "Local_Swap",
                 "UWI_Pilot"]
    )
    def test_small_processes_recovered_exactly(self, name):
        dataset = flowmark_dataset(name, seed=11)
        mined = mine_general_dag(dataset.log)
        assert mined.edge_set() == dataset.model.graph.edge_set()

    def test_stresssleep_recovered_up_to_closure(self):
        from repro.graphs.transitive import closure_equal

        dataset = flowmark_dataset("StressSleep", seed=11)
        mined = mine_general_dag(dataset.log)
        truth = dataset.model.graph
        assert mined.edge_set() >= truth.edge_set()
        assert closure_equal(mined, truth)
