"""Unit tests for repro.classifier (dataset, splits, tree, rules)."""

import random

import pytest

from repro.classifier.dataset import Dataset, LabelledExample
from repro.classifier.rules import (
    format_rules,
    rule_to_condition,
    rules_to_condition,
    tree_to_rules,
)
from repro.classifier.splits import best_split, entropy, gini
from repro.classifier.tree import DecisionTree, TreeConfig
from repro.errors import TrainingDataError
from repro.model.conditions import Always, Never


def threshold_dataset(cut=10.0, n=40, arity=2, seed=0):
    """Labelled by features[0] > cut."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(n):
        point = tuple(rng.uniform(0, 20) for _ in range(arity))
        pairs.append((point, point[0] > cut))
    return Dataset.from_pairs(pairs)


class TestDataset:
    def test_counts(self):
        data = Dataset.from_pairs([((1,), True), ((2,), False), ((3,), True)])
        assert len(data) == 3
        assert data.positives == 2
        assert data.negatives == 1
        assert data.positive_fraction() == pytest.approx(2 / 3)

    def test_purity(self):
        pure = Dataset.from_pairs([((1,), True), ((2,), True)])
        assert pure.is_pure
        assert pure.majority_label is True
        mixed = Dataset.from_pairs([((1,), True), ((2,), False)])
        assert not mixed.is_pure

    def test_empty_dataset(self):
        data = Dataset([])
        assert data.arity == 0
        assert data.is_pure
        assert data.positive_fraction() == 0.0

    def test_mixed_arity_rejected(self):
        with pytest.raises(TrainingDataError):
            Dataset(
                [
                    LabelledExample((1.0,), True),
                    LabelledExample((1.0, 2.0), False),
                ]
            )

    def test_split(self):
        data = Dataset.from_pairs(
            [((1.0,), False), ((5.0,), True), ((9.0,), True)]
        )
        left, right = data.split(0, 3.0)
        assert len(left) == 1 and len(right) == 2

    def test_feature_values_sorted_distinct(self):
        data = Dataset.from_pairs(
            [((3.0,), True), ((1.0,), False), ((3.0,), True)]
        )
        assert data.feature_values(0) == [1.0, 3.0]


class TestImpurity:
    def test_entropy_extremes(self):
        assert entropy(10, 0) == 0.0
        assert entropy(0, 10) == 0.0
        assert entropy(5, 5) == pytest.approx(1.0)

    def test_gini_extremes(self):
        assert gini(10, 0) == 0.0
        assert gini(5, 5) == pytest.approx(0.5)

    def test_empty(self):
        assert entropy(0, 0) == 0.0
        assert gini(0, 0) == 0.0


class TestBestSplit:
    def test_finds_separating_threshold(self):
        data = threshold_dataset(cut=10.0)
        split = best_split(data)
        assert split is not None
        assert split.feature == 0
        assert 8.0 < split.threshold < 12.0

    def test_pure_dataset_has_no_split(self):
        data = Dataset.from_pairs([((1.0,), True), ((2.0,), True)])
        assert best_split(data) is None

    def test_unsplittable_constant_feature(self):
        data = Dataset.from_pairs([((1.0,), True), ((1.0,), False)])
        assert best_split(data) is None

    def test_min_leaf_respected(self):
        data = Dataset.from_pairs(
            [((float(i),), i >= 1) for i in range(4)]
        )
        split = best_split(data, min_leaf=2)
        assert split is None or split.threshold >= 1.0

    def test_picks_informative_feature(self):
        # Feature 1 is noise; feature 0 separates.
        rng = random.Random(1)
        data = Dataset.from_pairs(
            [
                ((float(i), rng.uniform(0, 100)), i >= 10)
                for i in range(20)
            ]
        )
        split = best_split(data)
        assert split.feature == 0


class TestDecisionTree:
    def test_learns_threshold(self):
        tree = DecisionTree.fit(threshold_dataset())
        assert tree.predict((15.0, 3.0)) is True
        assert tree.predict((5.0, 3.0)) is False
        assert tree.accuracy(threshold_dataset()) == 1.0

    def test_learns_band(self):
        data = Dataset.from_pairs(
            [((float(i),), 5 <= i <= 15) for i in range(21)]
        )
        tree = DecisionTree.fit(data)
        assert tree.accuracy(data) == 1.0
        assert tree.predict((10.0,)) is True
        assert tree.predict((2.0,)) is False
        assert tree.predict((18.0,)) is False

    def test_learns_two_feature_conjunction(self):
        data = Dataset.from_pairs(
            [
                ((float(x), float(y)), x > 5 and y > 5)
                for x in range(11)
                for y in range(11)
            ]
        )
        tree = DecisionTree.fit(data)
        assert tree.accuracy(data) == 1.0

    def test_empty_dataset_rejected(self):
        with pytest.raises(TrainingDataError):
            DecisionTree.fit(Dataset([]))

    def test_max_depth_limits_tree(self):
        data = threshold_dataset(n=100)
        tree = DecisionTree.fit(data, TreeConfig(max_depth=1))
        assert tree.depth <= 1

    def test_depth_zero_is_majority_vote(self):
        data = Dataset.from_pairs(
            [((float(i),), i < 7) for i in range(10)]
        )
        tree = DecisionTree.fit(data, TreeConfig(max_depth=0))
        assert tree.depth == 0
        assert tree.predict((9.0,)) is True  # majority is positive

    def test_pruning_collapses_redundant_split(self):
        # A split that separates nothing better than the majority.
        data = Dataset.from_pairs(
            [((1.0,), True), ((2.0,), True), ((3.0,), True),
             ((4.0,), False)]
        )
        pruned = DecisionTree.fit(data, TreeConfig(prune=True))
        unpruned = DecisionTree.fit(data, TreeConfig(prune=False))
        assert pruned.leaf_count <= unpruned.leaf_count

    def test_gini_matches_entropy_on_separable_data(self):
        data = threshold_dataset()
        for impurity in ("gini", "entropy"):
            tree = DecisionTree.fit(data, TreeConfig(impurity=impurity))
            assert tree.accuracy(data) == 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TreeConfig(max_depth=-1)
        with pytest.raises(ValueError):
            TreeConfig(min_leaf=0)
        with pytest.raises(ValueError):
            TreeConfig(impurity="magic")

    def test_repr(self):
        tree = DecisionTree.fit(threshold_dataset())
        assert "DecisionTree" in repr(tree)


class TestRules:
    def test_single_threshold_rule(self):
        tree = DecisionTree.fit(threshold_dataset())
        rules = tree_to_rules(tree)
        assert len(rules) == 1
        (rule,) = rules
        assert len(rule) == 1
        feature, op, threshold = rule[0]
        assert feature == 0 and op == ">"

    def test_rules_to_condition_evaluates_like_tree(self):
        data = Dataset.from_pairs(
            [((float(i),), 5 <= i <= 15) for i in range(21)]
        )
        tree = DecisionTree.fit(data)
        condition = rules_to_condition(tree_to_rules(tree))
        for i in range(21):
            assert condition.evaluate((float(i),)) == tree.predict(
                (float(i),)
            )

    def test_constant_conditions(self):
        assert isinstance(rules_to_condition([]), Never)
        assert isinstance(rules_to_condition([()]), Always)
        assert isinstance(rule_to_condition(()), Always)

    def test_format_rules(self):
        assert format_rules([]) == "never"
        assert format_rules([()]) == "always"
        text = format_rules([((0, ">", 5.0), (1, "<=", 2.0))])
        assert text == "o[0] > 5 and o[1] <= 2"

    def test_disjunction_of_rules(self):
        condition = rules_to_condition(
            [((0, "<=", 2.0),), ((0, ">", 8.0),)]
        )
        assert condition.evaluate((1.0,))
        assert condition.evaluate((9.0,))
        assert not condition.evaluate((5.0,))
