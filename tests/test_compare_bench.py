"""Tests for the CI benchmark regression gate (benchmarks/compare_bench.py)."""

import copy
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from compare_bench import compare, main, render  # noqa: E402


def _report(cells):
    return {"benchmark": "repro-mining-core", "mode": "quick", "cells": cells}


def _cell(name, fast_seconds, nodes=10, edges=24, equal=True):
    return {
        "cell": name,
        "kind": "distinct",
        "fast_seconds": fast_seconds,
        "nodes": nodes,
        "edges": edges,
        "equal_to_reference": equal,
    }


@pytest.fixture
def baseline():
    return _report(
        [
            _cell("v10-m100", 0.030),
            _cell("v25-m100", 0.050, nodes=25, edges=80),
            _cell("v100-m100", 0.100, nodes=100, edges=300),
        ]
    )


class TestCompare:
    def test_identical_reports_pass(self, baseline):
        result = compare(baseline, copy.deepcopy(baseline))
        assert result.ok
        assert len(result.cells) == 3

    def test_two_x_slower_fails(self, baseline):
        current = copy.deepcopy(baseline)
        for cell in current["cells"]:
            cell["fast_seconds"] *= 2.0
        result = compare(baseline, current)
        assert not result.ok
        assert len(result.failed) == 3

    def test_within_tolerance_passes(self, baseline):
        current = copy.deepcopy(baseline)
        for cell in current["cells"]:
            cell["fast_seconds"] *= 1.10  # under the +15% default
        assert compare(baseline, current).ok

    def test_default_tolerance_is_ratcheted(self, baseline):
        # +20% passed the old +25% gate; the tightened default rejects it.
        current = copy.deepcopy(baseline)
        for cell in current["cells"]:
            cell["fast_seconds"] *= 1.20
        assert not compare(baseline, current).ok

    def test_micro_cells_get_scaled_tolerance(self, baseline):
        micro = _cell("slotted-reduce-micro", 0.040)
        micro["kind"] = "micro"
        baseline["cells"].append(micro)
        current = copy.deepcopy(baseline)
        for cell in current["cells"]:
            cell["fast_seconds"] *= 1.25  # over +15%, under micro's +30%
        result = compare(baseline, current)
        failed = {cell.cell for cell in result.failed}
        assert "slotted-reduce-micro" not in failed
        assert "v10-m100" in failed

    def test_quality_mismatch_fails_even_when_fast(self, baseline):
        current = copy.deepcopy(baseline)
        current["cells"][0]["edges"] = 99
        current["cells"][0]["fast_seconds"] *= 0.5
        result = compare(baseline, current)
        failed = result.failed
        assert [cell.cell for cell in failed] == ["v10-m100"]
        assert "edges" in failed[0].failures[0]

    def test_equality_gate_flag_is_quality(self, baseline):
        current = copy.deepcopy(baseline)
        current["cells"][1]["equal_to_reference"] = False
        assert not compare(baseline, current).ok

    def test_small_cells_skip_timing(self, baseline):
        baseline["cells"][0]["fast_seconds"] = 0.004
        current = copy.deepcopy(baseline)
        current["cells"][0]["fast_seconds"] = 0.012  # 3x, but under floor
        result = compare(baseline, current, min_ms=20.0)
        assert result.ok
        skipped = next(c for c in result.cells if c.cell == "v10-m100")
        assert skipped.notes

    def test_blowup_past_floor_still_fails(self, baseline):
        baseline["cells"][0]["fast_seconds"] = 0.004
        current = copy.deepcopy(baseline)
        current["cells"][0]["fast_seconds"] = 0.050  # crosses the floor
        assert not compare(baseline, current, min_ms=20.0).ok

    def test_calibration_absorbs_uniform_slowdown(self, baseline):
        current = copy.deepcopy(baseline)
        for cell in current["cells"]:
            cell["fast_seconds"] *= 1.8  # slower runner, uniformly
        assert not compare(baseline, current).ok
        assert compare(baseline, current, calibrate=True).ok

    def test_calibration_keeps_relative_regression(self, baseline):
        current = copy.deepcopy(baseline)
        for cell in current["cells"]:
            cell["fast_seconds"] *= 1.8
        current["cells"][2]["fast_seconds"] *= 2.5  # one real regression
        result = compare(baseline, current, calibrate=True)
        assert [cell.cell for cell in result.failed] == ["v100-m100"]

    def test_disjoint_cells_are_reported_not_gated(self, baseline):
        current = _report(
            [_cell("v10-m100", 0.030), _cell("brand-new", 0.010)]
        )
        result = compare(baseline, current)
        assert result.ok
        assert result.only_current == ["brand-new"]
        assert "v25-m100" in result.only_baseline


class TestRender:
    def test_table_mentions_each_cell_and_failure(self, baseline):
        current = copy.deepcopy(baseline)
        current["cells"][0]["fast_seconds"] *= 3.0
        result = compare(baseline, current)
        table = render(result)
        assert "v10-m100" in table
        assert "FAIL" in table
        assert "wall time" in table


class TestMainExitCodes:
    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_clean_run_exits_zero(self, tmp_path, baseline, capsys):
        base = self._write(tmp_path, "base.json", baseline)
        cur = self._write(tmp_path, "cur.json", copy.deepcopy(baseline))
        assert main([base, cur]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_synthetic_2x_slower_baseline_exits_nonzero(
        self, tmp_path, baseline, capsys
    ):
        current = copy.deepcopy(baseline)
        for cell in current["cells"]:
            cell["fast_seconds"] *= 2.0
        base = self._write(tmp_path, "base.json", baseline)
        cur = self._write(tmp_path, "cur.json", current)
        assert main([base, cur]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_no_shared_cells_exits_two(self, tmp_path, baseline, capsys):
        base = self._write(tmp_path, "base.json", baseline)
        cur = self._write(
            tmp_path, "cur.json", _report([_cell("other", 0.030)])
        )
        assert main([base, cur]) == 2
        capsys.readouterr()

    def test_tolerance_flag_is_respected(self, tmp_path, baseline):
        current = copy.deepcopy(baseline)
        for cell in current["cells"]:
            cell["fast_seconds"] *= 1.4
        base = self._write(tmp_path, "base.json", baseline)
        cur = self._write(tmp_path, "cur.json", current)
        assert main([base, cur]) == 1
        assert main([base, cur, "--tolerance", "0.5"]) == 0
