"""Tests for exact conformal-graph minimization."""

import pytest

from repro.core.conformance import check_conformance
from repro.core.general_dag import mine_general_dag
from repro.core.minimize import minimization_gap, minimize_conformal
from repro.core.special_dag import mine_special_dag
from repro.datasets.examples import example6_log, example7_log
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog


class TestMinimizeConformal:
    def test_result_stays_conformal(self):
        log = example7_log()
        mined = mine_general_dag(log)
        minimized = minimize_conformal(mined, log)
        report = check_conformance(minimized, log)
        assert report.is_conformal, report.violations()

    def test_result_is_subgraph(self):
        log = example7_log()
        mined = mine_general_dag(log)
        minimized = minimize_conformal(mined, log)
        assert minimized.edge_set() <= mined.edge_set()

    def test_no_single_edge_removable(self):
        log = example7_log()
        minimized = minimize_conformal(mine_general_dag(log), log)
        for edge in list(minimized.edges()):
            weakened = minimized.copy()
            weakened.remove_edge(*edge)
            report = check_conformance(weakened, log)
            assert not report.is_conformal, edge

    def test_algorithm1_output_already_minimal(self):
        # Theorem 4: on complete logs the mined graph is minimal; exact
        # minimization must find nothing to remove.
        log = example6_log()
        mined = mine_special_dag(log)
        minimized = minimize_conformal(mined, log)
        assert minimized.edge_set() == mined.edge_set()

    def test_removes_genuinely_redundant_edge(self):
        # Start from a graph with an obviously redundant shortcut.
        log = EventLog.from_sequences(["ABC"] * 3)
        padded = DiGraph(
            edges=[("A", "B"), ("B", "C"), ("A", "C")]
        )
        minimized = minimize_conformal(padded, log)
        assert minimized.edge_set() == {("A", "B"), ("B", "C")}

    def test_keeps_shortcut_needed_by_skipping_execution(self):
        # A->C is required by the execution AC (B optional).
        log = EventLog.from_sequences(["ABC", "AC"])
        padded = DiGraph(
            edges=[("A", "B"), ("B", "C"), ("A", "C")]
        )
        minimized = minimize_conformal(padded, log)
        assert minimized.has_edge("A", "C")

    def test_heuristic_close_to_exact_on_synthetic(self):
        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=10, n_executions=100, seed=4)
        )
        mined = mine_general_dag(dataset.log)
        before, after, minimized = minimization_gap(mined, dataset.log)
        assert before == mined.edge_count
        assert after <= before
        # The heuristic should be within a handful of edges of locally
        # minimal on small graphs (the paper's justification for it).
        assert before - after <= max(3, before // 4)
        report = check_conformance(minimized, dataset.log)
        assert report.is_conformal, report.violations()

    def test_empty_log_rejected(self):
        from repro.errors import EmptyLogError

        with pytest.raises(EmptyLogError):
            minimize_conformal(DiGraph(), EventLog())
