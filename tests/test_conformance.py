"""Unit tests for repro.core.conformance (Definitions 6 and 7)."""

import pytest

from repro.core.conformance import check_conformance, is_consistent
from repro.core.general_dag import mine_general_dag
from repro.core.special_dag import mine_special_dag
from repro.datasets.examples import (
    example1_edges,
    example3_log,
    example5_log,
    example6_log,
    example7_log,
    open_problem_log,
)
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution


@pytest.fixture
def figure1():
    return DiGraph(edges=example1_edges())


class TestIsConsistent:
    def test_example4_positive(self, figure1):
        # "The execution ACBE is consistent with the graph in Figure 1."
        execution = Execution.from_sequence("ACBE")
        assert is_consistent(figure1, execution, "A", "E") is None

    def test_example4_negative(self, figure1):
        # "...but ADBE is not."
        execution = Execution.from_sequence("ADBE")
        reason = is_consistent(figure1, execution, "A", "E")
        assert reason is not None

    def test_full_execution(self, figure1):
        execution = Execution.from_sequence("ABCDE")
        assert is_consistent(figure1, execution, "A", "E") is None

    def test_alien_activity(self, figure1):
        execution = Execution.from_sequence("AXBE")
        reason = is_consistent(figure1, execution, "A", "E")
        assert "not in the graph" in reason

    def test_wrong_first_activity(self, figure1):
        execution = Execution.from_sequence("BCE")
        reason = is_consistent(figure1, execution, "A", "E")
        assert reason is not None

    def test_wrong_last_activity(self, figure1):
        execution = Execution.from_sequence("ABC")
        reason = is_consistent(figure1, execution, "A", "E")
        assert "terminating" in reason

    def test_dependency_violation(self, figure1):
        # D before C violates C -> D.
        execution = Execution.from_sequence("ADCE")
        reason = is_consistent(figure1, execution, "A", "E")
        assert "violates" in reason or "not reachable" in reason

    def test_empty_execution(self, figure1):
        execution = Execution("empty", [])
        assert is_consistent(figure1, execution, "A", "E") == (
            "execution is empty"
        )

    def test_disconnected_induced_subgraph(self):
        graph = DiGraph(
            edges=[("A", "B"), ("B", "E"), ("A", "C"), ("C", "D"),
                   ("D", "E")]
        )
        # {A, B, D, E}: D's only parent C is missing; D unreachable.
        execution = Execution.from_sequence("ABDE")
        reason = is_consistent(graph, execution, "A", "E")
        assert reason is not None


class TestCheckConformance:
    def test_algorithm1_output_is_conformal(self):
        log = example6_log()
        mined = mine_special_dag(log)
        report = check_conformance(mined, log)
        assert report.is_conformal, report.violations()

    def test_algorithm2_output_is_conformal_on_paper_logs(self):
        for log in (example5_log(), example7_log(), open_problem_log()):
            mined = mine_general_dag(log)
            report = check_conformance(mined, log)
            assert report.is_conformal, (
                log.process_name,
                report.violations(),
            )

    def test_missing_dependency_detected(self):
        log = example3_log()
        # An empty graph misses every dependency.
        empty = DiGraph(nodes=log.activities())
        report = check_conformance(empty, log)
        assert not report.is_conformal
        assert ("A", "B") in report.missing_dependencies

    def test_spurious_path_detected(self):
        # B and C are independent in this log; a chain forces B -> C.
        log = EventLog.from_sequences(["ABCD", "ACBD"])
        chain = DiGraph(
            edges=[("A", "B"), ("B", "C"), ("C", "D")]
        )
        report = check_conformance(chain, log)
        assert ("B", "C") in report.spurious_paths

    def test_inconsistent_execution_detected(self):
        # Figure 2's second graph does not allow ADCE.
        log = example5_log()
        rigid = DiGraph(
            edges=[("A", "B"), ("B", "C"), ("C", "D"), ("D", "E"),
                   ("A", "D")]
        )
        report = check_conformance(rigid, log)
        assert report.inconsistent_executions

    def test_violations_text(self):
        log = example3_log()
        empty = DiGraph(nodes=log.activities())
        messages = check_conformance(empty, log).violations()
        assert any("no path for dependency" in m for m in messages)

    def test_explicit_endpoints(self):
        log = EventLog.from_sequences(["SAE"])
        graph = DiGraph(edges=[("S", "A"), ("A", "E")])
        report = check_conformance(graph, log, source="S", sink="E")
        assert report.is_conformal
