"""Tests for the JSON-lines log codec."""

import io
import json

import pytest

from repro.errors import LogFormatError
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.logs.jsonl import (
    read_log_jsonl,
    read_log_jsonl_file,
    record_from_json,
    record_to_json,
    write_log_jsonl,
    write_log_jsonl_file,
)


def sample_log():
    return EventLog(
        [
            Execution.from_sequence(
                "AB", outputs={"A": (1.5, 2.0)}, execution_id="r1"
            ),
            Execution.from_sequence("ACB", execution_id="r2"),
        ],
        process_name="claims",
    )


class TestRecordLevel:
    def test_json_shape(self):
        log = sample_log()
        record = log[0].records[1]  # A's END event
        payload = json.loads(record_to_json(record, "claims"))
        assert payload["process"] == "claims"
        assert payload["activity"] == "A"
        assert payload["type"] == "END"
        assert payload["output"] == [1.5, 2.0]

    def test_start_has_null_output(self):
        record = sample_log()[0].records[0]
        payload = json.loads(record_to_json(record, "claims"))
        assert payload["output"] is None

    def test_roundtrip(self):
        record = sample_log()[0].records[1]
        name, parsed = record_from_json(record_to_json(record, "p"))
        assert name == "p"
        assert parsed == record

    def test_unknown_fields_ignored(self):
        line = json.dumps(
            {
                "process": "p", "execution": "e", "activity": "A",
                "type": "START", "time": 0.0, "output": None,
                "sidecar": {"k": "v"},
            }
        )
        _, record = record_from_json(line)
        assert record.activity == "A"

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"process": "p"}',
            '{"process": "p", "execution": "e", "activity": "A", '
            '"type": "MIDDLE", "time": 0}',
            '{"process": "p", "execution": "e", "activity": "A", '
            '"type": "END", "time": 0, "output": "nope"}',
            '{"process": "p", "execution": "e", "activity": "A", '
            '"type": "END", "time": 0, "output": ["x"]}',
        ],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(LogFormatError):
            record_from_json(line, line_number=1)


class TestLogLevel:
    def test_roundtrip(self):
        log = sample_log()
        buffer = io.StringIO()
        lines = write_log_jsonl(log, buffer)
        assert lines == log.event_count()
        buffer.seek(0)
        parsed = read_log_jsonl(buffer)
        assert parsed.process_name == "claims"
        assert parsed.sequences() == log.sequences()
        assert parsed[0].last_output_of("A") == (1.5, 2.0)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_log_jsonl_file(sample_log(), path)
        parsed = read_log_jsonl_file(path)
        assert len(parsed) == 2

    def test_blank_lines_skipped(self):
        log = sample_log()
        buffer = io.StringIO()
        write_log_jsonl(log, buffer)
        padded = "\n" + buffer.getvalue().replace("\n", "\n\n")
        parsed = read_log_jsonl(io.StringIO(padded))
        assert parsed.sequences() == log.sequences()

    def test_mixed_processes_rejected(self):
        lines = [
            json.dumps(
                {"process": p, "execution": "e", "activity": "A",
                 "type": "START", "time": 0.0}
            )
            for p in ("p1", "p2")
        ]
        with pytest.raises(LogFormatError, match="mixes"):
            read_log_jsonl(io.StringIO("\n".join(lines)))

    def test_mining_equivalence_across_codecs(self):
        from repro.core.general_dag import mine_general_dag
        from repro.logs.codec import log_from_text, log_to_text

        log = sample_log()
        buffer = io.StringIO()
        write_log_jsonl(log, buffer)
        buffer.seek(0)
        via_jsonl = read_log_jsonl(buffer)
        via_tsv = log_from_text(log_to_text(log))
        assert mine_general_dag(via_jsonl).edge_set() == (
            mine_general_dag(via_tsv).edge_set()
        )
