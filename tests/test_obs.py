"""Unit tests for :mod:`repro.obs` — recorders, metrics, exporters."""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    FORMATS,
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    ObsRecorder,
    RunManifest,
    parse_jsonl,
    parse_prometheus,
    render,
    render_jsonl,
    render_prometheus,
    render_text,
    resolve_recorder,
    write_manifest,
)


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.get("hits").value == 5

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"kind": "a"}).inc()
        registry.counter("hits", {"kind": "b"}).inc(2)
        assert registry.get("hits", {"kind": "a"}).value == 1
        assert registry.get("hits", {"kind": "b"}).value == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"a": "1", "b": "2"}).inc()
        registry.counter("hits", {"b": "2", "a": "1"}).inc()
        assert registry.get("hits", {"b": "2", "a": "1"}).value == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_last_set_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7)
        assert registry.get("depth").value == 7

    def test_histogram_sum_count_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 3.0, 10.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(15.0)
        # Non-cumulative per-bucket counts; 10.0 only in +Inf overflow.
        assert hist.bucket_counts == [1, 1, 1]

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("z_total").inc()
        registry.counter("a_total").inc()
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        names = [sample["name"] for sample in snapshot]
        assert names == sorted(names)
        json.dumps(snapshot)  # must not raise

    def test_merge_counters_and_histograms_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.get("n").value == 5
        assert a.get("h").count == 2
        assert a.get("h").sum == pytest.approx(2.5)

    def test_merge_gauge_takes_incoming(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.get("g").value == 9

    def test_merge_order_deterministic_for_counters(self):
        """Counter/histogram merges commute: worker order can't matter."""
        workers = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.counter("jobs", {"w": str(index)}).inc(index + 1)
            registry.counter("total").inc(index + 1)
            registry.histogram("h", bounds=(1.0, 2.0)).observe(index * 0.9)
            workers.append(registry)

        def merged(order):
            target = MetricsRegistry()
            for position in order:
                target.merge(workers[position])
            return target.snapshot()

        assert merged([0, 1, 2]) == merged([2, 0, 1])

    def test_merge_histogram_bounds_must_match(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)


# ---------------------------------------------------------------------------
# ObsRecorder spans
# ---------------------------------------------------------------------------
class TestSpans:
    def test_nesting_parent_and_depth(self):
        recorder = ObsRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
            with recorder.span("sibling"):
                pass
        spans = {span.name: span for span in recorder.spans}
        assert recorder.span_names() == ["outer", "inner", "sibling"]
        assert spans["outer"].parent is None
        assert spans["outer"].depth == 0
        assert spans["inner"].parent == spans["outer"].index
        assert spans["inner"].depth == 1
        assert spans["sibling"].parent == spans["outer"].index

    def test_spans_in_start_order_with_indices(self):
        recorder = ObsRecorder()
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        assert [span.index for span in recorder.spans] == [0, 1]

    def test_timings_non_negative_and_outer_covers_inner(self):
        recorder = ObsRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                sum(range(1000))
        outer, inner = recorder.spans
        assert outer.wall_seconds >= inner.wall_seconds >= 0.0
        assert outer.cpu_seconds >= 0.0

    def test_annotate_attaches_attrs(self):
        recorder = ObsRecorder()
        with recorder.span("stage", fixed="yes") as span:
            span.annotate(edges=12)
        (finished,) = recorder.spans
        assert finished.attrs == {"fixed": "yes", "edges": 12}

    def test_open_spans_excluded(self):
        recorder = ObsRecorder()
        with recorder.span("open"):
            assert recorder.spans == []

    def test_metric_shorthands(self):
        recorder = ObsRecorder()
        recorder.count("c", 2)
        recorder.gauge("g", 7)
        recorder.observe("h", 0.25)
        assert recorder.registry.get("c").value == 2
        assert recorder.registry.get("g").value == 7
        assert recorder.registry.get("h").count == 1


# ---------------------------------------------------------------------------
# NullRecorder — the disabled fast path
# ---------------------------------------------------------------------------
class TestNullRecorder:
    def test_disabled_and_singletonish(self):
        assert NULL_RECORDER.enabled is False
        assert resolve_recorder(None) is NULL_RECORDER
        recorder = ObsRecorder()
        assert resolve_recorder(recorder) is recorder

    def test_span_returns_shared_singleton(self):
        first = NULL_RECORDER.span("a", attr=1)
        second = NULL_RECORDER.span("b")
        assert first is second  # no allocation per call

    def test_span_is_reentrant_noop(self):
        with NULL_RECORDER.span("x") as span:
            span.annotate(ignored=True)
            with NULL_RECORDER.span("y"):
                pass
        assert NULL_RECORDER.spans == []
        assert NULL_RECORDER.span_names() == []

    def test_metric_calls_are_noops(self):
        NULL_RECORDER.count("c")
        NULL_RECORDER.gauge("g", 1)
        NULL_RECORDER.observe("h", 0.5)
        NULL_RECORDER.merge_registry(MetricsRegistry())
        assert NULL_RECORDER.registry is None

    def test_no_per_instance_state(self):
        assert NullRecorder.__slots__ == ()
        with pytest.raises(AttributeError):
            NullRecorder().something = 1


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def _sample_manifest():
    recorder = ObsRecorder()
    with recorder.span("mine", algorithm="general-dag"):
        with recorder.span("mine/prepare"):
            pass
    recorder.count("repro_mine_executions_total", 60)
    recorder.count(
        "repro_mine_edges_dropped_total", 2, labels={"cause": "threshold"}
    )
    recorder.gauge("repro_mine_edges", 24, labels={"stage": "step6"})
    recorder.observe("repro_parallel_chunk_seconds", 0.002)
    return RunManifest.collect(
        recorder, command="mine", config={"threshold": 0}
    )


class TestExporters:
    def test_jsonl_round_trip(self):
        manifest = _sample_manifest()
        grouped = parse_jsonl(render_jsonl(manifest))
        assert len(grouped["manifest"]) == 1
        assert grouped["manifest"][0]["command"] == "mine"
        assert [record["name"] for record in grouped["span"]] == [
            "mine",
            "mine/prepare",
        ]
        metric_names = {record["name"] for record in grouped["metric"]}
        assert "repro_mine_executions_total" in metric_names

    def test_jsonl_rejects_unknown_record_type(self):
        with pytest.raises(ValueError):
            parse_jsonl('{"type": "mystery"}\n')

    def test_prometheus_round_trip(self):
        manifest = _sample_manifest()
        text = render_prometheus(manifest)
        samples = parse_prometheus(text)
        assert samples[("repro_mine_executions_total", ())] == 60
        assert (
            samples[
                (
                    "repro_mine_edges_dropped_total",
                    (("cause", "threshold"),),
                )
            ]
            == 2
        )
        span_stages = {
            dict(labels)["stage"]
            for name, labels in samples
            if name == "repro_span_seconds"
        }
        assert span_stages == {"mine", "mine/prepare"}

    def test_prometheus_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 2.0))
        for value in (0.5, 0.7, 1.5, 9.0):
            hist.observe(value)
        recorder = ObsRecorder(registry)
        manifest = RunManifest.collect(recorder, command="t")
        samples = parse_prometheus(render_prometheus(manifest))
        assert samples[("lat_bucket", (("le", "1.0"),))] == 2
        assert samples[("lat_bucket", (("le", "2.0"),))] == 3
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 4
        assert samples[("lat_count", ())] == 4
        assert samples[("lat_sum", ())] == pytest.approx(11.7)

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", {"path": 'a"b\\c\nd'}).inc()
        recorder = ObsRecorder(registry)
        manifest = RunManifest.collect(recorder, command="t")
        samples = parse_prometheus(render_prometheus(manifest))
        assert samples[("c", (("path", 'a"b\\c\nd'),))] == 1

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all!\n")

    def test_text_render_shows_stages_and_metrics(self):
        text = render_text(_sample_manifest())
        assert "mine/prepare" in text
        assert "repro_mine_executions_total" in text
        assert "config.threshold: 0" in text

    def test_render_dispatch_and_unknown_format(self):
        manifest = _sample_manifest()
        for fmt in FORMATS:
            assert render(manifest, fmt)
        with pytest.raises(ValueError):
            render(manifest, "xml")

    def test_write_manifest(self, tmp_path):
        path = write_manifest(
            _sample_manifest(), tmp_path / "run.jsonl", "jsonl"
        )
        grouped = parse_jsonl(path.read_text())
        assert grouped["manifest"][0]["version"] == 1

    def test_exports_agree_on_counter_values(self):
        """All renderers draw from one snapshot; spot-check agreement."""
        manifest = _sample_manifest()
        grouped = parse_jsonl(render_jsonl(manifest))
        jsonl_value = next(
            record["value"]
            for record in grouped["metric"]
            if record["name"] == "repro_mine_executions_total"
        )
        prom_value = parse_prometheus(render_prometheus(manifest))[
            ("repro_mine_executions_total", ())
        ]
        assert jsonl_value == prom_value == 60


# ---------------------------------------------------------------------------
# Manifest identity fields
# ---------------------------------------------------------------------------
class TestManifest:
    def test_input_digest_and_stage_names(self, tmp_path):
        data = tmp_path / "input.log"
        data.write_text("hello\n")
        recorder = ObsRecorder()
        with recorder.span("ingest"):
            pass
        manifest = RunManifest.collect(
            recorder, command="mine", input_path=data
        )
        assert manifest.input_digest is not None
        assert manifest.input_digest.startswith("sha256:")
        assert manifest.stage_names() == ["ingest"]

    def test_missing_input_degrades_to_none(self, tmp_path):
        manifest = RunManifest.collect(
            ObsRecorder(),
            command="mine",
            input_path=tmp_path / "vanished.log",
        )
        assert manifest.input_digest is None

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
