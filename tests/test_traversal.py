"""Unit tests for repro.graphs.traversal."""

import pytest

from repro.errors import CycleError, NodeNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import (
    ancestors,
    bfs_order,
    descendants,
    dfs_postorder,
    dfs_preorder,
    find_cycle,
    has_path,
    is_acyclic,
    iter_paths,
    reachable_from,
    restrict_to_reachable,
    topological_sort,
)


@pytest.fixture
def diamond():
    return DiGraph(edges=[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")])


@pytest.fixture
def cyclic():
    return DiGraph(edges=[("A", "B"), ("B", "C"), ("C", "B"), ("C", "D")])


class TestDfsBfs:
    def test_preorder_visits_each_reachable_node_once(self, diamond):
        order = dfs_preorder(diamond, "A")
        assert sorted(order) == ["A", "B", "C", "D"]
        assert order[0] == "A"

    def test_postorder_parents_after_children(self, diamond):
        order = dfs_postorder(diamond, "A")
        assert order[-1] == "A"
        assert order.index("D") < order.index("B")
        assert order.index("D") < order.index("C")

    def test_bfs_levels(self, diamond):
        order = bfs_order(diamond, "A")
        assert order[0] == "A"
        assert set(order[1:3]) == {"B", "C"}
        assert order[3] == "D"

    def test_traversal_from_missing_node(self, diamond):
        for fn in (dfs_preorder, dfs_postorder, bfs_order):
            with pytest.raises(NodeNotFoundError):
                fn(diamond, "Z")

    def test_traversal_restricted_to_reachable(self, diamond):
        order = dfs_preorder(diamond, "B")
        assert sorted(order) == ["B", "D"]

    def test_traversal_handles_cycles(self, cyclic):
        assert sorted(dfs_preorder(cyclic, "A")) == ["A", "B", "C", "D"]
        assert sorted(bfs_order(cyclic, "A")) == ["A", "B", "C", "D"]


class TestReachability:
    def test_descendants(self, diamond):
        assert descendants(diamond, "A") == {"B", "C", "D"}
        assert descendants(diamond, "D") == set()

    def test_ancestors(self, diamond):
        assert ancestors(diamond, "D") == {"A", "B", "C"}
        assert ancestors(diamond, "A") == set()

    def test_node_on_cycle_is_own_descendant(self, cyclic):
        assert "B" in descendants(cyclic, "B")
        assert "B" in ancestors(cyclic, "B")

    def test_has_path(self, diamond):
        assert has_path(diamond, "A", "D")
        assert not has_path(diamond, "D", "A")
        assert not has_path(diamond, "B", "C")

    def test_has_path_self_requires_cycle(self, diamond, cyclic):
        assert not has_path(diamond, "A", "A")
        assert has_path(cyclic, "B", "B")

    def test_reachable_from_includes_start(self, diamond):
        assert reachable_from(diamond, "B") == {"B", "D"}

    def test_restrict_to_reachable(self, diamond):
        restricted = restrict_to_reachable(diamond, "C")
        assert set(restricted.nodes()) == {"C", "D"}
        assert restricted.edge_set() == {("C", "D")}


class TestTopologicalSort:
    def test_respects_edges(self, diamond):
        order = topological_sort(diamond)
        position = {node: i for i, node in enumerate(order)}
        for source, target in diamond.edges():
            assert position[source] < position[target]

    def test_raises_with_cycle_payload(self, cyclic):
        with pytest.raises(CycleError) as excinfo:
            topological_sort(cyclic)
        cycle = excinfo.value.cycle
        assert cycle[0] == cycle[-1]
        assert set(cycle) <= {"B", "C"}

    def test_empty_graph(self):
        assert topological_sort(DiGraph()) == []

    def test_disconnected_components(self):
        g = DiGraph(edges=[("A", "B"), ("C", "D")])
        order = topological_sort(g)
        assert order.index("A") < order.index("B")
        assert order.index("C") < order.index("D")


class TestCycleDetection:
    def test_acyclic(self, diamond):
        assert is_acyclic(diamond)
        assert find_cycle(diamond) is None

    def test_finds_two_cycle(self, cyclic):
        cycle = find_cycle(cyclic)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        # Each consecutive pair is an edge.
        for u, v in zip(cycle, cycle[1:]):
            assert cyclic.has_edge(u, v)

    def test_self_loop(self):
        g = DiGraph(edges=[("A", "A")])
        assert find_cycle(g) == ["A", "A"]

    def test_long_cycle(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")])
        cycle = find_cycle(g)
        assert cycle is not None
        assert len(cycle) == 5


class TestIterPaths:
    def test_all_simple_paths(self, diamond):
        paths = sorted(iter_paths(diamond, "A", "D"))
        assert paths == [["A", "B", "D"], ["A", "C", "D"]]

    def test_no_path(self, diamond):
        assert list(iter_paths(diamond, "B", "C")) == []

    def test_missing_endpoint(self, diamond):
        with pytest.raises(NodeNotFoundError):
            list(iter_paths(diamond, "A", "Z"))

    def test_max_paths_guard(self):
        # A ladder of diamonds has exponentially many paths.
        g = DiGraph()
        for i in range(12):
            g.add_edge(f"n{i}", f"a{i}")
            g.add_edge(f"n{i}", f"b{i}")
            g.add_edge(f"a{i}", f"n{i + 1}")
            g.add_edge(f"b{i}", f"n{i + 1}")
        with pytest.raises(ValueError, match="simple paths"):
            list(iter_paths(g, "n0", "n12", max_paths=100))
