"""CLI surface of out-of-core mining: ``mine --stream``, ``--state-out``
and the ``merge-states`` subcommand.

Every test drives :func:`repro.cli.main` exactly as a shell would and
asserts the streaming path agrees with the batch path on the *rendered*
output — the graph a user actually sees.
"""

import pytest

from repro.cli import main
from repro.core.incremental import IncrementalMiner
from repro.core.state import load_state
from repro.logs.codec import write_log_file
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution

SEQUENCES = ["ABCF", "ACDF", "ABDF", "ABCDF", "ABCF", "ACDF"]
CYCLIC = ["SLBE", "SLBLBE", "SLE"]


def write_log(tmp_path, sequences, name="mine.tsv", process="claims"):
    path = tmp_path / name
    write_log_file(
        EventLog(
            [
                Execution.from_sequence(list(seq), f"e{i:04d}")
                for i, seq in enumerate(sequences)
            ],
            process_name=process,
        ),
        path,
    )
    return path


def edge_lines(output):
    return sorted(
        line
        for line in output.splitlines()
        if line and not line.startswith("#")
    )


def mine_edges(capsys, argv):
    assert main(argv) == 0
    return edge_lines(capsys.readouterr().out)


class TestMineStream:
    def test_stream_matches_batch_output(self, tmp_path, capsys):
        log = write_log(tmp_path, SEQUENCES)
        batch = mine_edges(capsys, ["mine", str(log), "--format", "edges"])
        streamed = mine_edges(
            capsys, ["mine", str(log), "--stream", "--format", "edges"]
        )
        assert streamed == batch

    def test_stream_resolves_cyclic_logs(self, tmp_path, capsys):
        log = write_log(tmp_path, CYCLIC, name="cyc.tsv")
        batch = mine_edges(capsys, ["mine", str(log), "--format", "edges"])
        streamed = mine_edges(
            capsys, ["mine", str(log), "--stream", "--format", "edges"]
        )
        assert streamed == batch

    def test_stream_rejects_special_dag(self, tmp_path, capsys):
        log = write_log(tmp_path, SEQUENCES)
        assert (
            main(
                [
                    "mine",
                    str(log),
                    "--stream",
                    "--algorithm",
                    "special-dag",
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err

    def test_stream_window_flag(self, tmp_path, capsys):
        log = write_log(tmp_path, SEQUENCES)
        batch = mine_edges(capsys, ["mine", str(log), "--format", "edges"])
        streamed = mine_edges(
            capsys,
            [
                "mine",
                str(log),
                "--stream",
                "--stream-window",
                "1",
                "--format",
                "edges",
            ],
        )
        assert streamed == batch

    def test_state_out_writes_a_loadable_shard(self, tmp_path, capsys):
        log = write_log(tmp_path, SEQUENCES)
        state_path = tmp_path / "shard.state"
        assert (
            main(
                [
                    "mine",
                    str(log),
                    "--stream",
                    "--state-out",
                    str(state_path),
                    "--format",
                    "edges",
                ]
            )
            == 0
        )
        capsys.readouterr()
        state, meta = load_state(state_path)
        assert state.execution_count == len(SEQUENCES)
        assert meta["version"] == 3


class TestMergeStates:
    def shards(self, tmp_path, capsys):
        paths = []
        for index, chunk in enumerate(
            (SEQUENCES[:2], SEQUENCES[2:4], SEQUENCES[4:])
        ):
            log = write_log(
                tmp_path, chunk, name=f"shard{index}.tsv"
            )
            state_path = tmp_path / f"shard{index}.state"
            assert (
                main(
                    [
                        "mine",
                        str(log),
                        "--stream",
                        "--state-out",
                        str(state_path),
                        "--format",
                        "edges",
                    ]
                )
                == 0
            )
            paths.append(str(state_path))
        capsys.readouterr()
        return paths

    def test_sharded_merge_equals_batch_mine(self, tmp_path, capsys):
        log = write_log(tmp_path, SEQUENCES, name="whole.tsv")
        batch = mine_edges(capsys, ["mine", str(log), "--format", "edges"])
        shards = self.shards(tmp_path, capsys)
        merged = mine_edges(
            capsys, ["merge-states", *shards, "--format", "edges"]
        )
        assert merged == batch

    def test_merge_order_does_not_matter(self, tmp_path, capsys):
        shards = self.shards(tmp_path, capsys)
        forward = mine_edges(
            capsys, ["merge-states", *shards, "--format", "edges"]
        )
        backward = mine_edges(
            capsys,
            ["merge-states", *reversed(shards), "--format", "edges"],
        )
        assert forward == backward

    def test_state_only_writes_without_mining(self, tmp_path, capsys):
        shards = self.shards(tmp_path, capsys)
        merged_path = tmp_path / "merged.state"
        assert (
            main(
                [
                    "merge-states",
                    *shards,
                    "--output",
                    str(merged_path),
                    "--state-only",
                ]
            )
            == 0
        )
        capsys.readouterr()
        merged, meta = load_state(merged_path)
        assert merged.execution_count == len(SEQUENCES)

    def test_merged_state_file_matches_single_pass_state(
        self, tmp_path, capsys
    ):
        # merge-states --output must be byte-compatible with the state
        # a single streaming pass over the whole log writes.
        shards = self.shards(tmp_path, capsys)
        merged_path = tmp_path / "merged.state"
        assert (
            main(
                [
                    "merge-states",
                    *shards,
                    "--output",
                    str(merged_path),
                    "--state-only",
                ]
            )
            == 0
        )
        whole = write_log(tmp_path, SEQUENCES, name="whole.tsv")
        single_path = tmp_path / "single.state"
        assert (
            main(
                [
                    "mine",
                    str(whole),
                    "--stream",
                    "--state-out",
                    str(single_path),
                    "--format",
                    "edges",
                ]
            )
            == 0
        )
        capsys.readouterr()
        merged, _ = load_state(merged_path)
        single, _ = load_state(single_path)
        assert merged.to_payload() == single.to_payload()

    def test_mode_mismatch_is_an_error(self, tmp_path, capsys):
        shards = self.shards(tmp_path, capsys)
        cyc_log = write_log(tmp_path, CYCLIC, name="cyc.tsv")
        cyc_state = tmp_path / "cyc.state"
        assert (
            main(
                [
                    "mine",
                    str(cyc_log),
                    "--stream",
                    "--state-out",
                    str(cyc_state),
                    "--format",
                    "edges",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["merge-states", shards[0], str(cyc_state)]) == 1
        )
        assert "error:" in capsys.readouterr().err

    def test_incremental_checkpoint_is_a_valid_shard(
        self, tmp_path, capsys
    ):
        # Checkpoints written by IncrementalMiner are format v3, so they
        # merge with CLI shards directly — one interop surface, not two.
        miner = IncrementalMiner()
        for index, seq in enumerate(SEQUENCES[:3]):
            miner.add_sequence(list(seq), execution_id=f"inc{index}")
        checkpoint = tmp_path / "inc.ckpt"
        miner.checkpoint(checkpoint)

        rest = write_log(tmp_path, SEQUENCES[3:], name="rest.tsv")
        rest_state = tmp_path / "rest.state"
        assert (
            main(
                [
                    "mine",
                    str(rest),
                    "--stream",
                    "--state-out",
                    str(rest_state),
                    "--format",
                    "edges",
                ]
            )
            == 0
        )
        capsys.readouterr()
        merged = mine_edges(
            capsys,
            [
                "merge-states",
                str(checkpoint),
                str(rest_state),
                "--format",
                "edges",
            ],
        )
        whole = write_log(tmp_path, SEQUENCES, name="whole.tsv")
        batch = mine_edges(
            capsys, ["mine", str(whole), "--format", "edges"]
        )
        assert merged == batch
