"""Tests for the incremental (streaming) miner."""

import pytest

from repro.core.cyclic import mine_cyclic
from repro.core.general_dag import MiningTrace, mine_general_dag
from repro.core.incremental import (
    MODE_CYCLIC,
    MODE_GENERAL,
    IncrementalMiner,
)
from repro.datasets.examples import example7_log, example8_log
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.errors import EmptyLogError
from repro.logs.event_log import EventLog


class TestStreamingEquivalence:
    def test_matches_batch_on_example7(self):
        log = example7_log()
        miner = IncrementalMiner()
        for execution in log:
            miner.add(execution)
        assert miner.graph().edge_set() == mine_general_dag(
            log
        ).edge_set()

    def test_matches_batch_at_every_prefix(self):
        log = synthetic_dataset(
            SyntheticConfig(n_vertices=10, n_executions=40, seed=2)
        ).log
        miner = IncrementalMiner()
        for i, execution in enumerate(log, start=1):
            miner.add(execution)
            prefix = EventLog(log.executions[:i])
            assert miner.graph().edge_set() == mine_general_dag(
                prefix
            ).edge_set(), f"prefix {i}"

    def test_cyclic_mode_matches_algorithm3(self):
        log = example8_log()
        miner = IncrementalMiner(mode=MODE_CYCLIC)
        miner.add_log(log)
        assert miner.graph().edge_set() == mine_cyclic(log).edge_set()

    def test_threshold_applied(self):
        sequences = ["ABCDE"] * 50 + ["ADCBE"] * 2
        miner = IncrementalMiner(threshold=5)
        for seq in sequences:
            miner.add_sequence(seq)
        graph = miner.graph()
        assert graph.has_edge("B", "C")
        assert graph.has_edge("C", "D")


class TestStreamingBehaviour:
    def test_empty_miner_rejects_query(self):
        with pytest.raises(EmptyLogError):
            IncrementalMiner().graph()

    def test_execution_count(self):
        miner = IncrementalMiner()
        miner.add_sequence("AB")
        miner.add_sequence("AB")
        assert miner.execution_count == 2

    def test_graph_returns_copies(self):
        miner = IncrementalMiner()
        miner.add_sequence("ABC")
        first = miner.graph()
        first.add_edge("C", "A")
        assert not miner.graph().has_edge("C", "A")

    def test_cached_between_ingests(self):
        miner = IncrementalMiner()
        miner.add_sequence("ABC")
        g1 = miner.graph()
        g2 = miner.graph()  # cached path
        assert g1.edge_set() == g2.edge_set()
        miner.add_sequence("ACB")
        g3 = miner.graph()
        assert not g3.has_edge("B", "C")

    def test_stability_counter(self):
        miner = IncrementalMiner()
        for _ in range(5):
            miner.add_sequence("ABC")
            miner.graph()
        # Four consecutive unchanged materializations after the first.
        assert miner.stability() == 4
        assert miner.has_converged(window=3)
        miner.add_sequence("ACB")
        miner.graph()
        assert miner.stability() == 0

    def test_trace_passthrough(self):
        miner = IncrementalMiner()
        miner.add_log(example7_log())
        trace = MiningTrace()
        miner.graph(trace=trace)
        assert trace.edges_after_step2 > 0

    def test_reset(self):
        miner = IncrementalMiner()
        miner.add_sequence("AB")
        miner.reset()
        assert miner.execution_count == 0
        with pytest.raises(EmptyLogError):
            miner.graph()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IncrementalMiner(mode="magic")
        with pytest.raises(ValueError):
            IncrementalMiner(threshold=-1)

    def test_modes_exported(self):
        assert MODE_GENERAL == "general-dag"
        assert MODE_CYCLIC == "cyclic"
