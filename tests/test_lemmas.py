"""Property tests for the paper's lemmas (Section 3).

* **Lemma 1** — if B depends on A then B starts after A terminates in
  every execution (all-activities setting).
* **Lemma 2** — graphs with the same transitive closure are consistent
  with the same executions when every activity appears in each.
* **Lemma 3** — a dependency graph for an all-activities log is
  conformal.
* **Theorem 4** — Algorithm 1's output is the unique minimal conformal
  graph: any conformal graph has at least as many edges.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conformance import check_conformance, is_consistent
from repro.core.dependency import dependency_relation
from repro.core.special_dag import mine_special_dag
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_closure
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution


@st.composite
def complete_logs(draw, max_interior=5, max_executions=6):
    """Logs whose executions all contain the same activities once."""
    n = draw(st.integers(min_value=0, max_value=max_interior))
    interior = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=9999))
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        middle = list(interior)
        rng.shuffle(middle)
        sequences.append(["S", *middle, "Z"])
    return EventLog.from_sequences(sequences)


class TestLemma1:
    @given(complete_logs())
    @settings(max_examples=40, deadline=None)
    def test_dependence_implies_universal_order(self, log):
        relation = dependency_relation(log)
        for execution in log:
            position = {
                activity: index
                for index, activity in enumerate(execution.sequence)
            }
            for prerequisite, dependent in relation.depends:
                assert position[prerequisite] < position[dependent], (
                    prerequisite,
                    dependent,
                    execution.sequence,
                )


class TestLemma2:
    @given(complete_logs())
    @settings(max_examples=30, deadline=None)
    def test_closure_equal_graphs_admit_same_executions(self, log):
        mined = mine_special_dag(log)
        # Build a closure-equal variant by materializing the closure
        # itself (the densest graph with the same dependencies).
        closure = transitive_closure(mined)
        dense = DiGraph(nodes=mined.nodes())
        for a, b in closure.edges():
            if a != b:
                dense.add_edge(a, b)
        source = log[0].first_activity
        sink = log[0].last_activity
        activities = sorted(log.activities())
        rng = random.Random(17)
        # Probe with the log's own executions plus random permutations.
        probes = [list(e.sequence) for e in log]
        for _ in range(10):
            middle = [
                a for a in activities if a not in (source, sink)
            ]
            rng.shuffle(middle)
            probes.append([source, *middle, sink])
        for sequence in probes:
            execution = Execution.from_sequence(sequence)
            verdict_reduced = (
                is_consistent(mined, execution, source, sink) is None
            )
            verdict_dense = (
                is_consistent(dense, execution, source, sink) is None
            )
            assert verdict_reduced == verdict_dense, sequence


class TestLemma3AndTheorem4:
    @given(complete_logs())
    @settings(max_examples=30, deadline=None)
    def test_dependency_graph_is_conformal(self, log):
        relation = dependency_relation(log)
        report = check_conformance(relation.minimal_graph(), log)
        assert report.is_conformal, report.violations()

    @given(complete_logs())
    @settings(max_examples=25, deadline=None)
    def test_no_conformal_graph_is_smaller(self, log):
        mined = mine_special_dag(log)
        # Removing any single edge breaks conformance: the mined graph
        # is the transitive reduction of the dependency order, so every
        # edge carries a dependency no other path covers.
        for edge in list(mined.edges()):
            weakened = mined.copy()
            weakened.remove_edge(*edge)
            report = check_conformance(weakened, log)
            assert not report.is_conformal, edge
