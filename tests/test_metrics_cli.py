"""CLI tests for ``--metrics-out`` / ``--metrics-format`` on mine/lint."""

import json

import pytest

from repro.cli import main
from repro.obs import parse_jsonl, parse_prometheus

EXAMPLE_LOG = "examples/logs/upload_and_notify.log"
EXAMPLE_MODEL = "examples/models/upload_and_notify.pm"


@pytest.fixture
def mine_manifest(tmp_path, capsys):
    """Run ``mine --metrics-out --profile`` once; return (records, stderr)."""
    out = tmp_path / "run.jsonl"
    code = main(
        [
            "mine", EXAMPLE_LOG,
            "--profile",
            "--metrics-out", str(out),
            "--metrics-format", "jsonl",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    return parse_jsonl(out.read_text()), captured.err


class TestMineMetrics:
    def test_manifest_header_identity(self, mine_manifest):
        records, _ = mine_manifest
        (header,) = records["manifest"]
        assert header["command"] == "mine"
        assert header["input_path"] == EXAMPLE_LOG
        assert header["input_digest"].startswith("sha256:")
        assert header["config"]["resolved_algorithm"] == "general-dag"

    def test_spans_cover_every_stage(self, mine_manifest):
        records, _ = mine_manifest
        names = [record["name"] for record in records["span"]]
        for stage in (
            "ingest",
            "mine",
            "mine/prepare",
            "mine/step2_counters",
            "mine/step3_filters",
            "mine/step4_scc",
            "mine/step5_reduce",
            "mine/step6_assemble",
            "lint",
        ):
            assert stage in names, f"missing span {stage}"

    def test_counters_present(self, mine_manifest):
        records, _ = mine_manifest
        by_name = {
            record["name"]: record for record in records["metric"]
            if not record.get("labels")
        }
        assert by_name["repro_mine_executions_total"]["value"] == 60
        assert by_name["repro_mine_pairs_extracted_total"]["value"] > 0
        assert "repro_ingest_executions_accepted_total" in by_name

    def test_manifest_stages_match_profile_output(self, mine_manifest):
        """--metrics-out and --profile must tell one coherent story."""
        records, stderr = mine_manifest
        profile_stages = {
            line.strip().split(":")[0]
            for line in stderr.splitlines()
            if line.startswith("  ") and " ms" in line
        }
        profile_stages.discard("executions")
        manifest_stages = {
            record["name"].removeprefix("mine/")
            for record in records["span"]
            if record["name"].startswith("mine/")
        }
        assert profile_stages <= manifest_stages

    def test_prom_output_parses(self, tmp_path, capsys):
        out = tmp_path / "run.prom"
        code = main(
            [
                "mine", EXAMPLE_LOG,
                "--metrics-out", str(out),
                "--metrics-format", "prom",
            ]
        )
        capsys.readouterr()
        assert code == 0
        samples = parse_prometheus(out.read_text())
        assert samples[("repro_mine_executions_total", ())] == 60
        stages = {
            dict(labels)["stage"]
            for name, labels in samples
            if name == "repro_span_seconds"
        }
        assert "mine/step5_reduce" in stages

    def test_text_output_is_human_table(self, tmp_path, capsys):
        out = tmp_path / "run.txt"
        assert main(
            [
                "mine", EXAMPLE_LOG,
                "--metrics-out", str(out),
                "--metrics-format", "text",
            ]
        ) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "run: mine" in text
        assert "mine/step6_assemble" in text

    def test_no_metrics_flag_writes_nothing(self, tmp_path, capsys):
        assert main(["mine", EXAMPLE_LOG]) == 0
        err = capsys.readouterr().err
        assert "metrics:" not in err
        assert list(tmp_path.iterdir()) == []

    def test_digest_matches_input_bytes(self, mine_manifest):
        import hashlib

        records, _ = mine_manifest
        (header,) = records["manifest"]
        digest = hashlib.sha256(
            open(EXAMPLE_LOG, "rb").read()
        ).hexdigest()
        assert header["input_digest"] == f"sha256:{digest}"


class TestLintMetrics:
    def test_lint_writes_manifest(self, tmp_path, capsys):
        out = tmp_path / "lint.jsonl"
        code = main(
            [
                "lint", EXAMPLE_MODEL,
                "--metrics-out", str(out),
            ]
        )
        capsys.readouterr()
        assert code == 0
        records = parse_jsonl(out.read_text())
        (header,) = records["manifest"]
        assert header["command"] == "lint"
        assert header["input_path"] == EXAMPLE_MODEL
        names = [record["name"] for record in records["span"]]
        assert "load_model" in names
        assert "lint" in names
        severities = {
            record["labels"]["severity"]
            for record in records["metric"]
            if record["name"] == "repro_lint_findings_total"
        }
        assert {"error", "warning", "info"} <= severities

    def test_jsonl_lines_are_valid_json(self, tmp_path, capsys):
        out = tmp_path / "lint.jsonl"
        assert main(
            ["lint", EXAMPLE_MODEL, "--metrics-out", str(out)]
        ) == 0
        capsys.readouterr()
        for line in out.read_text().splitlines():
            json.loads(line)


class TestMetricsOutFailFast:
    """An unwritable ``--metrics-out`` fails *before* any mining work.

    The failure mode this guards: a long mine that completes and only
    then discovers the manifest cannot be written.  The CLI now probes
    the path up front and exits 2 (usage error) immediately.
    """

    def run_mine(self, capsys, metrics_out):
        code = main(
            ["mine", EXAMPLE_LOG, "--metrics-out", str(metrics_out)]
        )
        return code, capsys.readouterr()

    def test_missing_parent_directory_exits_2(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "run.jsonl"
        code, captured = self.run_mine(capsys, target)
        assert code == 2
        assert "--metrics-out" in captured.err
        assert captured.out == ""

    def test_directory_target_exits_2(self, tmp_path, capsys):
        code, captured = self.run_mine(capsys, tmp_path)
        assert code == 2
        assert "--metrics-out" in captured.err

    def test_parent_is_a_file_exits_2(self, tmp_path, capsys):
        parent = tmp_path / "occupied"
        parent.write_text("not a directory\n")
        code, captured = self.run_mine(capsys, parent / "run.jsonl")
        assert code == 2
        assert "--metrics-out" in captured.err

    def test_unwritable_parent_exits_2(self, tmp_path, capsys):
        import os

        if os.geteuid() == 0:
            pytest.skip("root ignores directory write bits")
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o555)
        try:
            code, captured = self.run_mine(
                capsys, locked / "run.jsonl"
            )
        finally:
            locked.chmod(0o755)
        assert code == 2
        assert "--metrics-out" in captured.err

    def test_writable_path_still_mines(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        code, captured = self.run_mine(capsys, out)
        assert code == 0
        assert out.exists()

    def test_serve_validates_metrics_out_too(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                str(tmp_path / "data"),
                "--metrics-out",
                str(tmp_path / "missing" / "m.jsonl"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "--metrics-out" in captured.err
