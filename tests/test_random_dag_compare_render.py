"""Unit tests for random_dag, compare and render."""

import pytest

from repro.graphs.compare import (
    VERDICT_DIVERGED,
    VERDICT_EQUIVALENT,
    VERDICT_EXACT,
    VERDICT_SUBGRAPH,
    VERDICT_SUPERGRAPH,
    compare_edges,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.random_dag import (
    END,
    START,
    RandomDagConfig,
    default_activity_names,
    paper_edge_probability,
    random_dag,
    random_process_dag,
)
from repro.graphs.render import edge_list_text, to_ascii, to_dot
from repro.graphs.traversal import ancestors, descendants, is_acyclic


class TestRandomDag:
    def test_is_acyclic(self):
        for seed in range(5):
            g = random_process_dag(12, seed=seed)
            assert is_acyclic(g)

    def test_single_source_and_sink(self):
        g = random_process_dag(15, seed=3)
        assert g.sources() == [START]
        assert g.sinks() == [END]

    def test_all_activities_reachable_and_coreachable(self):
        g = random_process_dag(20, seed=7)
        nodes = set(g.nodes())
        assert descendants(g, START) | {START} == nodes
        assert ancestors(g, END) | {END} == nodes

    def test_vertex_count_convention(self):
        g = random_process_dag(10, seed=0)
        assert g.node_count == 10

    def test_deterministic_under_seed(self):
        g1 = random_process_dag(10, seed=42)
        g2 = random_process_dag(10, seed=42)
        assert g1 == g2

    def test_different_seeds_differ(self):
        g1 = random_process_dag(20, seed=1)
        g2 = random_process_dag(20, seed=2)
        assert g1 != g2

    def test_edge_probability_extremes(self):
        sparse = random_dag(
            RandomDagConfig(n_activities=8, edge_probability=0.0, seed=0)
        )
        dense = random_dag(
            RandomDagConfig(n_activities=8, edge_probability=1.0, seed=0)
        )
        # With p=0 every activity hangs off START and into END.
        assert sparse.edge_count == 16
        # With p=1 all 28 interior pairs exist plus START/END splices.
        assert dense.edge_count == 28 + 2

    def test_paper_density_magnitudes(self):
        # Table 2 reports 24/224/1058/4569 edges at 10/25/50/100 vertices;
        # generated graphs should land within a factor of ~1.5.
        expectations = {10: 24, 25: 224, 50: 1058, 100: 4569}
        for vertices, expected in expectations.items():
            g = random_process_dag(vertices, seed=1)
            assert expected / 1.6 <= g.edge_count <= expected * 1.6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomDagConfig(n_activities=0)
        with pytest.raises(ValueError):
            RandomDagConfig(n_activities=3, edge_probability=1.5)
        with pytest.raises(ValueError):
            RandomDagConfig(n_activities=3, activity_names=["X"])
        with pytest.raises(ValueError):
            random_process_dag(1)

    def test_custom_activity_names(self):
        g = random_dag(
            RandomDagConfig(n_activities=3, activity_names=["X", "Y", "Z"])
        )
        assert set(g.nodes()) == {START, END, "X", "Y", "Z"}

    def test_default_activity_names_padded(self):
        names = default_activity_names(3)
        assert names == ["T01", "T02", "T03"]
        assert len(default_activity_names(150)) == 150

    def test_paper_edge_probability_bounds(self):
        assert paper_edge_probability(1) == 0.0
        assert 0.0 < paper_edge_probability(10) <= 1.0


class TestCompare:
    def test_exact(self):
        g = DiGraph(edges=[("A", "B")])
        result = compare_edges(g, g.copy())
        assert result.verdict == VERDICT_EXACT
        assert result.is_exact
        assert result.precision == result.recall == result.f1 == 1.0

    def test_supergraph(self):
        truth = DiGraph(edges=[("A", "B"), ("B", "C")])
        mined = DiGraph(edges=[("A", "B"), ("B", "C"), ("C", "D")])
        result = compare_edges(truth, mined)
        assert result.verdict == VERDICT_SUPERGRAPH
        assert result.extra == {("C", "D")}
        assert result.recall == 1.0
        assert result.precision == pytest.approx(2 / 3)

    def test_subgraph(self):
        truth = DiGraph(edges=[("A", "B"), ("B", "C")])
        mined = DiGraph(nodes=["A", "B", "C"], edges=[("A", "B")])
        result = compare_edges(truth, mined)
        assert result.verdict == VERDICT_SUBGRAPH
        assert result.missed == {("B", "C")}

    def test_closure_equivalent(self):
        truth = DiGraph(edges=[("A", "B"), ("B", "C")])
        mined = DiGraph(edges=[("A", "B"), ("B", "C"), ("A", "C")])
        result = compare_edges(truth, mined)
        assert result.verdict == VERDICT_EQUIVALENT

    def test_diverged(self):
        truth = DiGraph(nodes=["A", "B", "C"], edges=[("A", "B")])
        mined = DiGraph(nodes=["A", "B", "C"], edges=[("B", "C")])
        result = compare_edges(truth, mined)
        assert result.verdict == VERDICT_DIVERGED

    def test_counts(self):
        truth = DiGraph(edges=[("A", "B"), ("B", "C"), ("C", "D")])
        mined = DiGraph(edges=[("A", "B"), ("X", "Y")])
        result = compare_edges(truth, mined)
        assert result.original_edge_count == 3
        assert result.mined_edge_count == 2

    def test_empty_graphs(self):
        result = compare_edges(DiGraph(), DiGraph())
        assert result.is_exact
        assert result.precision == 1.0
        assert result.recall == 1.0


class TestRender:
    def test_ascii_lists_all_nodes(self):
        g = DiGraph(edges=[("B", "A"), ("B", "C")])
        text = to_ascii(g)
        assert "A ->" in text
        assert "B -> A, C" in text

    def test_dot_structure(self):
        g = DiGraph(edges=[("A", "B")])
        dot = to_dot(g, name="my graph")
        assert dot.startswith("digraph my_graph {")
        assert dot.rstrip().endswith("}")
        assert 'label="A"' in dot
        assert "->" in dot

    def test_dot_edge_labels_and_escaping(self):
        g = DiGraph(edges=[("A", "B")])
        dot = to_dot(g, edge_labels={("A", "B"): 'o[0] > "x"'})
        assert '\\"x\\"' in dot

    def test_edge_list_text(self):
        g = DiGraph(edges=[("B", "C"), ("A", "B")])
        assert edge_list_text(g) == "A -> B\nB -> C"
