"""Property-based tests for I/O layers: codec, model files, streaming.

Complements ``test_properties.py`` (graph/mining invariants) with
round-trip and robustness properties on the serialization surfaces.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.general_dag import mine_general_dag
from repro.core.incremental import IncrementalMiner
from repro.errors import LogFormatError, ReproError
from repro.logs.codec import log_from_text, log_to_text, parse_record
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.model.builder import ProcessBuilder
from repro.model.serialize import model_from_text, model_to_text

ACTIVITY_NAMES = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7E
    ),
    min_size=1,
    max_size=8,
)


@st.composite
def random_logs(draw):
    """Random logs with optional output vectors."""
    n_activities = draw(st.integers(min_value=1, max_value=6))
    alphabet = [f"T{i}" for i in range(n_activities)]
    n_executions = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=9999))
    rng = random.Random(seed)
    executions = []
    for index in range(n_executions):
        length = rng.randint(1, 6)
        sequence = [rng.choice(alphabet) for _ in range(length)]
        outputs = {
            activity: (
                float(rng.randint(0, 100)),
                float(rng.randint(0, 100)),
            )
            for activity in set(sequence)
            if rng.random() < 0.5
        }
        executions.append(
            Execution.from_sequence(
                sequence,
                execution_id=f"e{index}",
                outputs=outputs,
            )
        )
    return EventLog(executions, process_name="prop")


class TestCodecProperties:
    @given(random_logs())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_everything_observable(self, log):
        parsed = log_from_text(log_to_text(log))
        assert parsed.process_name == log.process_name
        assert parsed.sequences() == log.sequences()
        for original, reparsed in zip(log, parsed):
            assert original.execution_id == reparsed.execution_id
            for activity in original.activities:
                assert original.outputs_of(activity) == (
                    reparsed.outputs_of(activity)
                )

    @given(random_logs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_is_idempotent(self, log):
        once = log_to_text(log)
        twice = log_to_text(log_from_text(once))
        assert once == twice

    @given(random_logs())
    @settings(max_examples=30, deadline=None)
    def test_mining_commutes_with_roundtrip(self, log):
        direct = mine_general_dag(log)
        roundtripped = mine_general_dag(log_from_text(log_to_text(log)))
        assert direct.edge_set() == roundtripped.edge_set()

    @given(st.text(max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_lines_never_crash(self, line):
        """Fuzz: any single line either parses or raises LogFormatError."""
        if not line.strip() or line.strip().startswith("#"):
            return
        try:
            parse_record(line)
        except LogFormatError:
            pass

    @given(st.text(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_files_never_crash(self, text):
        """Fuzz: any file content either parses or raises a ReproError."""
        try:
            log_from_text(text)
        except ReproError:
            pass


class TestModelFileProperties:
    @st.composite
    @staticmethod
    def random_models(draw):
        n = draw(st.integers(min_value=2, max_value=6))
        names = [f"S{i}" for i in range(n)]
        edges = [
            (names[i], names[i + 1]) for i in range(n - 1)
        ]
        extra = draw(st.integers(min_value=0, max_value=3))
        rng = random.Random(draw(st.integers(0, 999)))
        for _ in range(extra):
            i = rng.randrange(n - 1)
            j = rng.randrange(i + 1, n)
            edges.append((names[i], names[j]))
        builder = ProcessBuilder("prop-model")
        for source, target in edges:
            builder.edge(source, target)
        return builder.build()

    @given(random_models())
    @settings(max_examples=40, deadline=None)
    def test_model_roundtrip(self, model):
        parsed = model_from_text(model_to_text(model))
        assert parsed.graph.edge_set() == model.graph.edge_set()
        assert parsed.source == model.source
        assert parsed.sink == model.sink


class TestStreamingProperties:
    @given(random_logs())
    @settings(max_examples=30, deadline=None)
    def test_incremental_equals_batch(self, log):
        miner = IncrementalMiner()
        miner.add_log(log)
        assert miner.graph().edge_set() == mine_general_dag(
            log
        ).edge_set()

    @given(random_logs(), random_logs())
    @settings(max_examples=20, deadline=None)
    def test_streaming_order_of_ingest_is_irrelevant(self, log_a, log_b):
        forward = IncrementalMiner()
        forward.add_log(log_a)
        forward.add_log(log_b)
        backward = IncrementalMiner()
        backward.add_log(log_b)
        backward.add_log(log_a)
        assert forward.graph().edge_set() == backward.graph().edge_set()
