"""Tests for model-vs-log diffing and model evolution."""

import pytest

from repro.analysis.diffing import diff_against_log
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.logs.event_log import EventLog
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_gt
from repro.model.evolution import evolve_model
from repro.model.validate import validate_process


def deployed_model():
    """The 'purported' model: A -> B -> D with an optional C branch."""
    return (
        ProcessBuilder("deployed")
        .edge("A", "B")
        .edge("A", "C", condition=attr_gt(0, 50))
        .edge("B", "D")
        .edge("C", "D")
        .build()
    )


class TestDiffAgainstLog:
    def test_agreeing_log_is_clean(self):
        model = deployed_model()
        log = WorkflowSimulator(
            model, SimulationConfig(seed=3)
        ).run_log(150)
        diff = diff_against_log(model, log)
        assert diff.is_clean, diff.report()
        assert "no differences" in diff.report()

    def test_unmodelled_activity_detected(self):
        model = deployed_model()
        # Reality inserted a review step between B and D.
        log = EventLog.from_sequences(["ABXD", "ACD", "ABXCD"])
        diff = diff_against_log(model, log)
        assert "X" in diff.unmodelled_activities
        assert not diff.is_clean
        assert "X" in diff.report()

    def test_unperformed_activity_detected(self):
        model = deployed_model()
        log = EventLog.from_sequences(["ABD"] * 10)
        diff = diff_against_log(model, log)
        assert "C" in diff.unperformed_activities

    def test_contradicted_dependency_detected(self):
        # The model mandates B before C; the log runs them both ways.
        model = (
            ProcessBuilder("rigid")
            .chain("A", "B", "C", "D")
            .build()
        )
        log = EventLog.from_sequences(["ABCD", "ACBD"])
        diff = diff_against_log(model, log)
        assert ("B", "C") in diff.contradicted_dependencies
        assert diff.rejected_executions  # ACBD violates the chain

    def test_unexplained_dependency_detected(self):
        # The log always runs B before C; the model says parallel.
        model = (
            ProcessBuilder("parallel")
            .edge("A", "B")
            .edge("A", "C")
            .edge("B", "D")
            .edge("C", "D")
            .build()
        )
        log = EventLog.from_sequences(["ABCD"] * 10)
        diff = diff_against_log(model, log)
        assert ("B", "C") in diff.unexplained_dependencies

    def test_report_lists_rejections_capped(self):
        model = (
            ProcessBuilder("tiny").chain("A", "B").build()
        )
        log = EventLog.from_sequences(["AXB"] * 15)
        diff = diff_against_log(model, log)
        report = diff.report()
        assert "and 5 more" in report

    def test_premined_graph_accepted(self):
        from repro.core.general_dag import mine_general_dag

        model = deployed_model()
        log = EventLog.from_sequences(["ABD", "ACD", "ABCD", "ACBD"])
        mined = mine_general_dag(log)
        diff = diff_against_log(model, log, mined=mined)
        assert diff.mined.edge_set() == mined.edge_set()


class TestEvolveModel:
    def test_confirming_log_changes_nothing(self):
        model = deployed_model()
        log = WorkflowSimulator(
            model, SimulationConfig(seed=3)
        ).run_log(150)
        result = evolve_model(model, log)
        assert not result.changed
        assert result.model.graph.edge_set() == model.graph.edge_set()
        assert "confirms" in result.summary()

    def test_new_activity_incorporated(self):
        model = deployed_model()
        log = EventLog.from_sequences(
            ["ABXD", "ABXD", "ACD", "ABXCD", "ACBXD"]
        )
        result = evolve_model(model, log)
        assert "X" in result.added_activities
        evolved = result.model
        assert "X" in evolved.activity_names
        assert evolved.has_edge("B", "X")
        assert evolved.has_edge("X", "D")
        assert validate_process(evolved).is_valid
        assert "added activities" in result.summary()

    def test_contradicted_edge_removed(self):
        model = ProcessBuilder("rigid").chain("A", "B", "C", "D").build()
        log = EventLog.from_sequences(["ABCD", "ACBD"] * 5)
        result = evolve_model(model, log)
        assert ("B", "C") in result.removed_edges
        assert not result.model.has_edge("B", "C")
        # B and C become parallel: the evolved model must admit both
        # orders.
        from repro.core.conformance import is_consistent
        from repro.logs.execution import Execution

        graph = result.model.graph
        for trace in ("ABCD", "ACBD"):
            execution = Execution.from_sequence(trace)
            assert is_consistent(graph, execution, "A", "D") is None

    def test_unexercised_edge_kept_by_default(self):
        model = deployed_model()
        log = EventLog.from_sequences(["ABD"] * 20)
        result = evolve_model(model, log)
        assert result.model.has_edge("A", "C")

    def test_prune_unobserved(self):
        # C runs but the C -> D edge is never *needed* in this log
        # shape; pruning only applies to edges between performed
        # activities, so craft a log where B -> D goes unused.
        model = deployed_model()
        log = EventLog.from_sequences(["ABCD"] * 10)
        result = evolve_model(model, log, prune_unobserved=True)
        # With B always before C and C before D, the mined graph chains
        # A-B-C-D; the direct B->D edge is unused and pruned.
        assert not result.model.has_edge("B", "D")

    def test_conditions_carried_over(self):
        model = deployed_model()
        log = WorkflowSimulator(
            model, SimulationConfig(seed=7)
        ).run_log(100)
        result = evolve_model(model, log)
        assert result.model.condition("A", "C") == attr_gt(0, 50)

    def test_learn_conditions_for_added_edges(self):
        # Deployed model lacks the conditional C branch entirely.
        stale = (
            ProcessBuilder("stale")
            .edge("A", "B")
            .edge("B", "D")
            .build()
        )
        rich = (
            ProcessBuilder("rich")
            .edge("A", "B")
            .edge("A", "C", condition=attr_gt(0, 50))
            .edge("B", "D")
            .edge("C", "D")
            .build()
        )
        log = WorkflowSimulator(
            rich, SimulationConfig(seed=9)
        ).run_log(200)
        result = evolve_model(stale, log, learn_conditions=True)
        assert ("A", "C") in result.added_edges
        learned = result.model.condition("A", "C")
        # The learned threshold approximates the truth at 50.
        assert learned.evaluate((80.0, 0.0))
        assert not learned.evaluate((20.0, 0.0))

    def test_version_name(self):
        model = deployed_model()
        log = EventLog.from_sequences(["ABD", "ACD", "ABCD", "ACBD"])
        assert evolve_model(model, log).model.name == "deployed-v2"
        named = evolve_model(model, log, version_name="deployed-2024")
        assert named.model.name == "deployed-2024"

    def test_empty_log_rejected(self):
        from repro.errors import EmptyLogError

        with pytest.raises(EmptyLogError):
            evolve_model(deployed_model(), EventLog())
