"""Tests for the declared metric catalogue (``repro.obs.registry``)."""

import re
from pathlib import Path

import pytest

from repro.obs.registry import (
    DECLARED_METRICS,
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    declared_metric_names,
    get_metric,
    render_metrics_markdown,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCatalogue:
    def test_names_are_unique_and_prefixed(self):
        names = [spec.name for spec in DECLARED_METRICS]
        assert len(names) == len(set(names))
        assert all(name.startswith("repro_") for name in names)

    def test_counters_end_in_total(self):
        for spec in DECLARED_METRICS:
            if spec.kind == KIND_COUNTER:
                assert spec.name.endswith("_total"), spec.name
            else:
                assert spec.kind in (KIND_GAUGE, KIND_HISTOGRAM)

    def test_lookup(self):
        spec = get_metric("repro_mine_edges")
        assert spec.kind == KIND_GAUGE
        assert spec.labels == ("stage",)
        with pytest.raises(KeyError):
            get_metric("repro_unknown")
        assert "repro_mine_edges" in declared_metric_names()

    def test_every_declared_name_is_emitted_in_source(self):
        """Registry ⊆ code: each declaration appears as a literal
        somewhere under src/repro (the inverse of devlint RL301)."""
        source = "\n".join(
            path.read_text(encoding="utf-8")
            for path in sorted((REPO_ROOT / "src").rglob("*.py"))
        )
        missing = [
            spec.name
            for spec in DECLARED_METRICS
            if not re.search(rf"\b{re.escape(spec.name)}\b", source)
        ]
        assert missing == []


class TestGeneratedDocs:
    def test_observability_doc_carries_generated_block(self):
        """docs/OBSERVABILITY.md embeds render_metrics_markdown()
        verbatim between the GENERATED markers — the doc is checked
        against the code, never trusted."""
        text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text(
            encoding="utf-8"
        )
        match = re.search(
            r"<!-- BEGIN GENERATED: metrics-registry -->\n"
            r"(.*?)"
            r"<!-- END GENERATED: metrics-registry -->",
            text,
            re.DOTALL,
        )
        assert match is not None, "generated-block markers missing"
        assert match.group(1) == render_metrics_markdown()

    def test_markdown_has_one_row_per_metric(self):
        rendered = render_metrics_markdown()
        rows = [
            line
            for line in rendered.splitlines()
            if line.startswith("| `repro_")
        ]
        assert len(rows) == len(DECLARED_METRICS)
