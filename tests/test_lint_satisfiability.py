"""Tests of the difference-constraint satisfiability checker.

The checker decides edge-condition satisfiability *exactly* over an
integer box domain, so these tests pin down the tricky cases: strict
vs non-strict integer tightening, parameter-vs-parameter cycles,
domain-boundary effects, ``!=`` splitting, and the clause budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.satisfiability import (
    condition_clauses,
    is_satisfiable,
    is_tautology,
    referenced_indices,
)
from repro.model.activity import OutputSpec
from repro.model.conditions import parse_condition

SPEC = OutputSpec(arity=2, low=0, high=100)


def sat(text, spec=SPEC):
    return is_satisfiable(parse_condition(text), spec)


def taut(text, spec=SPEC):
    return is_tautology(parse_condition(text), spec)


class TestSatisfiability:
    def test_contradictory_constant_bounds(self):
        assert sat("o[0] > 10 and o[0] < 5") is False

    def test_satisfiable_window(self):
        assert sat("o[0] > 10 and o[0] < 12") is True

    def test_integer_tightening_empty_open_interval(self):
        # No integer strictly between 10 and 11.
        assert sat("o[0] > 10 and o[0] < 11") is False

    def test_parameter_cycle_unsatisfiable(self):
        assert sat("o[0] < o[1] and o[1] < o[0]") is False

    def test_parameter_chain_satisfiable(self):
        assert sat("o[0] < o[1] and o[1] <= o[0] + 5") is True

    def test_offset_cycle_with_negative_slack(self):
        # o0 <= o1 - 3 and o1 <= o0 + 2 sums to 0 <= -1.
        assert sat("o[0] <= o[1] - 3 and o[1] <= o[0] + 2") is False

    def test_domain_upper_bound(self):
        assert sat("o[0] > 100") is False
        assert sat("o[0] >= 100") is True

    def test_domain_lower_bound(self):
        assert sat("o[0] < 0") is False
        assert sat("o[0] <= 0") is True

    def test_not_equal_splits(self):
        assert sat("o[0] != 5") is True
        # Domain {0..100} minus one point is non-empty; pin to a point
        # first and it becomes empty.
        assert sat("o[0] == 5 and o[0] != 5") is False

    def test_negation_normal_form(self):
        assert sat("not (o[0] >= 0)") is False
        assert sat("not (o[0] > 10 or o[0] < 5)") is True

    def test_never_and_always(self):
        assert sat("false") is False
        assert sat("true") is True
        assert taut("true") is True
        assert taut("false") is False


class TestTautology:
    def test_full_domain_bound_is_tautology(self):
        assert taut("o[0] >= 0") is True
        assert taut("o[0] <= 100") is True

    def test_wide_offset_comparison_is_tautology(self):
        # Over [0, 100]^2 the gap o0 - o1 is at most 100.
        assert taut("o[0] <= o[1] + 100") is True
        assert taut("o[0] <= o[1] + 99") is False

    def test_excluded_middle_is_tautology(self):
        assert taut("o[0] <= 50 or o[0] > 50") is True

    def test_plain_comparison_is_not_tautology(self):
        assert taut("o[0] > 10") is False


class TestBudgetAndHelpers:
    def test_clause_budget_returns_unknown(self):
        text = " and ".join(
            f"(o[0] == {i} or o[1] == {i})" for i in range(12)
        )
        condition = parse_condition(text)
        assert condition_clauses(condition, max_clauses=16) is None
        assert is_satisfiable(condition, SPEC, max_clauses=16) is None
        assert is_tautology(condition, SPEC, max_clauses=16) is None

    def test_referenced_indices_both_sides(self):
        condition = parse_condition("o[0] < o[3] and o[2] > 7")
        assert referenced_indices(condition) == frozenset({0, 2, 3})

    def test_degenerate_domain(self):
        point = OutputSpec(arity=1, low=5, high=5)
        assert sat("o[0] == 5", point) is True
        assert sat("o[0] != 5", point) is False
        assert taut("o[0] == 5", point) is True


class TestAgainstBruteForce:
    """The checker must agree with exhaustive evaluation on a tiny domain."""

    comparisons = st.sampled_from(
        [
            "o[0] < 2", "o[0] >= 3", "o[0] == 1", "o[0] != 2",
            "o[1] <= 1", "o[1] > 2",
            "o[0] < o[1]", "o[0] >= o[1]", "o[0] == o[1] + 1",
            "o[0] <= o[1] - 2",
        ]
    )

    @st.composite
    def small_conditions(draw, depth=2):  # noqa: B902 - hypothesis style
        if depth == 0 or draw(st.booleans()):
            return draw(TestAgainstBruteForce.comparisons)
        op = draw(st.sampled_from(["and", "or"]))
        left = draw(TestAgainstBruteForce.small_conditions(depth - 1))
        right = draw(TestAgainstBruteForce.small_conditions(depth - 1))
        if draw(st.booleans()):
            return f"not (({left}) {op} ({right}))"
        return f"(({left}) {op} ({right}))"

    @settings(max_examples=120, deadline=None)
    @given(small_conditions())
    def test_matches_exhaustive_enumeration(self, text):
        spec = OutputSpec(arity=2, low=0, high=3)
        condition = parse_condition(text)
        domain = [
            (float(a), float(b))
            for a in range(spec.low, spec.high + 1)
            for b in range(spec.low, spec.high + 1)
        ]
        truth = [condition.evaluate(point) for point in domain]
        assert is_satisfiable(condition, spec) is any(truth)
        assert is_tautology(condition, spec) is all(truth)
