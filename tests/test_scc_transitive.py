"""Unit tests for repro.graphs.scc and repro.graphs.transitive."""

import pytest

from repro.errors import CycleError
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import (
    component_map,
    condensation,
    remove_intra_component_edges,
    strongly_connected_components,
)
from repro.graphs.transitive import (
    closure_equal,
    descendant_masks,
    is_transitively_reduced,
    transitive_closure,
    transitive_reduction,
    transitive_reduction_edges,
)


class TestScc:
    def test_acyclic_graph_has_singleton_components(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        components = strongly_connected_components(g)
        assert sorted(sorted(c) for c in components) == [["A"], ["B"], ["C"]]

    def test_two_cycle(self):
        g = DiGraph(edges=[("A", "B"), ("B", "A"), ("B", "C")])
        components = strongly_connected_components(g)
        assert {frozenset(c) for c in components} == {
            frozenset({"A", "B"}),
            frozenset({"C"}),
        }

    def test_example7_component(self):
        # Example 7's followings graph: C -> D -> E -> C is one SCC.
        g = DiGraph(
            edges=[
                ("A", "B"), ("A", "C"), ("A", "D"), ("A", "E"), ("A", "F"),
                ("B", "C"), ("B", "F"), ("C", "D"), ("C", "F"),
                ("D", "E"), ("D", "F"), ("E", "C"), ("E", "F"),
            ]
        )
        components = {frozenset(c) for c in strongly_connected_components(g)}
        assert frozenset({"C", "D", "E"}) in components

    def test_self_loop_component(self):
        g = DiGraph(edges=[("A", "A"), ("A", "B")])
        assert {frozenset(c) for c in strongly_connected_components(g)} == {
            frozenset({"A"}),
            frozenset({"B"}),
        }

    def test_components_partition_nodes(self):
        g = DiGraph(
            edges=[("A", "B"), ("B", "C"), ("C", "A"), ("C", "D"),
                   ("D", "E"), ("E", "D")]
        )
        components = strongly_connected_components(g)
        all_nodes = [n for c in components for n in c]
        assert sorted(all_nodes) == sorted(g.nodes())
        assert len(all_nodes) == len(set(all_nodes))

    def test_condensation_is_acyclic(self):
        g = DiGraph(
            edges=[("A", "B"), ("B", "A"), ("B", "C"), ("C", "D"),
                   ("D", "C")]
        )
        dag, mapping = condensation(g)
        from repro.graphs.traversal import is_acyclic

        assert is_acyclic(dag)
        assert mapping["A"] == mapping["B"]
        assert mapping["C"] == mapping["D"]
        assert dag.has_edge(mapping["B"], mapping["C"])

    def test_component_map_consistent(self):
        g = DiGraph(edges=[("A", "B"), ("B", "A")])
        mapping = component_map(g)
        assert mapping["A"] == mapping["B"]

    def test_remove_intra_component_edges(self):
        g = DiGraph(
            edges=[("A", "B"), ("B", "C"), ("C", "A"), ("C", "D")]
        )
        removed = remove_intra_component_edges(g)
        assert removed == 3
        assert g.edge_set() == {("C", "D")}

    def test_remove_intra_component_removes_self_loops(self):
        g = DiGraph(edges=[("A", "A"), ("A", "B")])
        remove_intra_component_edges(g)
        assert g.edge_set() == {("A", "B")}


class TestTransitiveClosure:
    def test_chain_closure(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        closure = transitive_closure(g)
        assert closure.edge_set() == {("A", "B"), ("B", "C"), ("A", "C")}

    def test_cyclic_closure_has_self_loops(self):
        g = DiGraph(edges=[("A", "B"), ("B", "A")])
        closure = transitive_closure(g)
        assert closure.has_edge("A", "A")
        assert closure.has_edge("B", "B")
        assert closure.has_edge("A", "B")
        assert closure.has_edge("B", "A")

    def test_closure_of_empty_graph(self):
        assert transitive_closure(DiGraph()).edge_count == 0

    def test_cyclic_closure_reaches_through_cycle(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C"), ("C", "B"), ("C", "D")])
        closure = transitive_closure(g)
        assert closure.has_edge("A", "D")
        assert closure.has_edge("B", "D")

    def test_closure_equal(self):
        reduced = DiGraph(edges=[("A", "B"), ("B", "C")])
        dense = DiGraph(edges=[("A", "B"), ("B", "C"), ("A", "C")])
        assert closure_equal(reduced, dense)
        assert not closure_equal(reduced, DiGraph(edges=[("A", "B")]))

    def test_closure_equal_requires_same_nodes(self):
        g1 = DiGraph(nodes=["A", "B"])
        g2 = DiGraph(nodes=["A", "B", "C"])
        assert not closure_equal(g1, g2)


class TestTransitiveReduction:
    def test_removes_shortcut(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C"), ("A", "C")])
        reduced = transitive_reduction(g)
        assert reduced.edge_set() == {("A", "B"), ("B", "C")}

    def test_keeps_diamond(self):
        g = DiGraph(
            edges=[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
        )
        assert transitive_reduction(g).edge_set() == g.edge_set()

    def test_long_shortcut(self):
        g = DiGraph(
            edges=[("A", "B"), ("B", "C"), ("C", "D"), ("A", "D")]
        )
        reduced = transitive_reduction(g)
        assert ("A", "D") not in reduced.edge_set()
        assert reduced.edge_count == 3

    def test_cycle_raises(self):
        g = DiGraph(edges=[("A", "B"), ("B", "A")])
        with pytest.raises(CycleError):
            transitive_reduction(g)

    def test_reduction_preserves_closure(self):
        g = DiGraph(
            edges=[
                ("A", "B"), ("A", "C"), ("A", "D"), ("A", "E"),
                ("B", "D"), ("B", "E"), ("C", "D"), ("D", "E"),
            ]
        )
        assert closure_equal(g, transitive_reduction(g))

    def test_is_transitively_reduced(self):
        assert is_transitively_reduced(DiGraph(edges=[("A", "B")]))
        assert not is_transitively_reduced(
            DiGraph(edges=[("A", "B"), ("B", "C"), ("A", "C")])
        )

    def test_reduction_keeps_all_nodes(self):
        g = DiGraph(nodes=["X"], edges=[("A", "B"), ("A", "C")])
        reduced = transitive_reduction(g)
        assert set(reduced.nodes()) == {"A", "B", "C", "X"}

    def test_edges_function_matches_graph_function(self):
        g = DiGraph(
            edges=[("A", "B"), ("B", "C"), ("A", "C"), ("C", "D"),
                   ("A", "D")]
        )
        assert transitive_reduction_edges(g) == transitive_reduction(
            g
        ).edge_set()

    def test_descendant_masks(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        index = {n: i for i, n in enumerate(g.nodes())}
        masks = descendant_masks(g)
        assert masks["A"] == (1 << index["B"]) | (1 << index["C"])
        assert masks["C"] == 0
