"""Integration tests: full paper pipelines across subsystem boundaries.

Each test exercises a complete path a user of the library would take:
define/generate → simulate → serialize → parse → mine → validate.
"""


from repro.analysis.metrics import recovery_metrics
from repro.core.conditions import ConditionsMiner
from repro.core.conformance import check_conformance, is_consistent
from repro.core.general_dag import mine_general_dag
from repro.core.miner import ProcessMiner
from repro.core.noise import optimal_threshold
from repro.datasets.examples import (
    graph10,
    graph10_expected_edges,
    graph10_model,
)
from repro.datasets.flowmark import flowmark_dataset
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.graphs.random_dag import END, START
from repro.graphs.transitive import closure_equal
from repro.logs.codec import log_from_text, log_to_text
from repro.logs.noise import NoiseConfig, NoiseInjector


class TestSyntheticEndToEnd:
    def test_generate_serialize_parse_mine(self):
        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=10, n_executions=150, seed=21)
        )
        # Round-trip through the Flowmark-style codec.
        parsed = log_from_text(log_to_text(dataset.log))
        mined = mine_general_dag(parsed)
        metrics = recovery_metrics(dataset.graph, mined, log=parsed)
        # Small graphs: every true edge recovered; any extras are
        # closure-implied (the paper's non-unique-conformal-graph effect).
        assert metrics.recall == 1.0
        assert metrics.verdict in ("exact", "closure-equivalent")

    def test_mined_graph_conformal_with_its_log(self):
        dataset = synthetic_dataset(
            SyntheticConfig(n_vertices=12, n_executions=100, seed=8)
        )
        mined = mine_general_dag(dataset.log)
        report = check_conformance(
            mined, dataset.log, source=START, sink=END
        )
        assert report.is_conformal, report.violations()

    def test_recovery_improves_with_log_size(self):
        f1_scores = []
        for m in (10, 100, 600):
            dataset = synthetic_dataset(
                SyntheticConfig(n_vertices=25, n_executions=m, seed=5)
            )
            mined = mine_general_dag(dataset.log)
            f1_scores.append(
                recovery_metrics(dataset.graph, mined).f1
            )
        assert f1_scores[0] <= f1_scores[1] <= f1_scores[2] + 0.02


class TestGraph10EndToEnd:
    def test_figure7_recovery_from_synthetic_walks(self):
        from repro.datasets.synthetic import generate_executions

        truth = graph10()
        log = generate_executions(truth, 100, seed=5, start="A", end="J")
        mined = mine_general_dag(log)
        # All true edges recovered; the ready-list generator's eviction
        # can strand prefixes, so extras are possible but must be
        # closure-implied (same dependency structure as Graph10).
        assert mined.edge_set() >= graph10_expected_edges()
        assert closure_equal(mined, truth)

    def test_figure7_recovery_from_engine_log(self):
        model = graph10_model()
        simulator = WorkflowSimulator(
            model,
            SimulationConfig(
                agents=3, duration_log_range=(0.1, 10.0), seed=29
            ),
        )
        log = simulator.run_log(100)
        mined = mine_general_dag(log)
        assert mined.edge_set() >= graph10_expected_edges()
        assert closure_equal(mined, model.graph)


class TestFlowmarkEndToEnd:
    def test_table3_pipeline(self):
        dataset = flowmark_dataset("Upload_and_Notify", seed=17)
        # The paper's sanity check: the miner recovers the process.
        result = ProcessMiner().mine(dataset.log)
        assert result.graph.edge_set() == dataset.model.graph.edge_set()
        # And the recovered model is a valid single-source/sink process.
        recovered = result.to_process_model("Upload_and_Notify-mined")
        assert recovered.source == "Start"
        assert recovered.sink == "End"

    def test_mined_model_resimulates_consistently(self):
        # Mine a model, learn its conditions, run it through the engine,
        # and check the new executions are consistent with the original
        # model: the full evolution loop the paper's intro motivates.
        dataset = flowmark_dataset("Pend_Block", seed=23)
        result = ProcessMiner(learn_conditions=True).mine(dataset.log)
        mined_model = result.to_process_model("Pend_Block-mined")
        new_log = WorkflowSimulator(
            mined_model, SimulationConfig(seed=31)
        ).run_log(50)
        original_graph = dataset.model.graph
        for execution in new_log:
            assert (
                is_consistent(original_graph, execution, "Start", "End")
                is None
            ), execution.sequence


class TestNoiseEndToEnd:
    def test_noisy_flowmark_log_still_recovered(self):
        dataset = flowmark_dataset("Local_Swap", executions=200, seed=3)
        eps = 0.05
        noisy = NoiseInjector(
            NoiseConfig(swap_rate=eps, seed=41)
        ).corrupt(dataset.log)
        threshold = optimal_threshold(len(noisy), eps)
        mined = mine_general_dag(noisy, threshold=threshold)
        truth = dataset.model.graph
        assert mined.edge_set() >= truth.edge_set()
        assert closure_equal(mined, truth)

    def test_unthresholded_noisy_mining_degrades(self):
        dataset = flowmark_dataset("Local_Swap", executions=200, seed=3)
        noisy = NoiseInjector(
            NoiseConfig(swap_rate=0.05, seed=41)
        ).corrupt(dataset.log)
        mined = mine_general_dag(noisy)
        truth = dataset.model.graph
        assert not mined.edge_set() >= truth.edge_set()


class TestConditionsEndToEnd:
    def test_pend_block_conditions_partition(self):
        dataset = flowmark_dataset("Pend_Block", executions=300, seed=7)
        graph = mine_general_dag(dataset.log)
        conditions = ConditionsMiner().mine(dataset.log, graph)
        pend = conditions[("Check", "Pend")]
        block = conditions[("Check", "Block")]
        skip = conditions[("Check", "Resume")]
        assert pend.learnable and block.learnable and skip.learnable
        # Pend and Block are mutually exclusive; the learned conditions
        # must reproduce the ground-truth split (<34 vs >=67) with at
        # most a small boundary slack from midpoint thresholds.
        for value in range(0, 101, 1):
            output = (float(value), 0.0)
            pend_vote = pend.condition.evaluate(output)
            block_vote = block.condition.evaluate(output)
            assert not (pend_vote and block_vote), value
            if value <= 32:
                assert pend_vote and not block_vote, value
            if value >= 68:
                assert block_vote and not pend_vote, value
        # Known limitation of Section 7's construction: the training
        # label is "target ran", and Resume (the join) runs in *every*
        # execution, so the skip edge's condition degenerates to Always —
        # edge-taken information is not in the log's presence signal.
        assert skip.positive_fraction == 1.0
        from repro.model.conditions import Always

        assert skip.condition == Always()
