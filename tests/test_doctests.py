"""Run every docstring example in the library as a test.

Documentation that drifts from the code is worse than none; this module
walks the ``repro`` package and executes all doctests, so the examples
in the API docs stay honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    yield "repro"
    package = repro
    for module_info in pkgutil.walk_packages(
        package.__path__, prefix="repro."
    ):
        yield module_info.name


@pytest.mark.parametrize("module_name", sorted(set(_all_modules())))
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
