"""Tests for fault-tolerant ingestion: policies, repair, quarantine,
resource guards, and the CLI wiring."""

import io
import json
import random

import pytest

from repro.cli import main
from repro.core.general_dag import mine_general_dag
from repro.errors import (
    LogError,
    LogFormatError,
    MalformedExecutionError,
    ResourceLimitError,
)
from repro.logs.codec import (
    ingest_log,
    ingest_log_file,
    log_to_text,
    read_log,
)
from repro.logs.event_log import EventLog
from repro.logs.events import end_event, start_event
from repro.logs.ingest import (
    POLICY_REPAIR,
    POLICY_SKIP,
    POLICY_STRICT,
    REASON_BAD_LINE,
    REASON_EMPTY_EXECUTION,
    REASON_MALFORMED_EXECUTION,
    REASON_MIXED_PROCESS,
    IngestLimits,
    Quarantine,
)
from repro.logs.jsonl import (
    ingest_log_jsonl,
    read_log_jsonl,
    record_from_json,
    write_log_jsonl,
)
from repro.logs.repair import (
    REPAIR_DROPPED_DUPLICATE,
    REPAIR_DROPPED_EMPTY_TRACE,
    REPAIR_RESORTED_TIMESTAMPS,
    REPAIR_SYNTHESIZED_START,
    repair_records,
)


def sample_log():
    return EventLog.from_sequences(
        ["ABCE", "ACDBE", "ACDE"], process_name="claims"
    )


def sample_text():
    return log_to_text(sample_log())


def jsonl_line(
    process="p", execution="e1", activity="A", type="START", time=0.0,
    **extra,
):
    payload = {
        "process": process, "execution": execution,
        "activity": activity, "type": type, "time": time,
    }
    payload.update(extra)
    return json.dumps(payload)


class TestStrictPolicyUnchanged:
    def test_strict_is_default_and_fail_fast(self):
        text = sample_text() + "garbage line\n"
        with pytest.raises(LogFormatError):
            read_log(io.StringIO(text))
        with pytest.raises(LogFormatError):
            ingest_log(io.StringIO(text))

    def test_strict_raises_malformed_execution(self):
        text = "p\te1\tA\tEND\t1.0\n"
        with pytest.raises(MalformedExecutionError):
            read_log(io.StringIO(text))

    def test_strict_report_is_clean(self):
        result = ingest_log(io.StringIO(sample_text()))
        assert result.report.clean
        assert result.report.accepted_executions == 3
        assert result.log.sequences() == sample_log().sequences()

    def test_mixed_process_error_carries_line_number_text(self):
        text = "p1\te1\tA\tSTART\t0\np2\te2\tB\tSTART\t1\n"
        with pytest.raises(LogFormatError, match="line 2.*mixes") as info:
            read_log(io.StringIO(text))
        assert info.value.line_number == 2

    def test_mixed_process_error_carries_line_number_jsonl(self):
        lines = "\n".join(
            [jsonl_line(process="p1"), jsonl_line(process="p2")]
        )
        with pytest.raises(LogFormatError, match="line 2.*mixes") as info:
            read_log_jsonl(io.StringIO(lines))
        assert info.value.line_number == 2


class TestSkipPolicy:
    def test_bad_lines_are_quarantined(self):
        text = sample_text()
        lines = text.splitlines()
        lines.insert(2, "this is not a record")
        result = ingest_log(
            io.StringIO("\n".join(lines) + "\n"), policy=POLICY_SKIP
        )
        assert result.report.quarantined_lines == 1
        assert result.report.reasons[REASON_BAD_LINE] == 1
        assert result.report.dropped == 1
        assert not result.report.clean
        [item] = list(result.quarantine)
        assert item.kind == "line"
        assert item.line_number == 3
        assert item.payload == "this is not a record"
        # everything else still loads
        assert result.log.sequences() == sample_log().sequences()

    def test_foreign_process_records_are_quarantined(self):
        lines = sample_text().splitlines()
        lines.insert(4, "intruder\tx1\tZ\tSTART\t0")
        result = ingest_log(
            io.StringIO("\n".join(lines) + "\n"), policy=POLICY_SKIP
        )
        assert result.report.reasons[REASON_MIXED_PROCESS] == 1
        assert result.log.process_name == "claims"
        assert "Z" not in result.log.activities()

    def test_malformed_execution_is_quarantined_wholesale(self):
        text = sample_text() + "claims\tbad\tX\tEND\t9.0\n"
        result = ingest_log(io.StringIO(text), policy=POLICY_SKIP)
        assert result.report.quarantined_executions == 1
        assert result.report.reasons[REASON_MALFORMED_EXECUTION] == 1
        assert result.report.accepted_executions == 3
        items = [i for i in result.quarantine if i.kind == "execution"]
        assert items[0].execution_id == "bad"
        assert items[0].payload[0]["activity"] == "X"

    def test_skip_does_not_repair(self):
        text = sample_text() + "claims\tbad\tX\tEND\t9.0\n"
        result = ingest_log(io.StringIO(text), policy=POLICY_SKIP)
        assert not result.report.repairs

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ingest_log(io.StringIO(""), policy="lenient")


class TestRepairRules:
    def test_synthesize_missing_start(self):
        records = [end_event("e", "A", 2.0)]
        repaired, applied = repair_records(records)
        assert applied[REPAIR_SYNTHESIZED_START] == 1
        assert len(repaired) == 2
        start, end = repaired
        assert start.is_start and start.activity == "A"
        assert start.timestamp < end.timestamp

    def test_synthesized_start_pairs_with_its_end(self):
        # The synthesized START must survive Execution's re-sort and
        # match its END.
        from repro.logs.execution import Execution

        records = [
            start_event("e", "A", 0.0),
            end_event("e", "A", 1.0),
            end_event("e", "B", 2.0),
        ]
        repaired, applied = repair_records(records)
        execution = Execution("e", repaired)
        assert execution.sequence == ["A", "B"]
        assert applied[REPAIR_SYNTHESIZED_START] == 1

    def test_matched_ends_are_not_touched(self):
        records = [
            start_event("e", "A", 0.0),
            end_event("e", "A", 1.0),
        ]
        repaired, applied = repair_records(records)
        assert repaired == records
        assert not applied

    def test_drop_duplicate_events(self):
        records = [
            start_event("e", "A", 0.0),
            start_event("e", "A", 0.0),
            end_event("e", "A", 1.0),
            end_event("e", "A", 1.0),
        ]
        repaired, applied = repair_records(records)
        assert applied[REPAIR_DROPPED_DUPLICATE] == 2
        assert len(repaired) == 2

    def test_duplicate_end_does_not_create_phantom_instance(self):
        # A duplicated END must be deduplicated, not "repaired" into a
        # second instance via a synthesized START.
        records = [
            start_event("e", "A", 0.0),
            end_event("e", "A", 1.0),
            end_event("e", "A", 1.0),
        ]
        repaired, applied = repair_records(records)
        assert applied[REPAIR_DROPPED_DUPLICATE] == 1
        assert applied[REPAIR_SYNTHESIZED_START] == 0
        assert len(repaired) == 2

    def test_resort_non_monotone_records(self):
        records = [
            end_event("e", "A", 1.0),
            start_event("e", "A", 0.0),
        ]
        repaired, applied = repair_records(records)
        assert applied[REPAIR_RESORTED_TIMESTAMPS] == 1
        assert [r.timestamp for r in repaired] == [0.0, 1.0]


class TestRepairPolicy:
    def test_orphan_end_repaired(self):
        text = sample_text() + "claims\tzz\tX\tEND\t9.0\n"
        result = ingest_log(io.StringIO(text), policy=POLICY_REPAIR)
        assert result.report.repairs[REPAIR_SYNTHESIZED_START] == 1
        assert result.report.repaired_executions == 1
        assert result.report.accepted_executions == 4
        assert result.report.quarantined_executions == 0

    def test_empty_trace_dropped_and_quarantined(self):
        # An execution with only a START never completes anything.
        text = sample_text() + "claims\tzz\tX\tSTART\t9.0\n"
        result = ingest_log(io.StringIO(text), policy=POLICY_REPAIR)
        assert result.report.repairs[REPAIR_DROPPED_EMPTY_TRACE] == 1
        assert result.report.reasons[REASON_EMPTY_EXECUTION] == 1
        assert result.report.accepted_executions == 3

    def test_corrupted_log_recovers_clean_graph(self):
        # Acceptance criterion: ~10% injected corruption (bad lines,
        # orphan ENDs, duplicates, shuffled record order) under repair
        # recovers the same graph as the clean log.
        clean = EventLog.from_sequences(
            ["ABCF", "ACDF", "ABDF", "ABCDF"] * 10, process_name="p"
        )
        lines = log_to_text(clean).splitlines()
        rng = random.Random(7)
        dirty = []
        for line in lines:
            roll = rng.random()
            if roll < 0.025:
                dirty.append("%%% corrupt not-a-record %%%")
                dirty.append(line)  # garbage injected alongside
            elif roll < 0.05 and "\tSTART\t" in line:
                continue  # lost START -> orphan END
            elif roll < 0.075:
                dirty.extend([line, line])  # duplicated record
            elif roll < 0.10 and dirty:
                dirty.insert(rng.randrange(len(dirty)), line)  # shuffled
            else:
                dirty.append(line)
        result = ingest_log(
            io.StringIO("\n".join(dirty) + "\n"), policy=POLICY_REPAIR
        )
        assert result.report.repairs  # corruption was actually injected
        assert mine_general_dag(result.log).edge_set() == (
            mine_general_dag(clean).edge_set()
        )

    def test_jsonl_repair_matches_text_repair(self):
        log = sample_log()
        buffer = io.StringIO()
        write_log_jsonl(log, buffer)
        lines = buffer.getvalue().splitlines()
        lines.insert(1, "{not json")
        lines.append(jsonl_line(
            process="claims", execution="zz", activity="X",
            type="END", time=9.0,
        ))
        result = ingest_log_jsonl(
            io.StringIO("\n".join(lines) + "\n"), policy=POLICY_REPAIR
        )
        assert result.report.quarantined_lines == 1
        assert result.report.repairs[REPAIR_SYNTHESIZED_START] == 1


class TestResourceGuards:
    def test_max_executions(self):
        with pytest.raises(ResourceLimitError) as info:
            ingest_log(
                io.StringIO(sample_text()),
                limits=IngestLimits(max_executions=2),
            )
        assert info.value.limit == "max_executions"
        assert info.value.bound == 2

    def test_max_events_per_execution(self):
        with pytest.raises(ResourceLimitError):
            ingest_log(
                io.StringIO(sample_text()),
                limits=IngestLimits(max_events_per_execution=3),
            )

    def test_max_activities(self):
        with pytest.raises(ResourceLimitError):
            ingest_log(
                io.StringIO(sample_text()),
                limits=IngestLimits(max_activities=2),
            )

    def test_guards_fire_under_every_policy(self):
        for policy in (POLICY_STRICT, POLICY_SKIP, POLICY_REPAIR):
            with pytest.raises(ResourceLimitError):
                ingest_log(
                    io.StringIO(sample_text()),
                    policy=policy,
                    limits=IngestLimits(max_executions=1),
                )

    def test_generous_limits_pass(self):
        result = ingest_log(
            io.StringIO(sample_text()),
            limits=IngestLimits(
                max_executions=100,
                max_events_per_execution=100,
                max_activities=100,
            ),
        )
        assert result.report.accepted_executions == 3

    def test_limits_validate(self):
        with pytest.raises(ValueError):
            IngestLimits(max_executions=0)


class TestQuarantineSink:
    def test_dead_letter_file(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        text = sample_text() + "garbage\n"
        with Quarantine(path) as quarantine:
            ingest_log(
                io.StringIO(text),
                policy=POLICY_SKIP,
                quarantine=quarantine,
            )
        payloads = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert len(payloads) == 1
        assert payloads[0]["reason"] == REASON_BAD_LINE
        assert payloads[0]["payload"] == "garbage"

    def test_no_file_when_nothing_quarantined(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        with Quarantine(path) as quarantine:
            ingest_log(
                io.StringIO(sample_text()),
                policy=POLICY_SKIP,
                quarantine=quarantine,
            )
        assert not path.exists()


class TestNonNumericOutputs:
    def test_jsonl_rejects_boolean_output_entries(self):
        line = jsonl_line(type="END", time=1.0, output=[True, 2.0])
        with pytest.raises(LogFormatError, match="output entry"):
            record_from_json(line, 1)

    def test_jsonl_rejects_string_output_entries(self):
        line = jsonl_line(type="END", time=1.0, output=["3.5"])
        with pytest.raises(LogFormatError, match="output entry"):
            record_from_json(line, 1)

    def test_jsonl_rejects_non_finite_output_entries(self):
        line = jsonl_line(type="END", time=1.0, output=[float("nan")])
        with pytest.raises(LogFormatError, match="finite"):
            record_from_json(line, 1)

    def test_jsonl_rejects_boolean_time(self):
        line = jsonl_line(time=True)
        with pytest.raises(LogFormatError, match="time"):
            record_from_json(line, 1)

    def test_text_codec_rejects_non_finite_outputs(self):
        from repro.logs.codec import parse_record

        with pytest.raises(LogFormatError, match="finite"):
            parse_record("p\te\tA\tEND\t1.0\tnan,2.0", 1)
        with pytest.raises(LogFormatError, match="finite"):
            parse_record("p\te\tA\tEND\t1.0\tinf", 1)

    def test_text_codec_rejects_non_finite_timestamp(self):
        from repro.logs.codec import parse_record

        with pytest.raises(LogFormatError, match="finite"):
            parse_record("p\te\tA\tSTART\tnan", 1)

    def test_plain_numbers_still_accepted(self):
        _, record = record_from_json(
            jsonl_line(type="END", time=1.5, output=[1, 2.5]), 1
        )
        assert record.output == (1.0, 2.5)


class TestFuzzOnlyLogErrors:
    """Arbitrary corrupt input must raise LogError subclasses only."""

    PRINTABLE = (
        "abcdefghijklmnopqrstuvwxyz0123456789\t,.{}[]\"':- \\/#"
    )

    def _mutate(self, text, rng):
        mode = rng.randrange(4)
        if mode == 0:  # splice random garbage into the text
            pos = rng.randrange(len(text) + 1)
            junk = "".join(
                rng.choice(self.PRINTABLE)
                for _ in range(rng.randrange(1, 20))
            )
            return text[:pos] + junk + text[pos:]
        if mode == 1:  # delete a random span
            if len(text) < 2:
                return text
            lo = rng.randrange(len(text) - 1)
            hi = min(len(text), lo + rng.randrange(1, 30))
            return text[:lo] + text[hi:]
        if mode == 2:  # truncate
            return text[: rng.randrange(len(text) + 1)]
        shuffled = text.splitlines()  # shuffle lines
        rng.shuffle(shuffled)
        return "\n".join(shuffled) + "\n"

    def test_text_codec_fuzz(self):
        base = sample_text()
        rng = random.Random(42)
        for _ in range(300):
            mutated = self._mutate(base, rng)
            try:
                read_log(io.StringIO(mutated))
            except LogError:
                pass  # LogFormatError / MalformedExecutionError: fine

    def test_jsonl_codec_fuzz(self):
        buffer = io.StringIO()
        write_log_jsonl(sample_log(), buffer)
        base = buffer.getvalue()
        rng = random.Random(43)
        for _ in range(300):
            mutated = self._mutate(base, rng)
            try:
                read_log_jsonl(io.StringIO(mutated))
            except LogError:
                pass

    def test_skip_policy_fuzz_never_raises_format_errors(self):
        # Under skip, only resource/OS errors may escape; corrupt lines
        # and traces must be quarantined, not raised.
        base = sample_text()
        rng = random.Random(44)
        for _ in range(200):
            mutated = self._mutate(base, rng)
            result = ingest_log(io.StringIO(mutated), policy=POLICY_SKIP)
            total = (
                result.report.accepted_executions
                + result.report.quarantined_executions
            )
            assert total >= 0  # and nothing raised


class TestCliRobustMine:
    def _write_dirty(self, tmp_path):
        text = sample_text() + "garbage line\n"
        path = tmp_path / "dirty.tsv"
        path.write_text(text)
        return path

    def test_mine_strict_fails_on_dirty_log(self, tmp_path, capsys):
        path = self._write_dirty(tmp_path)
        assert main(["mine", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_mine_skip_exits_3_and_prints_summary(self, tmp_path, capsys):
        path = self._write_dirty(tmp_path)
        code = main(["mine", str(path), "--on-error", "skip"])
        captured = capsys.readouterr()
        assert code == 3
        assert "ingest: policy=skip" in captured.err
        assert "bad-line=1" in captured.err
        assert "->" in captured.out or "edges" in captured.out

    def test_mine_repair_clean_log_exits_0(self, tmp_path, capsys):
        path = tmp_path / "clean.tsv"
        path.write_text(sample_text())
        assert main(["mine", str(path), "--on-error", "repair"]) == 0

    def test_mine_quarantine_file(self, tmp_path, capsys):
        path = self._write_dirty(tmp_path)
        dead = tmp_path / "dead.jsonl"
        code = main([
            "mine", str(path),
            "--on-error", "skip", "--quarantine", str(dead),
        ])
        capsys.readouterr()
        assert code == 3
        assert json.loads(dead.read_text().splitlines()[0])[
            "reason"
        ] == REASON_BAD_LINE

    def test_mine_limit_flag(self, tmp_path, capsys):
        path = tmp_path / "clean.tsv"
        path.write_text(sample_text())
        code = main(["mine", str(path), "--limit-executions", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "resource limit" in captured.err

    def test_mine_rejects_non_positive_limit(self, tmp_path, capsys):
        path = tmp_path / "clean.tsv"
        path.write_text(sample_text())
        with pytest.raises(SystemExit):
            main(["mine", str(path), "--limit-executions", "0"])
        assert "limit must be >= 1" in capsys.readouterr().err

    def test_mine_jsonl_log(self, tmp_path, capsys):
        path = tmp_path / "log.jsonl"
        buffer = io.StringIO()
        write_log_jsonl(sample_log(), buffer)
        path.write_text(buffer.getvalue() + "{not json\n")
        code = main(["mine", str(path), "--on-error", "skip"])
        captured = capsys.readouterr()
        assert code == 3
        assert "quarantined=1 lines" in captured.err


class TestIngestFileHelpers:
    def test_ingest_log_file_roundtrip(self, tmp_path):
        path = tmp_path / "log.tsv"
        path.write_text(sample_text())
        result = ingest_log_file(path, policy=POLICY_REPAIR)
        assert result.report.clean
        assert len(result.log) == 3


class TestDeadLetterDurability:
    """Crash-safety of the quarantine sink (append mode + torn-tail
    tolerant reader) and the poisoned-chunk round trip."""

    def _item(self, reason, n=1):
        from repro.logs.ingest import QuarantinedItem

        return QuarantinedItem(
            kind="line",
            reason=reason,
            detail=f"record {n}",
            line_number=n,
            payload=f"raw-{n}",
        )

    def test_reopen_appends_after_survivors(self, tmp_path):
        from repro.logs.ingest import REASON_LATE_RECORD, read_dead_letter

        path = tmp_path / "dead.jsonl"
        with Quarantine(path) as quarantine:
            quarantine.add(self._item(REASON_BAD_LINE, 1))
        # A second run (e.g. after a crash + resume) must append, not
        # truncate the first run's records.
        with Quarantine(path) as quarantine:
            quarantine.add(self._item(REASON_LATE_RECORD, 2))
        scan = read_dead_letter(path)
        assert not scan.torn_tail
        assert [item.reason for item in scan.items] == [
            REASON_BAD_LINE,
            REASON_LATE_RECORD,
        ]
        assert [item.line_number for item in scan.items] == [1, 2]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        from repro.logs.ingest import read_dead_letter

        path = tmp_path / "dead.jsonl"
        with Quarantine(path) as quarantine:
            quarantine.add(self._item(REASON_BAD_LINE, 1))
            quarantine.add(self._item(REASON_BAD_LINE, 2))
        # Crash mid-write: the final record lost its tail bytes.
        path.write_bytes(path.read_bytes()[:-10])
        scan = read_dead_letter(path)
        assert scan.torn_tail
        assert [item.line_number for item in scan.items] == [1]

    def test_damage_before_the_tail_raises(self, tmp_path):
        from repro.logs.ingest import read_dead_letter

        path = tmp_path / "dead.jsonl"
        with Quarantine(path) as quarantine:
            for n in (1, 2, 3):
                quarantine.add(self._item(REASON_BAD_LINE, n))
        lines = path.read_bytes().split(b"\n")
        lines[1] = b"NOT JSON"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(LogFormatError):
            read_dead_letter(path)

    def test_poisoned_chunk_round_trip(self, tmp_path):
        from repro.logs.events import end_event, start_event
        from repro.logs.execution import Execution
        from repro.logs.ingest import (
            REASON_POISONED_CHUNK,
            read_dead_letter,
        )

        executions = [
            Execution(
                f"e{i}",
                [
                    start_event(f"e{i}", "A", 1.0),
                    end_event(f"e{i}", "A", 2.0),
                ],
            )
            for i in range(3)
        ]
        path = tmp_path / "dead.jsonl"
        with Quarantine(path) as quarantine:
            count = quarantine.add_poisoned_executions(
                executions, "timeout"
            )
        assert count == 3
        scan = read_dead_letter(path)
        assert [item.reason for item in scan.items] == [
            REASON_POISONED_CHUNK
        ] * 3
        assert [item.execution_id for item in scan.items] == [
            "e0",
            "e1",
            "e2",
        ]
        # The payload is re-processable: activity and both events are
        # preserved as JSON-ready record dicts.
        first = scan.items[0]
        assert first.kind == "execution" and first.detail == "timeout"
        assert [r["activity"] for r in first.payload] == ["A", "A"]
