"""Unit tests for Section 6: noise thresholds and noisy-log mining."""

import math

import pytest

from repro.core.general_dag import MiningTrace, mine_general_dag
from repro.core.noise import (
    binomial_tail,
    expected_noise_pairs,
    optimal_threshold,
    paper_upper_bound_false_dependency,
    paper_upper_bound_false_independence,
    threshold_error_probability,
)
from repro.logs.event_log import EventLog
from repro.logs.noise import NoiseConfig, NoiseInjector


class TestBinomialTail:
    def test_edge_cases(self):
        assert binomial_tail(10, 0, 0.3) == 1.0
        assert binomial_tail(10, 11, 0.3) == 0.0
        assert binomial_tail(10, 10, 1.0) == pytest.approx(1.0)

    def test_matches_direct_sum(self):
        # P[X >= 2], X ~ Bin(3, 0.5) = (3 + 1) / 8.
        assert binomial_tail(3, 2, 0.5) == pytest.approx(0.5)

    def test_monotone_in_k(self):
        values = [binomial_tail(20, k, 0.2) for k in range(21)]
        assert values == sorted(values, reverse=True)


class TestPaperBounds:
    def test_bound_dominates_exact_tail(self):
        # C(m, T) eps^T >= P[X >= T] for X ~ Bin(m, eps).
        for m, t, eps in [(50, 5, 0.05), (100, 10, 0.1), (30, 3, 0.2)]:
            bound = paper_upper_bound_false_independence(m, t, eps)
            exact = binomial_tail(m, t, eps)
            assert bound >= exact - 1e-12

    def test_dependency_bound_dominates(self):
        for m, t in [(50, 10), (100, 40)]:
            bound = paper_upper_bound_false_dependency(m, t)
            exact = binomial_tail(m, m - t, 0.5)
            assert bound >= exact - 1e-12

    def test_bounds_clamped(self):
        assert paper_upper_bound_false_independence(10, 1, 0.4) <= 1.0
        assert paper_upper_bound_false_dependency(10, 9) <= 1.0
        assert paper_upper_bound_false_independence(10, 11, 0.4) == 0.0


class TestOptimalThreshold:
    def test_balance_equation(self):
        # T = m ln2 / (ln2 + ln(1/eps)).
        m, eps = 1000, 0.05
        t = optimal_threshold(m, eps)
        expected = m * math.log(2) / (math.log(2) + math.log(1 / eps))
        assert abs(t - expected) <= 0.5

    def test_noise_free_threshold_is_one(self):
        assert optimal_threshold(500, 0.0) == 1

    def test_threshold_grows_with_noise(self):
        thresholds = [
            optimal_threshold(1000, eps) for eps in (0.01, 0.05, 0.1, 0.3)
        ]
        assert thresholds == sorted(thresholds)

    def test_threshold_above_expected_noise(self):
        # "Clearly T must be larger than eps * m" — holds for eps < 1/3
        # where the balance solution exceeds the mean.
        for eps in (0.01, 0.05, 0.1, 0.2):
            m = 1000
            assert optimal_threshold(m, eps) > expected_noise_pairs(m, eps)

    def test_threshold_clamped_to_m(self):
        assert 1 <= optimal_threshold(3, 0.4) <= 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            optimal_threshold(0, 0.1)
        with pytest.raises(ValueError):
            optimal_threshold(10, 0.6)
        with pytest.raises(ValueError):
            threshold_error_probability(0, 1, 0.1)


class TestThresholdErrorProbability:
    def test_tradeoff_directions(self):
        # Raising T lowers the false-independence risk and raises the
        # false-dependency risk.
        m, eps = 200, 0.05
        low = threshold_error_probability(m, 5, eps)
        high = threshold_error_probability(m, 60, eps)
        assert high.p_false_independence < low.p_false_independence
        assert high.p_false_dependency >= low.p_false_dependency

    def test_optimal_threshold_has_low_error(self):
        m, eps = 500, 0.05
        t = optimal_threshold(m, eps)
        result = threshold_error_probability(m, t, eps)
        assert result.p_error < 1e-6

    def test_p_error_is_max(self):
        result = threshold_error_probability(100, 20, 0.1)
        assert result.p_error == max(
            result.p_false_independence, result.p_false_dependency
        )


class TestNoisyMining:
    def chain_log(self, m):
        return EventLog.from_sequences(["ABCDE"] * m, process_name="chain")

    CHAIN_EDGES = {("A", "B"), ("B", "C"), ("C", "D"), ("D", "E")}

    def test_example9_scenario(self):
        # Example 9: a 5-chain with k incorrect executions ADCBE.  With T
        # below k the miner concludes B, C, D independent; with T above k
        # the chain is recovered.
        m, k = 100, 4
        sequences = ["ABCDE"] * (m - k) + ["ADCBE"] * k
        log = EventLog.from_sequences(sequences)
        # Threshold too low: reversed pairs survive, killing B-C-D edges.
        loose = mine_general_dag(log, threshold=0)
        assert not loose.has_edge("B", "C")
        assert not loose.has_edge("C", "D")
        # Threshold above k: every chain dependency is recovered.  The
        # noisy executions remain in the log, so step 5 may additionally
        # mark forward shortcuts (paths the chain already implies) — the
        # paper's guarantee is about dependencies, and no backward edge
        # may survive.
        strict = mine_general_dag(log, threshold=k + 1)
        assert strict.edge_set() >= self.CHAIN_EDGES
        forward = {
            (a, b)
            for i, a in enumerate("ABCDE")
            for b in "ABCDE"[i + 1:]
        }
        assert strict.edge_set() <= forward

    def test_swap_noise_recovered_with_optimal_threshold(self):
        m, eps = 300, 0.1
        clean = self.chain_log(m)
        noisy = NoiseInjector(
            NoiseConfig(swap_rate=eps, seed=7)
        ).corrupt(clean)
        t = optimal_threshold(m, eps)
        mined = mine_general_dag(noisy, threshold=t)
        assert mined.edge_set() >= self.CHAIN_EDGES
        forward = {
            (a, b)
            for i, a in enumerate("ABCDE")
            for b in "ABCDE"[i + 1:]
        }
        assert mined.edge_set() <= forward
        # Without the threshold, the swapped pairs destroy the chain.
        unthresholded = mine_general_dag(noisy)
        assert not unthresholded.edge_set() >= self.CHAIN_EDGES

    def test_insert_noise_filtered_by_threshold(self):
        m = 200
        clean = self.chain_log(m)
        noisy = NoiseInjector(
            NoiseConfig(insert_rate=0.05, alien_activities=("X",), seed=3)
        ).corrupt(clean)
        mined = mine_general_dag(noisy, threshold=25)
        assert "X" not in set(
            n for e in mined.edges() for n in e
        )

    def test_threshold_counts_in_trace(self):
        m, k = 50, 3
        sequences = ["ABCDE"] * (m - k) + ["ADCBE"] * k
        log = EventLog.from_sequences(sequences)
        trace = MiningTrace()
        mine_general_dag(log, threshold=k + 1, trace=trace)
        assert trace.edges_dropped_by_threshold > 0
        assert trace.pair_counts[("A", "B")] == m

    def test_drop_noise_tolerated(self):
        # Dropped activities only remove evidence; the chain survives as
        # long as each adjacent pair is still frequently observed.
        m = 200
        clean = self.chain_log(m)
        noisy = NoiseInjector(
            NoiseConfig(drop_rate=0.2, seed=5)
        ).corrupt(clean)
        mined = mine_general_dag(noisy)
        for edge in self.CHAIN_EDGES:
            assert mined.has_edge(*edge)
