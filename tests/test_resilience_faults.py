"""Deterministic fault injection: plans, the injector, choke points.

Determinism is the whole point — a seeded plan must describe the same
fault, fire at the same hit, and damage the same bytes on every run,
or the kill-and-resume suite could never assert byte-identical
recovery.  Process-killing kinds (sigkill, worker-crash, torn-write's
kill-after-partial) are exercised end to end by ``test_durability``;
here they stay un-fired.
"""

import json

import pytest

from repro.resilience.faults import (
    CHOKE_POINTS,
    KILL_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedIOError,
    InjectedTear,
    install,
    maybe_fault,
    now,
    uninstall,
)


@pytest.fixture(autouse=True)
def clean_injector():
    uninstall()
    yield
    uninstall()


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultSpec("journal.append", "io-error", at=3),
                FaultSpec("clock", "clock-skew", arg=-60.0),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_and_load(self, tmp_path):
        plan = FaultPlan.seeded_kill(11)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # The file is plain JSON an operator can read and edit.
        assert "sigkill" in json.loads(path.read_text())["faults"][0]["kind"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("journal.append", "meteor-strike")

    def test_hit_index_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec("journal.append", "io-error", at=0)

    def test_seeded_kill_is_deterministic(self):
        assert FaultPlan.seeded_kill(3) == FaultPlan.seeded_kill(3)
        plans = {FaultPlan.seeded_kill(seed).faults for seed in range(50)}
        assert len(plans) > 10  # seeds actually vary the plan

    def test_seeded_kill_targets_documented_points(self):
        for seed in range(20):
            (spec,) = FaultPlan.seeded_kill(seed).faults
            assert spec.point in KILL_POINTS
            assert spec.point in CHOKE_POINTS
            assert spec.kind == "sigkill"


class TestInjector:
    def test_no_plan_is_a_passthrough(self):
        assert maybe_fault("journal.append", b"abc") == b"abc"

    def test_io_error_fires_at_planned_hit(self):
        install(
            FaultPlan(faults=(FaultSpec("durable.write", "io-error", at=2),))
        )
        assert maybe_fault("durable.write", b"one") == b"one"
        with pytest.raises(InjectedIOError):
            maybe_fault("durable.write", b"two")
        assert maybe_fault("durable.write", b"three") == b"three"

    def test_count_extends_the_fault_window(self):
        install(
            FaultPlan(
                faults=(
                    FaultSpec("ingest.accept", "io-error", at=2, count=2),
                )
            )
        )
        maybe_fault("ingest.accept")
        for _ in range(2):
            with pytest.raises(InjectedIOError):
                maybe_fault("ingest.accept")
        assert maybe_fault("ingest.accept") is None

    def test_points_count_hits_independently(self):
        injector = install(
            FaultPlan(faults=(FaultSpec("fold.merge", "io-error", at=3),))
        )
        maybe_fault("journal.append")
        maybe_fault("journal.append")
        maybe_fault("fold.merge")
        assert injector.hits == {"journal.append": 2, "fold.merge": 1}

    def test_torn_write_split_is_seeded(self):
        payload = bytes(range(64))

        def tear_with(seed):
            injector = FaultInjector(
                FaultPlan(
                    seed=seed,
                    faults=(FaultSpec("journal.append", "torn-write"),),
                )
            )
            with pytest.raises(InjectedTear) as info:
                injector.fire("journal.append", payload)
            return info.value.partial

        first = tear_with(5)
        assert first == tear_with(5)  # same seed, same prefix
        assert payload.startswith(first) and 0 < len(first) < len(payload)
        assert any(tear_with(seed) != first for seed in range(6, 12))

    def test_corrupt_bytes_flips_exactly_one_seeded_byte(self):
        payload = b"\x00" * 32
        injector = install(
            FaultPlan(
                seed=9,
                faults=(FaultSpec("checkpoint.save", "corrupt-bytes"),),
            )
        )
        mutated = injector.fire("checkpoint.save", payload)
        assert len(mutated) == len(payload)
        flipped = [
            i for i, (a, b) in enumerate(zip(payload, mutated)) if a != b
        ]
        assert len(flipped) == 1 and mutated[flipped[0]] == 0xFF

    def test_fired_log_records_what_happened(self):
        injector = install(
            FaultPlan(faults=(FaultSpec("fold.chunk", "io-error", at=1),))
        )
        with pytest.raises(InjectedIOError):
            maybe_fault("fold.chunk")
        assert injector.fired == [("fold.chunk", "io-error", 1)]


class TestEnvironmentLoading:
    def test_env_var_installs_the_plan(self, tmp_path, monkeypatch):
        import repro.resilience.faults as faults

        plan = FaultPlan(
            faults=(FaultSpec("ingest.accept", "io-error", at=1),)
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        monkeypatch.setattr(faults, "_injector", None)
        monkeypatch.setattr(faults, "_env_checked", False)
        with pytest.raises(InjectedIOError):
            maybe_fault("ingest.accept")

    def test_env_is_read_at_most_once(self, tmp_path, monkeypatch):
        import repro.resilience.faults as faults

        monkeypatch.setenv("REPRO_FAULT_PLAN", str(tmp_path / "late.json"))
        monkeypatch.setattr(faults, "_injector", None)
        monkeypatch.setattr(faults, "_env_checked", True)  # already checked
        assert maybe_fault("ingest.accept", b"x") == b"x"


class TestClockSkew:
    def test_now_applies_planned_skew(self):
        import time

        install(
            FaultPlan(faults=(FaultSpec("clock", "clock-skew", arg=3600.0),))
        )
        assert now() - time.time() > 3500
        uninstall()
        assert abs(now() - time.time()) < 5
