"""Tests for :mod:`repro.core.state`: the mergeable mining state.

The load-bearing guarantee (the ISSUE's differential property): folding
executions one at a time, folding shards in any split and merging, and
batch-mining the materialized log must all produce the *identical*
graph.  The hypothesis properties below drive random logs through
random shard splits; the ``deep`` nightly profile scales the example
counts up automatically (no pinned ``max_examples``).
"""

import json
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cyclic import merge_instances, mine_cyclic
from repro.core.general_dag import mine_general_dag
from repro.core.state import (
    MiningState,
    fold_executions,
    load_state,
    save_state,
)
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution

ACTIVITIES = [chr(ord("A") + i) for i in range(8)]


def executions_from(sequences):
    return [
        Execution.from_sequence(list(seq), execution_id=f"e{i:04d}")
        for i, seq in enumerate(sequences)
    ]


def fold_all(sequences, labelled=False):
    state = MiningState(labelled=labelled)
    for execution in executions_from(sequences):
        state.update(execution)
    return state


def graphs_equal(a, b):
    return set(a.nodes()) == set(b.nodes()) and a.edge_set() == b.edge_set()


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def acyclic_sequences(draw, max_executions=12):
    """Random repetition-free sequential traces over a shared alphabet,
    with whole-trace duplicates likely (exercising variant weights)."""
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    pool_size = draw(st.integers(min_value=1, max_value=5))
    pool = []
    for _ in range(pool_size):
        k = rng.randint(1, len(ACTIVITIES))
        pool.append("".join(rng.sample(ACTIVITIES, k)))
    return [rng.choice(pool) for _ in range(m)]


@st.composite
def cyclic_sequences(draw, max_executions=8):
    """Traces that may revisit activities (Algorithm 3's setting)."""
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        body = []
        for _ in range(rng.randint(1, 3)):
            body += ["L", "B"][: rng.randint(1, 2)]
        sequences.append("".join(["S"] + body + ["E"]))
    return sequences


# ---------------------------------------------------------------------------
# Fold == batch
# ---------------------------------------------------------------------------
class TestFoldMatchesBatch:
    SEQUENCES = ["ABCF", "ACDF", "ABDF", "ABCDF", "ABCF", "ACDF"]

    def test_streamed_fold_equals_batch_miner(self):
        state = fold_all(self.SEQUENCES)
        batch = mine_general_dag(
            EventLog(executions_from(self.SEQUENCES))
        )
        assert graphs_equal(state.finish(), batch)

    @pytest.mark.parametrize("threshold", [0, 1, 2, 5])
    def test_threshold_applied_at_finish(self, threshold):
        state = fold_all(self.SEQUENCES)
        batch = mine_general_dag(
            EventLog(executions_from(self.SEQUENCES)),
            threshold=threshold,
        )
        assert graphs_equal(state.finish(threshold=threshold), batch)

    def test_repeated_finish_is_stable(self):
        # finish() must be side-effect-free on the accumulator (the
        # step-5 reduction memo persists between calls but never leaks
        # into results).
        state = fold_all(self.SEQUENCES)
        first = state.finish()
        second = state.finish()
        assert graphs_equal(first, second)
        state.update(Execution.from_sequence(list("AF"), "late"))
        assert graphs_equal(
            state.finish(),
            mine_general_dag(
                EventLog(executions_from(self.SEQUENCES + ["AF"]))
            ),
        )

    def test_fold_executions_parallel_matches_serial(self):
        sequences = self.SEQUENCES * 7
        serial = fold_executions(iter(executions_from(sequences)))
        parallel = fold_executions(
            iter(executions_from(sequences)), jobs=3, chunk_size=5
        )
        assert serial.to_payload() == parallel.to_payload()
        assert graphs_equal(serial.finish(), parallel.finish())

    @given(acyclic_sequences())
    def test_fold_equals_batch_on_random_logs(self, sequences):
        state = fold_all(sequences)
        batch = mine_general_dag(EventLog(executions_from(sequences)))
        assert graphs_equal(state.finish(), batch)


# ---------------------------------------------------------------------------
# Merge algebra
# ---------------------------------------------------------------------------
class TestMergeAlgebra:
    @given(
        acyclic_sequences(),
        st.lists(st.integers(min_value=0, max_value=2), min_size=0),
    )
    def test_any_shard_split_merges_to_the_batch_graph(
        self, sequences, assignment
    ):
        """Fold shards under a random 3-way split, merge, finish —
        identical graph and identical canonical payload to one fold."""
        shards = [MiningState(), MiningState(), MiningState()]
        for index, execution in enumerate(executions_from(sequences)):
            shard = assignment[index % len(assignment)] if assignment else 0
            shards[shard].update(execution)
        merged = shards[1]
        merged.merge(shards[2])
        merged.merge(shards[0])
        single = fold_all(sequences)
        assert merged.to_payload() == single.to_payload()
        assert graphs_equal(
            merged.finish(),
            mine_general_dag(EventLog(executions_from(sequences))),
        )

    @given(acyclic_sequences(), acyclic_sequences(), acyclic_sequences())
    def test_merge_is_associative_and_commutative(self, sa, sb, sc):
        """(A + B) + C == A + (B + C) == (C + B) + A, by canonical
        payload — byte-level equality, stronger than graph equality."""
        def build(seqs, offset):
            state = MiningState()
            for i, seq in enumerate(seqs):
                state.update(
                    Execution.from_sequence(
                        list(seq), execution_id=f"x{offset}-{i:03d}"
                    )
                )
            return state

        left = build(sa, 0).merge(build(sb, 1)).merge(build(sc, 2))
        right_inner = build(sb, 1).merge(build(sc, 2))
        right = build(sa, 0).merge(right_inner)
        flipped = build(sc, 2).merge(build(sb, 1)).merge(build(sa, 0))
        assert left.to_payload() == right.to_payload()
        assert left.to_payload() == flipped.to_payload()

    def test_merge_relabels_across_disjoint_alphabets(self):
        # Shards interned different label sets; merge must remap codes,
        # not assume a shared table.
        a = fold_all(["ABC", "AC"])
        b = fold_all(["XYZ", "XZ"])
        a.merge(b)
        batch = mine_general_dag(
            EventLog(executions_from(["ABC", "AC", "XYZ", "XZ"]))
        )
        assert graphs_equal(a.finish(), batch)

    def test_merge_with_empty_state_is_identity(self):
        state = fold_all(["ABCF", "ACDF"])
        before = state.to_payload()
        state.merge(MiningState())
        assert state.to_payload() == before

    def test_merge_rejects_mixed_labelled_flags(self):
        with pytest.raises(ValueError):
            MiningState(labelled=False).merge(MiningState(labelled=True))


# ---------------------------------------------------------------------------
# Labelled (cyclic) states
# ---------------------------------------------------------------------------
class TestLabelledState:
    @given(cyclic_sequences())
    def test_labelled_fold_matches_mine_cyclic(self, sequences):
        state = fold_all(sequences, labelled=True)
        log = EventLog(executions_from(sequences))
        mined = merge_instances(state.finish())
        assert graphs_equal(mined, mine_cyclic(log))

    def test_has_repetition_detects_revisits(self):
        assert not fold_all(
            ["ABC", "AC"], labelled=True
        ).has_repetition()
        assert fold_all(["ABAC"], labelled=True).has_repetition()

    def test_to_plain_projects_repetition_free_states(self):
        labelled = fold_all(["ABCF", "ACDF", "ABCF"], labelled=True)
        plain = labelled.to_plain()
        assert plain.to_payload() == fold_all(
            ["ABCF", "ACDF", "ABCF"]
        ).to_payload()

    def test_to_plain_rejects_repetition(self):
        with pytest.raises(ValueError):
            fold_all(["ABAB"], labelled=True).to_plain()


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
class TestStatePersistence:
    def test_save_load_round_trip(self, tmp_path):
        state = fold_all(["ABCF", "ACDF", "ABCF"])
        path = tmp_path / "shard.state"
        save_state(state, path, threshold=2)
        loaded, meta = load_state(path)
        assert loaded.to_payload() == state.to_payload()
        assert meta["mode"] == "general-dag"
        assert meta["threshold"] == 2
        assert meta["version"] == 3

    def test_payload_is_canonical_across_ingest_orders(self):
        forward = fold_all(["ABCF", "ACDF", "ABDF"])
        backward = fold_all(["ABDF", "ACDF", "ABCF"])
        assert json.dumps(forward.to_payload(), sort_keys=True) == (
            json.dumps(backward.to_payload(), sort_keys=True)
        )

    def test_from_payload_round_trip(self):
        state = fold_all(["ABCF", "ACDF"])
        clone = MiningState.from_payload(state.to_payload())
        assert clone.to_payload() == state.to_payload()
        assert graphs_equal(clone.finish(), state.finish())

    def test_saved_labelled_state_resumes_as_cyclic(self, tmp_path):
        state = fold_all(["ABAB"], labelled=True)
        path = tmp_path / "cyc.state"
        save_state(state, path)
        loaded, meta = load_state(path)
        assert meta["mode"] == "cyclic"
        assert loaded.labelled
        assert loaded.has_repetition()
