"""Tests for the decision-stump baseline and edge-coverage analysis."""

import pytest

from repro.analysis.coverage import edge_coverage
from repro.classifier.dataset import Dataset
from repro.classifier.stump import DecisionStump
from repro.classifier.tree import DecisionTree
from repro.errors import TrainingDataError
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.model.conditions import Always, Never


class TestDecisionStump:
    def test_learns_single_threshold(self):
        data = Dataset.from_pairs(
            [((float(i),), i > 10) for i in range(21)]
        )
        stump = DecisionStump.fit(data)
        assert stump.accuracy(data) == 1.0
        assert stump.predict((15.0,)) is True
        assert stump.predict((5.0,)) is False

    def test_polarity_inversion(self):
        # Positive class on the LOW side of the split.
        data = Dataset.from_pairs(
            [((float(i),), i <= 10) for i in range(21)]
        )
        stump = DecisionStump.fit(data)
        assert stump.accuracy(data) == 1.0
        assert stump.predict((3.0,)) is True

    def test_constant_fallback(self):
        data = Dataset.from_pairs([((1.0,), True), ((1.0,), True)])
        stump = DecisionStump.fit(data)
        assert stump.constant is True
        assert stump.predict((99.0,)) is True
        assert isinstance(stump.to_condition(), Always)

    def test_constant_negative(self):
        data = Dataset.from_pairs([((1.0,), False), ((1.0,), False)])
        assert isinstance(
            DecisionStump.fit(data).to_condition(), Never
        )

    def test_empty_rejected(self):
        with pytest.raises(TrainingDataError):
            DecisionStump.fit(Dataset([]))

    def test_condition_matches_predictions(self):
        data = Dataset.from_pairs(
            [((float(i), 0.0), i > 7) for i in range(15)]
        )
        stump = DecisionStump.fit(data)
        condition = stump.to_condition()
        for i in range(15):
            point = (float(i), 0.0)
            assert condition.evaluate(point) == stump.predict(point)

    def test_loses_to_tree_on_conjunctions(self):
        # Example 1's shape: a conjunction of two thresholds.  The
        # stump cannot represent it; the tree can.
        data = Dataset.from_pairs(
            [
                ((float(x), float(y)), x > 5 and y > 5)
                for x in range(11)
                for y in range(11)
            ]
        )
        stump = DecisionStump.fit(data)
        tree = DecisionTree.fit(data)
        assert tree.accuracy(data) == 1.0
        assert stump.accuracy(data) < 1.0

    def test_matches_tree_on_single_thresholds(self):
        data = Dataset.from_pairs(
            [((float(i), 3.0), i >= 12) for i in range(25)]
        )
        stump = DecisionStump.fit(data)
        tree = DecisionTree.fit(data)
        assert stump.accuracy(data) == tree.accuracy(data) == 1.0


class TestEdgeCoverage:
    def diamond(self):
        return DiGraph(
            edges=[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D"),
                   ("A", "D")]
        )

    def test_full_coverage_of_exercised_edges(self):
        graph = DiGraph(edges=[("A", "B"), ("B", "C")])
        log = EventLog.from_sequences(["ABC"] * 5)
        report = edge_coverage(graph, log)
        assert report.coverage == 1.0
        assert report.usage[("A", "B")].required == 5
        assert report.unexercised() == []

    def test_shortcut_edge_required_only_when_needed(self):
        graph = self.diamond()
        log = EventLog.from_sequences(["ABD", "ACD", "ABCD"])
        report = edge_coverage(graph, log)
        # A->D is compatible everywhere but never required (some
        # interior path always present).
        usage = report.usage[("A", "D")]
        assert usage.compatible == 3
        assert usage.required == 0
        assert ("A", "D") in report.unexercised()

    def test_shortcut_required_when_interior_skipped(self):
        graph = self.diamond()
        log = EventLog.from_sequences(["ABD", "AD"])
        report = edge_coverage(graph, log)
        assert report.usage[("A", "D")].required == 1

    def test_unperformed_endpoints_are_zero(self):
        graph = DiGraph(edges=[("A", "B"), ("X", "Y")])
        log = EventLog.from_sequences(["AB"] * 3)
        report = edge_coverage(graph, log)
        usage = report.usage[("X", "Y")]
        assert usage.co_present == usage.compatible == usage.required == 0

    def test_report_text(self):
        graph = DiGraph(edges=[("A", "B")])
        log = EventLog.from_sequences(["AB"])
        text = edge_coverage(graph, log).report()
        assert "edge coverage: 1/1" in text
        assert "A -> B" in text

    def test_coverage_of_edgeless_graph(self):
        graph = DiGraph(nodes=["A"])
        log = EventLog.from_sequences(["A"])
        assert edge_coverage(graph, log).coverage == 1.0

    def test_empty_log_rejected(self):
        from repro.errors import EmptyLogError

        with pytest.raises(EmptyLogError):
            edge_coverage(DiGraph(), EventLog())
