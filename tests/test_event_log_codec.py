"""Unit tests for repro.logs.event_log, codec, noise and stats."""

import io

import pytest

from repro.errors import EmptyLogError, LogFormatError
from repro.logs.codec import (
    format_record,
    log_from_text,
    log_size_bytes,
    log_to_text,
    parse_record,
    read_log,
    read_log_file,
    write_log_file,
)
from repro.logs.event_log import EventLog
from repro.logs.events import end_event, start_event
from repro.logs.execution import Execution
from repro.logs.noise import NoiseConfig, NoiseInjector, swap_adjacent
from repro.logs.stats import format_statistics, summarize_log


class TestEventLog:
    def test_from_sequences(self):
        log = EventLog.from_sequences(["AB", "ABC"])
        assert len(log) == 2
        assert log.sequences() == [["A", "B"], ["A", "B", "C"]]
        assert log.activities() == {"A", "B", "C"}

    def test_from_records_groups_interleaved(self):
        records = [
            start_event("r1", "A", 0.0),
            start_event("r2", "A", 0.5),
            end_event("r1", "A", 1.0),
            end_event("r2", "A", 1.5),
        ]
        log = EventLog.from_records(records)
        assert len(log) == 2
        assert [e.execution_id for e in log] == ["r1", "r2"]

    def test_append_extend(self):
        log = EventLog()
        log.append(Execution.from_sequence("AB", execution_id="x"))
        log.extend([Execution.from_sequence("AB", execution_id="y")])
        assert len(log) == 2

    def test_event_count(self):
        log = EventLog.from_sequences(["AB"])
        assert log.event_count() == 4  # two START + two END

    def test_require_non_empty(self):
        with pytest.raises(EmptyLogError):
            EventLog().require_non_empty()
        EventLog.from_sequences(["A"]).require_non_empty()

    def test_split(self):
        log = EventLog.from_sequences(["AB"] * 10)
        head, tail = log.split(0.7)
        assert len(head) == 7 and len(tail) == 3
        with pytest.raises(ValueError):
            log.split(1.5)

    def test_indexing(self):
        log = EventLog.from_sequences(["AB", "AC"])
        assert log[1].sequence == ["A", "C"]


class TestCodec:
    def test_record_roundtrip(self):
        record = end_event("run-7", "Review", 12.25, output=(3.0, 4.5))
        line = format_record(record, "claims")
        name, parsed = parse_record(line)
        assert name == "claims"
        assert parsed == record

    def test_start_record_has_five_fields(self):
        line = format_record(start_event("r", "A", 3.0), "p")
        assert line.count("\t") == 4

    def test_log_roundtrip(self):
        log = EventLog.from_sequences(["ABCE", "ACBE"], process_name="demo")
        text = log_to_text(log)
        parsed = log_from_text(text)
        assert parsed.process_name == "demo"
        assert parsed.sequences() == log.sequences()
        assert log_to_text(parsed) == text

    def test_file_roundtrip(self, tmp_path):
        log = EventLog.from_sequences(["AB"], process_name="p")
        path = tmp_path / "log.tsv"
        lines = write_log_file(log, path)
        assert lines == 4
        parsed = read_log_file(path)
        assert parsed.sequences() == [["A", "B"]]

    def test_outputs_roundtrip(self):
        execution = Execution.from_sequence(
            "AB", outputs={"A": (1.0, 2.5)}, execution_id="e"
        )
        log = EventLog([execution], process_name="p")
        parsed = log_from_text(log_to_text(log))
        assert parsed[0].last_output_of("A") == (1.0, 2.5)

    def test_comments_and_blanks_skipped(self):
        text = (
            "# header comment\n"
            "\n"
            "p\te\tA\tSTART\t0\n"
            "p\te\tA\tEND\t1\n"
        )
        log = log_from_text(text)
        assert log.sequences() == [["A"]]

    def test_mixed_processes_rejected(self):
        text = "p1\te\tA\tSTART\t0\np2\te\tA\tEND\t1\n"
        with pytest.raises(LogFormatError, match="mixes"):
            log_from_text(text)

    @pytest.mark.parametrize(
        "line",
        [
            "too\tfew\tfields",
            "p\te\tA\tMIDDLE\t0",
            "p\te\tA\tSTART\tnot-a-number",
            "p\te\tA\tEND\t1\tx,y",
        ],
    )
    def test_bad_lines_rejected_with_line_number(self, line):
        with pytest.raises(LogFormatError) as excinfo:
            read_log(io.StringIO(line + "\n"))
        assert "line 1" in str(excinfo.value)

    def test_log_size_bytes_matches_serialization(self):
        log = EventLog.from_sequences(["ABCE"] * 3, process_name="p")
        assert log_size_bytes(log) == len(log_to_text(log))


class TestNoise:
    def make_log(self, n=50):
        return EventLog.from_sequences(["ABCDE"] * n, process_name="chain")

    def test_no_noise_is_identity(self):
        log = self.make_log()
        corrupted = NoiseInjector(NoiseConfig()).corrupt(log)
        assert corrupted.sequences() == log.sequences()

    def test_swap_rate_one_swaps_every_execution(self):
        log = self.make_log(10)
        injector = NoiseInjector(NoiseConfig(swap_rate=1.0, seed=1))
        corrupted = injector.corrupt(log)
        assert injector.counts["swap"] == 10
        for sequence in corrupted.sequences():
            assert sorted(sequence) == ["A", "B", "C", "D", "E"]
            assert sequence != ["A", "B", "C", "D", "E"]

    def test_swap_is_adjacent_transposition(self):
        log = EventLog.from_sequences(["ABC"])
        corrupted = swap_adjacent(log, swap_rate=1.0, seed=0)
        seq = corrupted.sequences()[0]
        assert seq in (["B", "A", "C"], ["A", "C", "B"])

    def test_drop_keeps_endpoints(self):
        log = self.make_log(20)
        injector = NoiseInjector(NoiseConfig(drop_rate=1.0, seed=2))
        corrupted = injector.corrupt(log)
        assert injector.counts["drop"] == 20
        for sequence in corrupted.sequences():
            assert sequence[0] == "A"
            assert sequence[-1] == "E"
            assert len(sequence) == 4

    def test_insert_adds_alien(self):
        log = self.make_log(5)
        injector = NoiseInjector(
            NoiseConfig(insert_rate=1.0, alien_activities=("X",), seed=3)
        )
        corrupted = injector.corrupt(log)
        assert injector.counts["insert"] == 5
        for sequence in corrupted.sequences():
            assert "X" in sequence
            assert len(sequence) == 6

    def test_deterministic_under_seed(self):
        log = self.make_log(10)
        config = NoiseConfig(swap_rate=0.5, drop_rate=0.3, seed=9)
        first = NoiseInjector(config).corrupt(log)
        second = NoiseInjector(config).corrupt(log)
        assert first.sequences() == second.sequences()

    def test_original_untouched(self):
        log = self.make_log(5)
        NoiseInjector(NoiseConfig(swap_rate=1.0, seed=0)).corrupt(log)
        assert log.sequences() == [["A", "B", "C", "D", "E"]] * 5

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            NoiseConfig(swap_rate=1.5)
        with pytest.raises(ValueError):
            NoiseConfig(insert_rate=0.5, alien_activities=())


class TestStats:
    def test_summary(self):
        log = EventLog.from_sequences(["ABCE", "ACE", "ABCBE"])
        stats = summarize_log(log)
        assert stats.execution_count == 3
        assert stats.activity_count == 4
        assert stats.min_length == 3
        assert stats.max_length == 5
        assert stats.mean_length == pytest.approx(4.0)
        assert stats.repeated_activity_executions == 1
        assert stats.has_repetitions
        assert stats.frequency_of("B") == pytest.approx(2 / 3)
        assert stats.frequency_of("Z") == 0.0

    def test_empty_log(self):
        stats = summarize_log(EventLog())
        assert stats.execution_count == 0
        assert stats.mean_length == 0.0

    def test_format_statistics(self):
        log = EventLog.from_sequences(["AB"])
        text = format_statistics(summarize_log(log))
        assert "executions:" in text
        assert "A" in text
