"""Differential and unit tests for the pluggable mining kernels.

Every kernel (``pure``, ``bitset``, and — when numpy is installed —
``numpy``) must mine byte-identical graphs and reference-identical stage
diagnostics on arbitrary logs; the batched step-5 path, the prefix-reuse
cache, and the packed closure bitset are additionally checked directly
against their scalar counterparts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.general_dag import (
    MiningTrace,
    _total_order_mask,
    mine_general_dag,
)
from repro.core.interning import PackedVariant
from repro.core.kernels import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNEL_NAMES,
    BitsetKernel,
    KernelState,
    PureKernel,
    ReduceContext,
    ReduceStats,
    get_kernel,
    induced_codes,
    numpy_available,
    resolve_kernel_name,
    scalar_reduce_union,
    slotted_reduce_union,
    walk_reduce,
)
from repro.core.parallel import pack_masks, unpack_masks
from repro.core.reference import mine_general_dag_reference
from repro.core.state import MiningState
from repro.errors import KernelUnavailableError
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import (
    transitive_closure,
    transitive_closure_bitset,
    transitive_reduction_packed,
)
from repro.logs.event_log import EventLog
from repro.logs.events import end_event, start_event
from repro.logs.execution import Execution

AVAILABLE_KERNELS = [
    name
    for name in KERNEL_NAMES
    if name != "numpy" or numpy_available()
]

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy is not installed"
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def subset_logs(draw, max_activities=7, max_executions=10):
    """Sequential logs with skipped activities and duplicated traces."""
    n = draw(st.integers(min_value=1, max_value=max_activities))
    interior = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        chosen = [a for a in interior if rng.random() < 0.7]
        rng.shuffle(chosen)
        sequences.append(["S", *chosen, "Z"])
    if draw(st.booleans()) and sequences:
        sequences += sequences[: rng.randint(1, len(sequences))]
    return EventLog.from_sequences(sequences)


@st.composite
def noisy_logs(draw, max_activities=6, max_executions=10):
    """Shuffled logs without the S/Z frame — 2-cycles and SCCs abound."""
    n = draw(st.integers(min_value=2, max_value=max_activities))
    activities = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    sequences = []
    for _ in range(m):
        chosen = [a for a in activities if rng.random() < 0.8] or [
            activities[0]
        ]
        rng.shuffle(chosen)
        sequences.append(chosen)
    return EventLog.from_sequences(sequences)


@st.composite
def interval_logs(draw, max_activities=6, max_executions=6):
    """Interval logs whose activities may overlap in time."""
    n = draw(st.integers(min_value=2, max_value=max_activities))
    activities = [chr(ord("A") + i) for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=max_executions))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    executions = []
    for index in range(m):
        chosen = [a for a in activities if rng.random() < 0.8] or [
            activities[0]
        ]
        records = []
        execution_id = f"iv-{index}"
        for activity in chosen:
            start = rng.randint(0, 20)
            end = start + rng.randint(1, 6)
            records.append(start_event(execution_id, activity, start))
            records.append(end_event(execution_id, activity, end))
        executions.append(Execution(execution_id, records))
    return EventLog(executions)


@st.composite
def packed_dags(draw, max_vertices=9):
    """A random packed DAG ``(edge codes, n, rank)`` plus variant masks.

    Edges only ever point from a lower to a higher vertex id, so the
    identity order is topological and any vertex subset induces a DAG.
    """
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    edges = set()
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.45:
                edges.add(u * n + v)
    rank = {u: u for u in range(n)}
    count = draw(st.integers(min_value=1, max_value=12))
    masks = []
    for _ in range(count):
        mask = 0
        for u in range(n):
            if rng.random() < 0.6:
                mask |= 1 << u
        masks.append(mask)
    return n, edges, rank, masks


def assert_same_mining(fast, ref, fast_trace, ref_trace):
    assert set(fast.nodes()) == set(ref.nodes())
    assert fast.edge_set() == ref.edge_set()
    assert fast_trace.pair_counts == ref_trace.pair_counts
    assert fast_trace.overlap_counts == ref_trace.overlap_counts
    assert fast_trace.edges_after_step2 == ref_trace.edges_after_step2
    assert (
        fast_trace.edges_dropped_by_threshold
        == ref_trace.edges_dropped_by_threshold
    )
    assert (
        fast_trace.edges_dropped_by_overlap
        == ref_trace.edges_dropped_by_overlap
    )
    assert fast_trace.edges_after_step3 == ref_trace.edges_after_step3
    assert fast_trace.edges_after_step4 == ref_trace.edges_after_step4
    assert fast_trace.edges_after_step6 == ref_trace.edges_after_step6
    assert fast_trace.scc_edge_removals == ref_trace.scc_edge_removals


# ---------------------------------------------------------------------------
# Differential: every kernel vs the reference pipeline
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", AVAILABLE_KERNELS)
@given(
    log=subset_logs(), threshold=st.integers(min_value=0, max_value=3)
)
@settings(max_examples=40, deadline=None)
def test_kernel_matches_reference_on_subset_logs(
    kernel, log, threshold
):
    fast_trace, ref_trace = MiningTrace(), MiningTrace()
    fast = mine_general_dag(
        log, threshold=threshold, trace=fast_trace, kernel=kernel
    )
    ref = mine_general_dag_reference(
        log, threshold=threshold, trace=ref_trace
    )
    assert_same_mining(fast, ref, fast_trace, ref_trace)
    assert fast_trace.kernel == kernel


@pytest.mark.parametrize("kernel", AVAILABLE_KERNELS)
@given(
    log=noisy_logs(), threshold=st.integers(min_value=0, max_value=3)
)
@settings(max_examples=40, deadline=None)
def test_kernel_matches_reference_on_noisy_logs(kernel, log, threshold):
    fast_trace, ref_trace = MiningTrace(), MiningTrace()
    fast = mine_general_dag(
        log, threshold=threshold, trace=fast_trace, kernel=kernel
    )
    ref = mine_general_dag_reference(
        log, threshold=threshold, trace=ref_trace
    )
    assert_same_mining(fast, ref, fast_trace, ref_trace)


@pytest.mark.parametrize("kernel", AVAILABLE_KERNELS)
@given(
    log=interval_logs(), threshold=st.integers(min_value=0, max_value=2)
)
@settings(max_examples=30, deadline=None)
def test_kernel_matches_reference_on_interval_logs(
    kernel, log, threshold
):
    fast_trace, ref_trace = MiningTrace(), MiningTrace()
    fast = mine_general_dag(
        log, threshold=threshold, trace=fast_trace, kernel=kernel
    )
    ref = mine_general_dag_reference(
        log, threshold=threshold, trace=ref_trace
    )
    assert_same_mining(fast, ref, fast_trace, ref_trace)


@given(log=subset_logs())
@settings(max_examples=30, deadline=None)
def test_kernels_agree_with_each_other(log):
    graphs = {
        kernel: mine_general_dag(log, kernel=kernel)
        for kernel in AVAILABLE_KERNELS
    }
    baseline = graphs["pure"]
    for kernel, graph in graphs.items():
        assert graph.edge_set() == baseline.edge_set(), kernel
        assert set(graph.nodes()) == set(baseline.nodes()), kernel


# ---------------------------------------------------------------------------
# Kernel selection: explicit > environment > default
# ---------------------------------------------------------------------------
class TestKernelSelection:
    def test_default_is_bitset(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel_name() == DEFAULT_KERNEL == "bitset"

    def test_environment_overrides_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, " Pure ")
        assert resolve_kernel_name() == "pure"

    def test_explicit_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "pure")
        assert resolve_kernel_name("bitset") == "bitset"

    def test_unknown_explicit_name_raises(self):
        with pytest.raises(KernelUnavailableError):
            resolve_kernel_name("simd")

    def test_unknown_environment_name_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "turbo")
        with pytest.raises(KernelUnavailableError):
            resolve_kernel_name()

    def test_get_kernel_returns_cached_instances(self):
        assert get_kernel("pure") is get_kernel("pure")
        assert isinstance(get_kernel("pure"), PureKernel)
        assert isinstance(get_kernel("bitset"), BitsetKernel)
        assert get_kernel("pure").supports_masks is False
        assert get_kernel("bitset").supports_masks is True

    def test_environment_selects_mining_kernel(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "pure")
        log = EventLog.from_sequences(["SABZ", "SBAZ", "SAZ"])
        trace = MiningTrace()
        mine_general_dag(log, trace=trace)
        assert trace.kernel == "pure"

    def test_explicit_mining_kernel_beats_environment(
        self, monkeypatch
    ):
        monkeypatch.setenv(KERNEL_ENV, "pure")
        log = EventLog.from_sequences(["SABZ", "SBAZ", "SAZ"])
        trace = MiningTrace()
        mine_general_dag(log, trace=trace, kernel="bitset")
        assert trace.kernel == "bitset"

    @needs_numpy
    def test_numpy_kernel_selectable(self):
        assert get_kernel("numpy").name == "numpy"

    def test_cli_rejects_unknown_kernel(self, tmp_path, capsys):
        from repro.cli import main
        from repro.logs.codec import write_log_file

        path = tmp_path / "log.tsv"
        write_log_file(
            EventLog.from_sequences(["SABZ", "SAZ"]), path
        )
        with pytest.raises(SystemExit):
            main(["mine", str(path), "--kernel", "turbo"])
        capsys.readouterr()

    def test_cli_kernel_flag_reaches_profile(self, tmp_path, capsys):
        from repro.cli import main
        from repro.logs.codec import write_log_file

        path = tmp_path / "log.tsv"
        write_log_file(
            EventLog.from_sequences(["SABZ", "SBAZ", "SAZ"]), path
        )
        assert (
            main(["mine", str(path), "--kernel", "pure", "--profile"])
            == 0
        )
        err = capsys.readouterr().err
        assert "kernel: pure" in err


# ---------------------------------------------------------------------------
# Batched reduction primitives
# ---------------------------------------------------------------------------
@given(packed_dags())
@settings(max_examples=60, deadline=None)
def test_slotted_batch_matches_scalar_reduction(case):
    n, edges, rank, masks = case
    ctx = ReduceContext.from_edges(edges, n, rank)
    expected = set()
    for smask in masks:
        expected |= transitive_reduction_packed(
            frozenset(induced_codes(ctx, smask)), n, rank
        )
    assert slotted_reduce_union(ctx, masks) == expected
    assert scalar_reduce_union(ctx, masks) == expected


@needs_numpy
@given(packed_dags())
@settings(max_examples=40, deadline=None)
def test_numpy_batch_matches_slotted(case):
    n, edges, rank, masks = case
    ctx = ReduceContext.from_edges(edges, n, rank)
    numpy_kernel = get_kernel("numpy")
    assert numpy_kernel.bulk_reduce_union(
        ctx, masks
    ) == slotted_reduce_union(ctx, masks)


@given(packed_dags())
@settings(max_examples=60, deadline=None)
def test_walker_matches_scalar_reduction(case):
    n, edges, rank, masks = case
    ctx = ReduceContext.from_edges(edges, n, rank)
    trie = {}
    for smask in masks:
        kept, _ = walk_reduce(ctx, smask, trie)
        assert kept == transitive_reduction_packed(
            frozenset(induced_codes(ctx, smask)), n, rank
        )


def test_walker_resumes_from_shared_prefix():
    # Chain 0 -> 1 -> ... -> 5 plus skip edges; two variants share the
    # prefix {0, 1, 2, 3}, so the second walk must resume at position 4.
    n = 6
    edges = {u * n + v for u in range(n) for v in range(u + 1, n)}
    rank = {u: u for u in range(n)}
    ctx = ReduceContext.from_edges(edges, n, rank)
    trie = {}
    first = 0b011111  # vertices 0..4
    second = 0b111111  # vertices 0..5 — extends the first's prefix
    _, start_first = walk_reduce(ctx, first, trie)
    assert start_first == 0
    _, start_second = walk_reduce(ctx, second, trie)
    assert start_second == 5


# ---------------------------------------------------------------------------
# KernelState: cross-call exact hits, prefix extends, resets
# ---------------------------------------------------------------------------
def test_kernel_state_counts_exact_hits_across_calls():
    n = 4
    edges = {0 * n + 1, 1 * n + 2, 2 * n + 3, 0 * n + 3}
    rank = {u: u for u in range(n)}
    ctx = ReduceContext.from_edges(edges, n, rank)
    kernel = BitsetKernel()
    state = KernelState().for_edges(edges, n)
    first = ReduceStats()
    kernel.reduce_masks(ctx, [0b1111, 0b0111], state, first)
    assert first.exact_hits == 0
    assert first.misses == 2
    again = ReduceStats()
    marked = kernel.reduce_masks(ctx, [0b1111, 0b0111], state, again)
    assert again.exact_hits == 2
    assert again.misses == 0
    assert marked == {0 * n + 1, 1 * n + 2, 2 * n + 3}


def test_kernel_state_resets_when_edges_change():
    n = 3
    state = KernelState().for_edges({0 * n + 1}, n)
    state.seen_masks.add(0b11)
    state.marked_union.add(0 * n + 1)
    state.for_edges({0 * n + 1}, n)
    assert state.seen_masks == {0b11}
    state.for_edges({0 * n + 2}, n)
    assert state.seen_masks == set()
    assert state.marked_union == set()


def test_mask_cache_survives_edge_resets_but_not_n_change():
    state = KernelState()
    cache = state.mask_cache_for(4)
    cache[frozenset({1})] = 0b10
    state.for_edges({2}, 4)
    assert state.mask_cache_for(4) is cache
    assert state.mask_cache_for(5) == {}


def test_mining_state_reuses_kernel_state_across_finishes():
    state = MiningState()
    log = EventLog.from_sequences(
        ["SABCZ", "SACBZ", "SABZ", "SABCZ"] * 3
    )
    for execution in log:
        state.update(execution)
    first_trace = MiningTrace()
    first = state.finish(trace=first_trace)
    again_trace = MiningTrace()
    again = state.finish(trace=again_trace)
    assert first.edge_set() == again.edge_set()
    # Unchanged log + unchanged edges: every batched variant is now an
    # exact cache hit.
    assert again_trace.reduction_cache_misses == 0
    assert (
        again_trace.reduction_cache_hits
        >= first_trace.reduction_cache_misses
    )


def test_incremental_growth_hits_prefix_cache():
    # Same step-4 edge set both times (the superset log re-observes
    # every pair), growing variants: the second finish may extend
    # cached prefixes instead of re-walking from scratch.
    base = ["SABCDZ", "SABDCZ"]
    state = MiningState()
    for execution in EventLog.from_sequences(base * 2):
        state.update(execution)
    state.finish()
    for execution in EventLog.from_sequences(["SABCZ", "SABCDZ"]):
        state.update(execution)
    trace = MiningTrace()
    state.finish(trace=trace)
    assert (
        trace.reduction_cache_hits
        + trace.reduction_cache_prefix_extends
        > 0
    )


# ---------------------------------------------------------------------------
# Total-order qualification: soundness against degenerate pair sets
# ---------------------------------------------------------------------------
class TestTotalOrderMask:
    def test_accepts_total_order(self):
        n = 4
        pairs = frozenset(
            {0 * n + 1, 0 * n + 2, 1 * n + 2}
        )
        variant = PackedVariant(
            vertices=frozenset({0, 1, 2}),
            pairs=pairs,
            overlaps=frozenset(),
            multiplicity=1,
        )
        assert _total_order_mask(variant, n, None) == 0b111

    def test_rejects_two_cycle_with_matching_count(self):
        # {(0,1), (1,0), (0,2)} has C(3,2) = 3 pairs but is no
        # tournament: out-degrees are distinct, in-degrees are not.
        n = 3
        variant = PackedVariant(
            vertices=frozenset({0, 1, 2}),
            pairs=frozenset({0 * n + 1, 1 * n + 0, 0 * n + 2}),
            overlaps=frozenset(),
            multiplicity=1,
        )
        assert _total_order_mask(variant, n, None) is None

    def test_rejects_self_pair(self):
        n = 3
        variant = PackedVariant(
            vertices=frozenset({0, 1, 2}),
            pairs=frozenset({0 * n + 0, 0 * n + 1, 1 * n + 2}),
            overlaps=frozenset(),
            multiplicity=1,
        )
        assert _total_order_mask(variant, n, None) is None

    def test_rejects_overlapping_variant(self):
        n = 2
        variant = PackedVariant(
            vertices=frozenset({0, 1}),
            pairs=frozenset({0 * n + 1}),
            overlaps=frozenset({0 * n + 1}),
            multiplicity=1,
        )
        assert _total_order_mask(variant, n, None) is None

    def test_rejects_endpoint_outside_vertices(self):
        # Pair endpoints may exceed the variant's completed vertices
        # (labelled interning covers overlap endpoints); such variants
        # must not qualify even when the count matches.
        n = 3
        variant = PackedVariant(
            vertices=frozenset({0, 1}),
            pairs=frozenset({0 * n + 2}),
            overlaps=frozenset(),
            multiplicity=1,
        )
        assert _total_order_mask(variant, n, None) is None

    def test_singleton_and_empty_variants_qualify(self):
        n = 2
        singleton = PackedVariant(
            vertices=frozenset({1}),
            pairs=frozenset(),
            overlaps=frozenset(),
            multiplicity=1,
        )
        assert _total_order_mask(singleton, n, None) == 0b10

    def test_caches_verdicts(self):
        n = 3
        variant = PackedVariant(
            vertices=frozenset({0, 1}),
            pairs=frozenset({0 * n + 1}),
            overlaps=frozenset(),
            multiplicity=1,
        )
        cache = {}
        assert _total_order_mask(variant, n, cache) == 0b11
        assert cache[variant.pairs] == 0b11
        cache[variant.pairs] = 0b1  # poison to prove the hit
        assert _total_order_mask(variant, n, cache) == 0b1


# ---------------------------------------------------------------------------
# Closure bitset vs the materialized closure graph
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_closure_bitset_matches_closure_graph(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 10)
    nodes = [chr(ord("A") + i) for i in range(n)]
    edges = [
        (a, b)
        for a in nodes
        for b in nodes
        if a != b and rng.random() < 0.25
    ]
    graph = DiGraph(nodes=nodes, edges=edges)
    closure = transitive_closure(graph)
    bitset = transitive_closure_bitset(graph)
    assert bitset.edge_set() == closure.edge_set()
    for a in nodes:
        for b in nodes:
            assert bitset.has_edge(a, b) == closure.has_edge(a, b)
    assert not bitset.has_edge("missing", nodes[0])


# ---------------------------------------------------------------------------
# Lazy trace counters and mask packing
# ---------------------------------------------------------------------------
def test_lazy_pair_counts_match_eager_reference():
    log = EventLog.from_sequences(["SABZ", "SBAZ", "SACZ", "SABZ"])
    lazy_trace, ref_trace = MiningTrace(), MiningTrace()
    mine_general_dag(log, trace=lazy_trace, kernel="bitset")
    mine_general_dag_reference(log, trace=ref_trace)
    assert lazy_trace._pair_counts is None  # still deferred
    assert lazy_trace.pair_counts == ref_trace.pair_counts
    assert lazy_trace._pair_counts is not None  # materialized once
    assert lazy_trace.overlap_counts == ref_trace.overlap_counts


def test_publish_does_not_materialize_pair_counts():
    from repro.obs.recorder import ObsRecorder

    log = EventLog.from_sequences(["SABZ", "SBAZ", "SACZ"])
    trace = MiningTrace(recorder=ObsRecorder())
    mine_general_dag(log, trace=trace, kernel="bitset")
    assert trace._pair_counts is None


def test_pack_masks_roundtrip():
    masks = [0, 1, (1 << 70) | 5, 2**128 - 1]
    blob = pack_masks(masks, 17)
    assert unpack_masks(blob, 17) == masks
    with pytest.raises(ValueError):
        unpack_masks(b"\x00" * 5, 2)


def test_parallel_mask_fanout_matches_serial():
    rng = random.Random(7)
    sequences = []
    for _ in range(300):
        chosen = [c for c in "ABCDEFG" if rng.random() < 0.7]
        sequences.append(["S", *chosen, "Z"])
    log = EventLog.from_sequences(sequences)
    serial = mine_general_dag(log, jobs=1, kernel="bitset")
    fanned = mine_general_dag(log, jobs=2, kernel="bitset")
    ref = mine_general_dag_reference(log)
    assert serial.edge_set() == fanned.edge_set() == ref.edge_set()
    assert (
        set(serial.nodes()) == set(fanned.nodes()) == set(ref.nodes())
    )
