"""Tests for the ProcessMiner facade and MiningResult."""

import pytest

from repro.core.miner import (
    ALGORITHM_CYCLIC,
    ALGORITHM_GENERAL,
    ALGORITHM_SPECIAL,
    ProcessMiner,
)
from repro.datasets.examples import (
    example6_log,
    example7_log,
    example8_log,
)
from repro.errors import EmptyLogError, MiningError
from repro.logs.event_log import EventLog


class TestAutoDispatch:
    def test_complete_log_uses_algorithm1(self):
        result = ProcessMiner().mine(example6_log())
        assert result.algorithm == ALGORITHM_SPECIAL

    def test_optional_activities_use_algorithm2(self):
        result = ProcessMiner().mine(example7_log())
        assert result.algorithm == ALGORITHM_GENERAL

    def test_repetitions_use_algorithm3(self):
        result = ProcessMiner().mine(example8_log())
        assert result.algorithm == ALGORITHM_CYCLIC

    def test_explicit_algorithm_respected(self):
        result = ProcessMiner(algorithm=ALGORITHM_GENERAL).mine(
            example6_log()
        )
        assert result.algorithm == ALGORITHM_GENERAL

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            ProcessMiner(algorithm="magic")

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ProcessMiner(threshold=-3)

    def test_threshold_with_algorithm1_rejected(self):
        miner = ProcessMiner(algorithm=ALGORITHM_SPECIAL, threshold=5)
        with pytest.raises(MiningError, match="threshold"):
            miner.mine(example6_log())

    def test_empty_log_rejected(self):
        with pytest.raises(EmptyLogError):
            ProcessMiner().mine(EventLog())


class TestMiningResult:
    def test_endpoints_detected(self):
        result = ProcessMiner().mine(example7_log())
        assert result.source == "A"
        assert result.sink == "F"

    def test_ambiguous_endpoints_are_none(self):
        log = EventLog.from_sequences(["ABZ", "XBZ"])
        result = ProcessMiner().mine(log)
        assert result.source is None

    def test_to_process_model(self):
        result = ProcessMiner().mine(example7_log())
        model = result.to_process_model("recovered")
        assert model.name == "recovered"
        assert model.source == "A"
        assert model.sink == "F"
        assert model.graph.edge_set() == result.graph.edge_set()

    def test_to_process_model_with_conditions(self):
        result = ProcessMiner(learn_conditions=True).mine(example7_log())
        model = result.to_process_model()
        # Flowmark-style logs without outputs: all conditions Always.
        from repro.model.conditions import Always

        for edge in model.edges():
            assert model.condition(*edge) == Always()

    def test_conditions_empty_when_not_requested(self):
        result = ProcessMiner().mine(example7_log())
        assert result.conditions == {}

    def test_conditions_present_when_requested(self):
        result = ProcessMiner(learn_conditions=True).mine(example7_log())
        assert set(result.conditions) == result.graph.edge_set()

    def test_trace_populated_for_algorithm2(self):
        result = ProcessMiner(algorithm=ALGORITHM_GENERAL).mine(
            example7_log()
        )
        assert result.trace.edges_after_step2 > 0

    def test_mined_graph_conformal(self):
        from repro.core.conformance import check_conformance

        for log in (example6_log(), example7_log()):
            result = ProcessMiner().mine(log)
            report = check_conformance(result.graph, log)
            assert report.is_conformal, report.violations()
