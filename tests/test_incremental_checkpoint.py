"""Tests for IncrementalMiner checkpoint/resume crash-safety."""

import json
import os

import pytest

from repro.core.incremental import (
    MODE_CYCLIC,
    MODE_GENERAL,
    IncrementalMiner,
)
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.errors import CheckpointError

SEQUENCES = ["ABCF", "ACDF", "ABDF", "ABCDF", "ABCF", "ACDF"]


def mined_all(mode=MODE_GENERAL, threshold=0):
    miner = IncrementalMiner(mode=mode, threshold=threshold)
    for seq in SEQUENCES:
        miner.add_sequence(seq)
    return miner


class TestResumeEquivalence:
    @pytest.mark.parametrize("mode", [MODE_GENERAL, MODE_CYCLIC])
    def test_checkpoint_resume_feed_equals_single_run(
        self, tmp_path, mode
    ):
        # Acceptance criterion: checkpoint -> kill -> resume -> feed the
        # rest must equal feeding everything to one miner.
        path = tmp_path / "miner.ckpt"
        first = IncrementalMiner(mode=mode)
        for seq in SEQUENCES[:3]:
            first.add_sequence(seq)
        first.checkpoint(path)
        del first  # "kill" the process

        resumed = IncrementalMiner.resume(path)
        for seq in SEQUENCES[3:]:
            resumed.add_sequence(seq)
        single = mined_all(mode=mode)
        assert resumed.graph().edge_set() == single.graph().edge_set()
        assert resumed.execution_count == single.execution_count

    def test_resume_on_synthetic_log(self, tmp_path):
        log = synthetic_dataset(
            SyntheticConfig(n_vertices=10, n_executions=30, seed=5)
        ).log
        path = tmp_path / "miner.ckpt"
        miner = IncrementalMiner()
        for execution in log.executions[:15]:
            miner.add(execution)
        miner.checkpoint(path)
        resumed = IncrementalMiner.resume(path)
        for execution in log.executions[15:]:
            resumed.add(execution)
        single = IncrementalMiner()
        single.add_log(log)
        assert resumed.graph().edge_set() == single.graph().edge_set()

    def test_mode_threshold_and_stability_survive(self, tmp_path):
        path = tmp_path / "miner.ckpt"
        miner = IncrementalMiner(mode=MODE_GENERAL, threshold=2)
        for seq in SEQUENCES:
            miner.add_sequence(seq)
        miner.graph()
        miner.graph()
        before = miner.stability()
        miner.checkpoint(path)
        resumed = IncrementalMiner.resume(path)
        assert resumed.mode == MODE_GENERAL
        assert resumed.threshold == 2
        assert resumed.stability() == before
        # A materialization with an unchanged edge set keeps counting up.
        resumed.graph()
        assert resumed.stability() == before + 1

    def test_checkpoint_of_empty_miner(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        IncrementalMiner().checkpoint(path)
        resumed = IncrementalMiner.resume(path)
        assert resumed.execution_count == 0
        resumed.add_sequence("ABC")
        assert resumed.graph().has_edge("A", "B")


class TestAtomicity:
    def test_crash_during_write_preserves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "miner.ckpt"
        miner = mined_all()
        miner.checkpoint(path)
        good = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        miner.add_sequence("XYZ")
        with pytest.raises(OSError):
            miner.checkpoint(path)
        monkeypatch.undo()
        # The old checkpoint is intact and no temp litter remains.
        assert path.read_bytes() == good
        assert [p.name for p in tmp_path.iterdir()] == ["miner.ckpt"]
        assert IncrementalMiner.resume(path).execution_count == len(
            SEQUENCES
        )

    def test_crash_during_serialization_leaves_no_partial_file(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "fresh.ckpt"

        def exploding_dump(*args, **kwargs):
            raise RuntimeError("simulated serialization crash")

        monkeypatch.setattr(json, "dumps", exploding_dump)
        with pytest.raises(RuntimeError):
            mined_all().checkpoint(path)
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []


class TestCorruptCheckpoints:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            IncrementalMiner.resume(tmp_path / "nope.ckpt")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="cannot read"):
            IncrementalMiner.resume(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.ckpt"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError, match="not an incremental"):
            IncrementalMiner.resume(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_text(json.dumps({
            "format": "repro-incremental-checkpoint", "version": 999,
        }))
        with pytest.raises(CheckpointError, match="version"):
            IncrementalMiner.resume(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "hollow.ckpt"
        path.write_text(json.dumps({
            "format": "repro-incremental-checkpoint", "version": 1,
        }))
        with pytest.raises(CheckpointError, match="corrupt"):
            IncrementalMiner.resume(path)


class TestCheckpointV3:
    def test_checkpoint_writes_version_3_canonical_state(self, tmp_path):
        path = tmp_path / "v3.ckpt"
        mined_all().checkpoint(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 3
        state = payload["state"]
        assert state["labels"] == sorted(set("ABCDF"))
        # Duplicated sequences collapse into weighted variants.
        assert len(state["variants"]) < len(SEQUENCES)
        assert (
            sum(v["count"] for v in state["variants"]) == len(SEQUENCES)
        )
        assert state["execution_count"] == len(SEQUENCES)
        # Pairs are packed codes relative to the labels table.
        n = len(state["labels"])
        for variant in state["variants"]:
            for code in variant["pairs"]:
                assert 0 <= code < n * n

    def test_checkpoint_bytes_are_ingest_order_independent(
        self, tmp_path
    ):
        # The v3 payload is canonical: two miners fed the same log in
        # different orders write byte-identical checkpoints.
        forward = IncrementalMiner()
        backward = IncrementalMiner()
        for seq in SEQUENCES:
            forward.add_sequence(seq)
        for seq in reversed(SEQUENCES):
            backward.add_sequence(seq)
        path_a = tmp_path / "fwd.ckpt"
        path_b = tmp_path / "bwd.ckpt"
        forward.checkpoint(path_a)
        backward.checkpoint(path_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    @pytest.mark.parametrize("mode", [MODE_GENERAL, MODE_CYCLIC])
    def test_v3_roundtrip_preserves_variants_and_graph(
        self, tmp_path, mode
    ):
        path = tmp_path / "round.ckpt"
        original = mined_all(mode=mode)
        graph_before = original.graph()
        original.checkpoint(path)
        resumed = IncrementalMiner.resume(path)
        assert resumed.execution_count == original.execution_count
        assert resumed.variant_count == original.variant_count
        assert resumed.graph().edge_set() == graph_before.edge_set()
        assert set(resumed.graph().nodes()) == set(graph_before.nodes())

    def test_resume_reads_legacy_v1_payload(self, tmp_path):
        # A v1 checkpoint (one entry per execution, label-level pairs)
        # written by an earlier release must still resume.
        path = tmp_path / "legacy.ckpt"
        path.write_text(json.dumps({
            "format": "repro-incremental-checkpoint",
            "version": 1,
            "mode": MODE_GENERAL,
            "threshold": 0,
            "executions": [
                {
                    "vertices": ["A", "B"],
                    "pairs": [["A", "B"]],
                    "overlaps": [],
                },
                {
                    "vertices": ["A", "B"],
                    "pairs": [["A", "B"]],
                    "overlaps": [],
                },
            ],
            "last_edges": None,
            "stable_since": 0,
        }))
        miner = IncrementalMiner.resume(path)
        assert miner.execution_count == 2
        assert miner.variant_count == 1
        assert miner.graph().edge_set() == {("A", "B")}

    def test_resume_reads_legacy_v2_payload(self, tmp_path):
        # A v2 checkpoint (interning table + packed weighted variants)
        # written by an earlier release must still resume.
        path = tmp_path / "legacy2.ckpt"
        path.write_text(json.dumps({
            "format": "repro-incremental-checkpoint",
            "version": 2,
            "mode": MODE_GENERAL,
            "threshold": 0,
            "labels": ["A", "B", "C"],
            "variants": [
                # A->B->C packed against n=3: (0,1)=1, (1,2)=5, (0,2)=2.
                {"vertices": [0, 1, 2], "pairs": [1, 2, 5],
                 "overlaps": [], "count": 3},
            ],
            "execution_count": 3,
            "last_edges": None,
            "stable_since": 0,
        }))
        miner = IncrementalMiner.resume(path)
        assert miner.execution_count == 3
        assert miner.variant_count == 1
        assert miner.graph().edge_set() == {("A", "B"), ("B", "C")}

    def test_v2_bad_multiplicity_is_corrupt(self, tmp_path):
        path = tmp_path / "badcount.ckpt"
        path.write_text(json.dumps({
            "format": "repro-incremental-checkpoint",
            "version": 2,
            "mode": MODE_GENERAL,
            "threshold": 0,
            "labels": ["A", "B"],
            "variants": [
                {"vertices": [0, 1], "pairs": [1], "overlaps": [],
                 "count": 0},
            ],
            "execution_count": 0,
            "last_edges": None,
            "stable_since": 0,
        }))
        with pytest.raises(CheckpointError):
            IncrementalMiner.resume(path)
