"""Parity: the batched ingest fast paths vs per-record ingestion.

Three layers of fast path, one claim each:

* :meth:`FoldingIngestStream.push_batch` (block scan + signature memo
  + direct variant folding) must leave the mining state, the ingest
  report, the quarantine contents and any raised error byte-identical
  to pushing every line through :meth:`IngestStream.push` and calling
  ``state.update`` per execution — across policies, block boundaries,
  window sizes and memo eviction.
* The prepared-variant memo inside :meth:`MiningState.update` must be
  invisible: any memo size folds to the same payload as the unmemoized
  state.
* :meth:`Tenant.ingest`'s batched path must preserve the per-line
  contract under strict errors — pre-error executions folded, the line
  counter resting on the offending line.

Deterministic adversarial families pin the known edge cases (ties,
interleavings, junk, late records, tiny memos); hypothesis drives
random mixtures of them over random block/window/memo geometry.
"""

import dataclasses
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import MiningState
from repro.errors import LogFormatError
from repro.logs import jsonl
from repro.logs.execution import Execution
from repro.logs.fastfold import FoldingIngestStream
from repro.logs.ingest import IngestStream, Quarantine
from repro.service.registry import Tenant, TenantConfig

POLICIES = ("strict", "skip", "repair")
BLOCK_SIZES = (1, 3, 7, 100)


def line(activity, eid, event_type, time, output=None, process="p"):
    return json.dumps(
        {
            "activity": activity,
            "execution": eid,
            "output": output,
            "process": process,
            "time": time,
            "type": event_type,
        },
        sort_keys=True,
    )


def reference_run(lines, policy, window):
    """Per-line pushes into an unmemoized state — the ground truth."""
    quarantine = Quarantine()
    stream = IngestStream(
        jsonl.record_from_json,
        policy=policy,
        quarantine=quarantine,
        window=window,
    )
    state = MiningState(memo_size=0)
    error = None
    try:
        for number, raw in enumerate(lines, 1):
            if not raw.strip():
                continue  # readers skip blanks before push
            for execution in stream.push(number, raw):
                state.update(execution)
        for execution in stream.flush():
            state.update(execution)
    except Exception as exc:  # noqa: BLE001 — parity includes errors
        error = repr(exc)
    return (
        state.to_payload(),
        dataclasses.asdict(stream.report),
        [dataclasses.asdict(item) for item in quarantine.items],
        error,
    )


def fast_run(lines, policy, window, block=7, memo_size=16384, scan=True):
    """Block pushes through the folding fast path."""
    quarantine = Quarantine()
    stream = FoldingIngestStream(
        jsonl.record_from_json,
        state=MiningState(),
        policy=policy,
        quarantine=quarantine,
        window=window,
        parse_batch=jsonl.parse_batch,
        scan_batch=jsonl.scan_batch if scan else None,
        memo_size=memo_size,
    )
    error = None
    try:
        for index in range(0, len(lines), block):
            stream.push_batch(index + 1, lines[index : index + block])
        stream.flush()
    except Exception as exc:  # noqa: BLE001
        error = repr(exc)
    return (
        stream.state.to_payload(),
        dataclasses.asdict(stream.report),
        [dataclasses.asdict(item) for item in quarantine.items],
        error,
    )


def _clean_repeat():
    lines, time = [], 0.0
    for eid in range(6):
        for activity in "abc":
            lines.append(line(activity, f"e{eid}", "START", time))
            time += 0.5
            lines.append(
                line(activity, f"e{eid}", "END", time, [1.0, 2.5])
            )
            time += 0.5
    return lines


def _repeated_activity():
    lines = []
    for eid in range(3):
        time = 0.0
        for activity in ("a", "b", "a"):
            lines.append(line(activity, f"r{eid}", "START", time))
            time += 1
            lines.append(line(activity, f"r{eid}", "END", time))
            time += 1
    return lines


def _overlap():
    lines = []
    for eid in range(3):
        lines += [
            line("a", f"o{eid}", "START", 0.0),
            line("b", f"o{eid}", "START", 0.5),
            line("a", f"o{eid}", "END", 1.0),
            line("b", f"o{eid}", "END", 1.5),
        ]
    return lines


def _ties_disorder():
    lines = []
    for eid in range(3):
        lines += [
            line("a", f"t{eid}", "START", 1.0),
            line("a", f"t{eid}", "END", 1.0),
            line("b", f"t{eid}", "END", 0.5),
            line("b", f"t{eid}", "START", 0.25),
        ]
    return lines


def _junk():
    return [
        line("a", "j0", "START", 0.0),
        "",
        "   ",
        "{not json",
        # Field order the canonical scanner cannot prove.
        '{"execution": "j9", "activity": "x", "output": null, '
        '"process": "p", "time": 1.0, "type": "START"}',
        line("a", "j0", "END", 1.0),
        # Escapes, non-finite time, START with output.
        '{"activity": "a\\"b", "execution": "j1", "output": null, '
        '"process": "p", "time": 2.0, "type": "START"}',
        '{"activity": "c", "execution": "j2", "output": null, '
        '"process": "p", "time": 1e999, "type": "START"}',
        '{"activity": "c", "execution": "j3", "output": [1.0], '
        '"process": "p", "time": 3.0, "type": "START"}',
        line("d", "j4", "START", 4.0),
        line("d", "j4", "END", 5.0),
    ]


def _mixed_process():
    return [
        line("a", "m0", "START", 0.0),
        line("a", "m0", "END", 1.0),
        line("b", "m1", "START", 2.0, process="q"),
        line("b", "m1", "END", 3.0),
    ]


def _late_record():
    lines = [line("a", "l0", "START", 0.0), line("a", "l0", "END", 1.0)]
    for k in range(8):
        lines.append(line("x", f"lf{k}", "START", 2.0 + k))
        lines.append(line("x", f"lf{k}", "END", 2.5 + k))
    lines.append(line("z", "l0", "START", 99.0))
    return lines


#: name -> (lines, window, signature-memo size)
CASES = {
    "clean-repeat": (_clean_repeat(), 64, 16384),
    "repeated-activity": (_repeated_activity(), 64, 16384),
    "overlap": (_overlap(), 64, 16384),
    "ties-disorder": (_ties_disorder(), 64, 16384),
    "unmatched-end": (
        [
            line("a", "u0", "END", 1.0),
            line("b", "u1", "START", 2.0),
            line("b", "u1", "END", 3.0),
        ],
        64,
        16384,
    ),
    "junk": (_junk(), 64, 16384),
    "mixed-process": (_mixed_process(), 64, 16384),
    "late-record": (_late_record(), 4, 16384),
    "tiny-memo": (_clean_repeat(), 64, 2),
    "memo-off": (_clean_repeat(), 64, 0),
}


class TestAdversarialParity:
    @pytest.mark.parametrize("name", sorted(CASES))
    @pytest.mark.parametrize("policy", POLICIES)
    def test_case_family(self, name, policy):
        lines, window, memo_size = CASES[name]
        expected = reference_run(lines, policy, window)
        for block in BLOCK_SIZES:
            for scan in (True, False):
                got = fast_run(
                    lines,
                    policy,
                    window,
                    block=block,
                    memo_size=memo_size,
                    scan=scan,
                )
                assert got == expected, (
                    f"{name}/{policy} diverged at block={block} "
                    f"scan={scan}"
                )


@st.composite
def line_soups(draw):
    """A random mixture of clean, messy and junk lines plus geometry."""
    seed = draw(st.integers(min_value=0, max_value=99_999))
    rng = random.Random(seed)
    lines = []
    time = 0.0
    for eid in range(draw(st.integers(min_value=1, max_value=8))):
        shape = rng.choice(("clean", "clean", "overlap", "disorder"))
        activities = [
            rng.choice("abcd")
            for _ in range(rng.randint(1, 4))
        ]
        block = []
        if shape == "clean":
            for activity in dict.fromkeys(activities):
                block.append(line(activity, f"e{eid}", "START", time))
                time += 0.5
                block.append(line(activity, f"e{eid}", "END", time))
                time += 0.5
        elif shape == "overlap":
            for offset, activity in enumerate(activities):
                block.append(
                    line(activity, f"e{eid}", "START", time + offset)
                )
            for offset, activity in enumerate(activities):
                block.append(
                    line(
                        activity,
                        f"e{eid}",
                        "END",
                        time + len(activities) + offset,
                    )
                )
            time += 2 * len(activities)
        else:  # disorder: shuffled events, tie-prone timestamps
            for activity in activities:
                block.append(
                    line(activity, f"e{eid}", "START", rng.randint(0, 3))
                )
                block.append(
                    line(activity, f"e{eid}", "END", rng.randint(0, 3))
                )
            rng.shuffle(block)
        lines.extend(block)
        if rng.random() < 0.3:
            lines.append(
                rng.choice(
                    [
                        "",
                        "   ",
                        "{broken",
                        line("z", f"x{eid}", "START", 0.0, process="q"),
                        '{"activity": "n", "execution": "n", '
                        '"output": null, "process": "p", '
                        '"time": 1e999, "type": "START"}',
                    ]
                )
            )
    if draw(st.booleans()):
        # Whole-soup repetition under fresh ids: memo-hit territory.
        lines = lines + [
            raw.replace('"e', '"f') if '"e' in raw else raw
            for raw in lines
        ]
    window = draw(st.sampled_from([2, 4, 64, None]))
    block = draw(st.integers(min_value=1, max_value=16))
    memo_size = draw(st.sampled_from([0, 2, 16384]))
    policy = draw(st.sampled_from(POLICIES))
    scan = draw(st.booleans())
    return lines, window, block, memo_size, policy, scan


class TestPropertyParity:
    @given(line_soups())
    @settings(max_examples=120, deadline=None)
    def test_push_batch_matches_per_line(self, soup):
        lines, window, block, memo_size, policy, scan = soup
        expected = reference_run(lines, policy, window)
        got = fast_run(
            lines,
            policy,
            window,
            block=block,
            memo_size=memo_size,
            scan=scan,
        )
        assert got == expected

    @given(
        st.lists(
            st.lists(
                st.sampled_from("abcde"), min_size=1, max_size=5
            ),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from([0, 1, 2, 65536]),
    )
    @settings(max_examples=80, deadline=None)
    def test_update_memo_is_invisible(self, sequences, memo_size):
        """Any memo size (incl. eviction-heavy) folds identically."""
        executions = [
            Execution.from_sequence(
                sequence, execution_id=f"e{index:03d}",
                start_time=float(index),
            )
            for index, sequence in enumerate(sequences)
        ]
        # Repeat the log so small memos evict and re-miss.
        executions = executions + executions
        plain = MiningState(memo_size=0)
        memoized = MiningState(memo_size=memo_size)
        for execution in executions:
            plain.update(execution)
            memoized.update(execution)
        assert memoized.to_payload() == plain.to_payload()
        if memo_size:
            assert memoized.memo_hits + memoized.memo_misses == len(
                executions
            )

    @given(
        st.lists(
            st.sampled_from("abcdefg"),
            min_size=1,
            max_size=7,
            unique=True,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_sequence_matches_pack_execution(self, sequence):
        direct = MiningState().pack_sequence(sequence)
        classic = MiningState()._pack_execution(
            Execution.from_sequence(
                sequence, execution_id="e", start_time=0.0
            )
        )
        assert direct == classic

    def test_pack_sequence_declines_repeats_and_labelled(self):
        assert MiningState().pack_sequence(["a", "b", "a"]) is None
        assert MiningState(labelled=True).pack_sequence(["a"]) is None


class TestTenantBatchedIngest:
    def _tenant(self, tmp_path, name, **overrides):
        # The tenant's process name is owned by the URL; every test
        # log speaks process "p", so each tenant mines "p" from its
        # own directory.
        config = TenantConfig(**overrides)
        tenant = Tenant("p", tmp_path / name, config)
        tenant.recover()
        return tenant

    def _payload(self, tenant):
        return tenant.session.state.to_payload()

    def test_batch_matches_per_line_tenant(self, tmp_path):
        lines = _junk() + _clean_repeat()
        batched = self._tenant(tmp_path, "batched")
        batched.ingest([raw for raw in lines if raw.strip()])
        batched.flush()
        single = self._tenant(tmp_path, "single")
        for raw in lines:
            if raw.strip():
                single.ingest([raw])
        single.flush()
        assert self._payload(batched) == self._payload(single)
        assert batched.report.accepted_executions == (
            single.report.accepted_executions
        )
        batched.close()
        single.close()

    def test_strict_error_restores_line_accounting(self, tmp_path):
        good = _clean_repeat()
        lines = good[:5] + ["{broken"] + good[5:]
        tenant = self._tenant(tmp_path, "strict", policy="strict")
        with pytest.raises(LogFormatError) as excinfo:
            tenant.ingest(lines)
        assert excinfo.value.line_number == 6
        # The counter rests on the offending line: the retry resumes
        # numbering right after it, as per-line pushing would.
        assert tenant._line_number == 6
        tenant.ingest(good[5:])
        tenant.flush()
        reference = self._tenant(tmp_path, "ref", policy="strict")
        reference.ingest(good)
        reference.flush()
        assert self._payload(tenant) == self._payload(reference)
        tenant.close()
        reference.close()

    def test_strict_error_still_folds_prior_executions(self, tmp_path):
        # e0's six lines, e1's six lines, then a broken line.  With a
        # 4-record window e0 expires while e1's records stream past, so
        # it is already folded when line 13 raises.
        lines = _clean_repeat()[:12] + ["{broken"]
        tenant = self._tenant(
            tmp_path, "fold", policy="strict", window=4
        )
        with pytest.raises(LogFormatError):
            tenant.ingest(lines)
        assert tenant.session.state.execution_count == 1
        tenant.close()
