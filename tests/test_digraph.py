"""Unit tests for repro.graphs.digraph."""

import pytest

from repro.errors import DuplicateNodeError, NodeNotFoundError
from repro.graphs.digraph import DiGraph


class TestNodeOperations:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.node_count == 0
        assert g.edge_count == 0
        assert list(g.nodes()) == []

    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node("A")
        g.add_node("A")
        assert g.node_count == 1

    def test_add_new_node_rejects_duplicates(self):
        g = DiGraph(nodes=["A"])
        with pytest.raises(DuplicateNodeError):
            g.add_new_node("A")

    def test_nodes_preserve_insertion_order(self):
        g = DiGraph(nodes=["C", "A", "B"])
        assert list(g.nodes()) == ["C", "A", "B"]

    def test_remove_node_drops_incident_edges(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C"), ("C", "A")])
        g.remove_node("B")
        assert not g.has_node("B")
        assert g.edge_set() == {("C", "A")}

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            DiGraph().remove_node("X")

    def test_contains_and_len(self):
        g = DiGraph(nodes=["A", "B"])
        assert "A" in g
        assert "Z" not in g
        assert len(g) == 2

    def test_nodes_may_be_tuples(self):
        # Algorithm 3 uses (activity, instance) vertices.
        g = DiGraph(edges=[(("A", 1), ("A", 2))])
        assert g.has_edge(("A", 1), ("A", 2))


class TestEdgeOperations:
    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge("A", "B")
        assert g.has_node("A") and g.has_node("B")
        assert g.has_edge("A", "B")
        assert not g.has_edge("B", "A")

    def test_parallel_edges_collapse(self):
        g = DiGraph()
        g.add_edge("A", "B")
        g.add_edge("A", "B")
        assert g.edge_count == 1

    def test_self_loop_allowed(self):
        g = DiGraph()
        g.add_edge("A", "A")
        assert g.has_edge("A", "A")
        assert g.in_degree("A") == 1
        assert g.out_degree("A") == 1

    def test_remove_edge_is_tolerant(self):
        g = DiGraph(edges=[("A", "B")])
        g.remove_edge("A", "B")
        g.remove_edge("A", "B")  # no error
        g.remove_edge("X", "Y")  # endpoints absent: no error
        assert g.edge_count == 0

    def test_edge_set(self):
        edges = {("A", "B"), ("B", "C")}
        assert DiGraph(edges=edges).edge_set() == edges

    def test_degrees(self):
        g = DiGraph(edges=[("A", "B"), ("A", "C"), ("B", "C")])
        assert g.out_degree("A") == 2
        assert g.in_degree("C") == 2
        assert g.in_degree("A") == 0

    def test_degree_of_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            DiGraph().out_degree("A")


class TestNeighbourhoods:
    def test_successors_and_predecessors(self):
        g = DiGraph(edges=[("A", "B"), ("A", "C"), ("C", "B")])
        assert g.successors("A") == {"B", "C"}
        assert g.predecessors("B") == {"A", "C"}

    def test_neighbour_sets_are_copies(self):
        g = DiGraph(edges=[("A", "B")])
        succ = g.successors("A")
        succ.add("Z")
        assert g.successors("A") == {"B"}

    def test_sources_and_sinks(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        assert g.sources() == ["A"]
        assert g.sinks() == ["C"]

    def test_isolated_node_is_source_and_sink(self):
        g = DiGraph(nodes=["X"])
        assert g.sources() == ["X"]
        assert g.sinks() == ["X"]


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = DiGraph(edges=[("A", "B")])
        clone = g.copy()
        clone.add_edge("B", "C")
        assert not g.has_node("C")
        assert g == DiGraph(edges=[("A", "B")])

    def test_reversed(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        assert g.reversed().edge_set() == {("B", "A"), ("C", "B")}

    def test_reversed_keeps_isolated_nodes(self):
        g = DiGraph(nodes=["X"], edges=[("A", "B")])
        assert g.reversed().has_node("X")

    def test_subgraph_induced(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C"), ("A", "C")])
        sub = g.subgraph({"A", "C"})
        assert sub.edge_set() == {("A", "C")}
        assert set(sub.nodes()) == {"A", "C"}

    def test_subgraph_ignores_unknown_nodes(self):
        g = DiGraph(edges=[("A", "B")])
        sub = g.subgraph({"A", "Z"})
        assert set(sub.nodes()) == {"A"}

    def test_edge_subgraph_keeps_all_nodes(self):
        g = DiGraph(edges=[("A", "B"), ("B", "C")])
        restricted = g.edge_subgraph([("A", "B"), ("X", "Y")])
        assert restricted.edge_set() == {("A", "B")}
        assert set(restricted.nodes()) == {"A", "B", "C"}


class TestEquality:
    def test_equality_ignores_insertion_order(self):
        g1 = DiGraph(nodes=["A", "B"], edges=[("A", "B")])
        g2 = DiGraph(nodes=["B", "A"], edges=[("A", "B")])
        assert g1 == g2

    def test_inequality_on_edges(self):
        g1 = DiGraph(edges=[("A", "B")])
        g2 = DiGraph(nodes=["A", "B"])
        assert g1 != g2

    def test_comparison_with_non_graph(self):
        assert DiGraph() != 42

    def test_repr(self):
        assert repr(DiGraph(edges=[("A", "B")])) == "DiGraph(nodes=2, edges=1)"
