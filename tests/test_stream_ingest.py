"""Windowed streaming ingestion (:func:`iter_ingest_lines` and the
codec/JSONL iterators built on it).

The contract under test: for logs our own codecs write (executions
contiguous), any window yields exactly the executions batch ingestion
builds, in the same order — and ``window=None`` *is* batch semantics.
Late records (arriving after their execution's window closed) are the
one new failure mode streaming introduces; they error under ``strict``
and quarantine as ``late-record`` otherwise.
"""

import io

import pytest

from repro.errors import LogFormatError, ResourceLimitError
from repro.logs.codec import (
    format_record,
    ingest_log,
    iter_ingest_log,
    iter_ingest_log_file,
)
from repro.logs.execution import Execution
from repro.logs.ingest import (
    POLICY_SKIP,
    POLICY_STRICT,
    REASON_LATE_RECORD,
    IngestLimits,
    IngestReport,
    Quarantine,
)
from repro.logs.jsonl import (
    iter_ingest_log_jsonl,
    record_to_json,
    write_log_jsonl,
)

PROCESS = "claims"


def log_text(sequences, process=PROCESS, interleave=False):
    """Render sequences as codec lines — contiguous or round-robin."""
    executions = [
        Execution.from_sequence(
            list(seq), execution_id=f"e{i:03d}", start_time=float(i)
        )
        for i, seq in enumerate(sequences)
    ]
    if interleave:
        queues = [list(execution.records) for execution in executions]
        lines = []
        while any(queues):
            for queue in queues:
                if queue:
                    lines.append(format_record(queue.pop(0), process))
    else:
        lines = [
            format_record(record, process)
            for execution in executions
            for record in execution.records
        ]
    return "\n".join(lines) + "\n"


def stream(text, **kwargs):
    return list(iter_ingest_log(io.StringIO(text), **kwargs))


SEQUENCES = ["ABCF", "ACDF", "ABDF"]


class TestWindowSemantics:
    def test_contiguous_log_streams_identically_at_any_window(self):
        text = log_text(SEQUENCES)
        batch = ingest_log(io.StringIO(text)).log
        for window in (1, 2, 7, None):
            streamed = stream(text, window=window)
            assert [e.execution_id for e in streamed] == [
                e.execution_id for e in batch
            ]
            assert [
                [r.activity for r in e.records] for e in streamed
            ] == [[r.activity for r in e.records] for e in batch]

    def test_interleaved_log_needs_a_covering_window(self):
        # Three executions interleaved record-by-record: any window
        # covering one full round (>= number of open executions'
        # records between touches) must reassemble them all.
        text = log_text(SEQUENCES, interleave=True)
        streamed = stream(text, window=64)
        assert sorted(e.execution_id for e in streamed) == [
            "e000",
            "e001",
            "e002",
        ]
        batch = {
            e.execution_id: [r.activity for r in e.records]
            for e in ingest_log(io.StringIO(text)).log
        }
        for execution in streamed:
            assert [
                r.activity for r in execution.records
            ] == batch[execution.execution_id]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            stream(log_text(SEQUENCES), window=0)

    def test_generator_fills_the_report_once_consumed(self):
        report = IngestReport()
        streamed = stream(log_text(SEQUENCES), window=2, report=report)
        assert report.process_name == PROCESS
        assert report.accepted_executions == len(streamed) == 3
        assert report.dropped == 0


class TestLateRecords:
    def late_text(self):
        # e000's activity A, then all of e001 (closing e000's window),
        # then e000's activity B arriving as a complete straggler pair —
        # late, but not malforming the already-finalized execution.
        lines = log_text(["AB", "CDEF"]).splitlines()
        return "\n".join(lines[:2] + lines[4:] + lines[2:4]) + "\n"

    def test_strict_raises_with_guidance(self):
        with pytest.raises(LogFormatError, match="stream-window"):
            stream(self.late_text(), window=1)

    def test_skip_quarantines_as_late_record(self):
        report = IngestReport()
        quarantine = Quarantine()
        streamed = stream(
            self.late_text(),
            window=1,
            policy=POLICY_SKIP,
            report=report,
            quarantine=quarantine,
        )
        assert [e.execution_id for e in streamed] == ["e000", "e001"]
        assert report.reasons[REASON_LATE_RECORD] == 2
        assert report.quarantined_lines == 2
        items = list(quarantine)
        assert len(items) == 2
        assert {item.reason for item in items} == {REASON_LATE_RECORD}
        assert {item.execution_id for item in items} == {"e000"}

    def test_wide_window_absorbs_the_straggler(self):
        # The same log is perfectly fine when the window spans it.
        streamed = stream(self.late_text(), window=64)
        activities = {
            e.execution_id: [r.activity for r in e.records]
            for e in streamed
        }
        # records carry START and END events, hence the set.
        assert sorted(set(activities["e000"])) == ["A", "B"]


class TestLimits:
    def test_max_executions_counts_finalized_and_open(self):
        # Finalizing an execution must not free up limit headroom —
        # the guard is about total work, not resident buckets.
        text = log_text(["AB", "CD", "EF"])
        with pytest.raises(ResourceLimitError):
            stream(
                text,
                window=1,
                limits=IngestLimits(max_executions=2),
            )

    def test_under_limit_streams_cleanly(self):
        streamed = stream(
            log_text(["AB", "CD"]),
            window=1,
            limits=IngestLimits(max_executions=2),
        )
        assert len(streamed) == 2


class TestReaderParity:
    def test_jsonl_iterator_matches_codec_iterator(self):
        executions = [
            Execution.from_sequence(
                list(seq), execution_id=f"e{i:03d}", start_time=float(i)
            )
            for i, seq in enumerate(SEQUENCES)
        ]
        codec_text = log_text(SEQUENCES)
        jsonl_text = (
            "\n".join(
                record_to_json(record, PROCESS)
                for execution in executions
                for record in execution.records
            )
            + "\n"
        )
        from_codec = stream(codec_text, window=2)
        from_jsonl = list(
            iter_ingest_log_jsonl(io.StringIO(jsonl_text), window=2)
        )
        assert [
            (e.execution_id, [r.activity for r in e.records])
            for e in from_codec
        ] == [
            (e.execution_id, [r.activity for r in e.records])
            for e in from_jsonl
        ]

    def test_file_iterator_round_trip(self, tmp_path):
        path = tmp_path / "stream.log"
        path.write_text(log_text(SEQUENCES), encoding="utf-8")
        streamed = list(iter_ingest_log_file(path, window=4))
        assert [e.execution_id for e in streamed] == [
            "e000",
            "e001",
            "e002",
        ]

    def test_write_log_jsonl_round_trips_through_the_iterator(
        self, tmp_path
    ):
        from repro.logs.event_log import EventLog

        log = EventLog(
            [
                Execution.from_sequence(list(seq), f"e{i:03d}")
                for i, seq in enumerate(SEQUENCES)
            ],
            process_name=PROCESS,
        )
        buffer = io.StringIO()
        write_log_jsonl(log, buffer)
        streamed = list(
            iter_ingest_log_jsonl(io.StringIO(buffer.getvalue()))
        )
        assert [e.execution_id for e in streamed] == [
            e.execution_id for e in log
        ]


class TestIngestStreamPush:
    """The push-based :class:`IngestStream` the iterators (and the
    service daemon) drive: ``push`` finalizes by window advance,
    ``flush`` finalizes mid-stream (and arms late-record detection for
    the flushed ids), ``close`` keeps batch end-of-log semantics.
    """

    def make(self, **kwargs):
        from repro.logs.codec import parse_record
        from repro.logs.ingest import IngestStream

        kwargs.setdefault("report", IngestReport(policy=POLICY_SKIP))
        kwargs.setdefault("policy", POLICY_SKIP)
        return IngestStream(parse_record, **kwargs)

    def push_text(self, stream, text, start=1):
        finalized = []
        for offset, line in enumerate(text.splitlines()):
            finalized.extend(stream.push(start + offset, line))
        return finalized

    def test_push_close_matches_iterator(self):
        text = log_text(SEQUENCES, interleave=True)
        pushed = self.make(window=4)
        finalized = self.push_text(pushed, text)
        finalized.extend(pushed.close())
        iterated = stream(io.StringIO(text).getvalue(), window=4)
        assert [e.execution_id for e in finalized] == [
            e.execution_id for e in iterated
        ]

    def test_flush_finalizes_open_buckets(self):
        pushed = self.make(window=8)
        self.push_text(pushed, log_text(SEQUENCES))
        assert pushed.open_executions == 1
        flushed = pushed.flush()
        assert [e.execution_id for e in flushed] == ["e002"]
        assert pushed.open_executions == 0
        assert pushed.close() == []

    def test_record_after_flush_is_late(self):
        lines = log_text(["ABC"]).splitlines()
        pushed = self.make(window=8)
        for number, line in enumerate(lines[:-1], start=1):
            pushed.push(number, line)
        pushed.flush()
        assert pushed.push(len(lines), lines[-1]) == []
        assert pushed.report.reasons[REASON_LATE_RECORD] == 1

    def test_close_does_not_arm_late_record(self):
        """Batch semantics: ids seen before ``close`` may not recur,
        but ``close`` itself does not quarantine anything new."""
        pushed = self.make(window=8)
        self.push_text(pushed, log_text(SEQUENCES))
        closed = pushed.close()
        assert [e.execution_id for e in closed] == ["e002"]
        assert pushed.report.quarantined_lines == 0

    def test_strict_policy_raises_on_bad_line(self):
        pushed = self.make(
            policy=POLICY_STRICT,
            report=IngestReport(policy=POLICY_STRICT),
        )
        with pytest.raises(LogFormatError):
            pushed.push(1, "definitely not a log line")
