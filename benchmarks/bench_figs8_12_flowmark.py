"""Figures 8-12 — the mined process model graphs of the five Flowmark
processes (Upload_and_Notify, UWI_Pilot, StressSleep, Pend_Block,
Local_Swap).

The paper draws each mined graph; its installation being unavailable, the
bench mines the simulated datasets (same vertex/edge/execution counts as
Table 3) and emits each mined graph as ASCII plus Graphviz DOT under
``benchmarks/results/`` — render with ``dot -Tpng``.
"""

import pytest

from repro.analysis.metrics import recovery_metrics
from repro.core.general_dag import mine_general_dag
from repro.datasets.flowmark import FLOWMARK_PROCESS_NAMES, flowmark_dataset
from repro.graphs.render import to_ascii, to_dot

FIGURE_NUMBERS = {
    "Upload_and_Notify": 8,
    "UWI_Pilot": 9,
    "StressSleep": 10,
    "Pend_Block": 11,
    "Local_Swap": 12,
}


@pytest.mark.parametrize("name", FLOWMARK_PROCESS_NAMES)
def test_mined_flowmark_figure(benchmark, name, emit, results_dir):
    """Mine one process and emit its figure (ASCII + DOT)."""
    dataset = flowmark_dataset(name, seed=11)

    mined = benchmark.pedantic(
        mine_general_dag, args=(dataset.log,), rounds=3, iterations=1
    )

    figure = FIGURE_NUMBERS[name]
    metrics = recovery_metrics(
        dataset.model.graph, mined, log=dataset.log
    )
    text = "\n".join(
        [
            f"Figure {figure} — process model graph for {name}",
            f"(recovery: {metrics.describe()})",
            "",
            to_ascii(mined),
        ]
    )
    emit(f"fig{figure}_{name}", text)
    (results_dir / f"fig{figure}_{name}.dot").write_text(
        to_dot(mined, name=name)
    )

    # "In every case, our algorithm was able to recover the underlying
    # process."
    assert metrics.recall == 1.0
    assert metrics.verdict in ("exact", "closure-equivalent")
