"""Shared fixtures for the benchmark suite.

Every bench regenerates one table or figure of the paper.  Results are
printed (visible with ``pytest -s``) and also written to
``benchmarks/results/<name>.txt`` so the regenerated tables survive the
run.  Set ``REPRO_FULL_SCALE=1`` to run the paper's full 10,000-execution
grids; the default grid keeps the suite fast.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale_enabled() -> bool:
    """Whether the paper's full grid sizes were requested."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Session fixture exposing the REPRO_FULL_SCALE switch."""
    return full_scale_enabled()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a result block and persist it to results/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n{text}\n"
        print(banner)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
