"""Section 7 — conditions mining (Problem 2).

The paper proposes learning each edge's Boolean function from activity
outputs with a decision-tree classifier, but could not evaluate it on the
Flowmark logs ("Flowmark does not log the input and output parameters").
This bench supplies what the paper lacked: engine-simulated logs *with*
outputs, ground-truth edge conditions, and a train/holdout evaluation.

Regenerates a per-edge table: learned rule, training accuracy, holdout
accuracy against the true branching behaviour.
"""

from repro.analysis.tables import TextTable
from repro.core.conditions import ConditionsMiner
from repro.core.general_dag import mine_general_dag
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_ge, attr_gt, attr_le, attr_lt


def routing_model():
    """Claims routing: three mutually exclusive branches + an escalation
    review, all driven by Assess's first output parameter."""
    return (
        ProcessBuilder("claims")
        .edge("Receive", "Assess")
        .edge("Assess", "FastTrack", condition=attr_lt(0, 25))
        .edge("Assess", "Standard",
              condition=attr_ge(0, 25) & attr_le(0, 75))
        .edge("Assess", "Escalate", condition=attr_gt(0, 75))
        .edge("FastTrack", "Pay")
        .edge("Standard", "Pay")
        .edge("Escalate", "Review")
        .edge("Review", "Pay")
        .edge("Pay", "Close")
        .build()
    )


def holdout_accuracy(condition, target, log):
    """Accuracy of a learned condition against target presence."""
    total = hits = 0
    for execution in log:
        output = execution.last_output_of("Assess")
        if output is None:
            continue
        total += 1
        predicted = condition.evaluate(output)
        hits += predicted == (target in execution.activities)
    return hits / total if total else 0.0


def test_conditions_mining(benchmark, emit):
    """Train on 400 executions, evaluate on 200 held-out ones."""
    model = routing_model()
    train = WorkflowSimulator(
        model, SimulationConfig(seed=5)
    ).run_log(400)
    holdout = WorkflowSimulator(
        model, SimulationConfig(seed=6)
    ).run_log(200)

    state = {}

    def run():
        graph = mine_general_dag(train)
        state["graph"] = graph
        state["conditions"] = ConditionsMiner().mine(train, graph)

    benchmark.pedantic(run, rounds=3, iterations=1)

    table = TextTable(
        ["edge", "learned condition", "truth", "train acc",
         "holdout acc"],
        title="Section 7 — learned edge conditions (claims process)",
    )
    branch_edges = [
        ("Assess", "FastTrack"),
        ("Assess", "Standard"),
        ("Assess", "Escalate"),
    ]
    holdout_scores = {}
    for edge in branch_edges:
        mined = state["conditions"][edge]
        score = holdout_accuracy(mined.condition, edge[1], holdout)
        holdout_scores[edge] = score
        table.add_row(
            [
                f"{edge[0]} -> {edge[1]}",
                str(mined.condition),
                str(model.condition(*edge)),
                f"{mined.training_accuracy:.1%}",
                f"{score:.1%}",
            ]
        )
    emit("section7_conditions", table.render())

    # The paper's premise: a decision tree yields simple, accurate rules.
    assert state["graph"].edge_set() == model.graph.edge_set()
    for edge in branch_edges:
        assert state["conditions"][edge].learnable
        assert state["conditions"][edge].training_accuracy >= 0.98
        assert holdout_scores[edge] >= 0.95, edge


def test_example1_condition_learned(benchmark, emit):
    """Learn the paper's own Example 1 condition shape.

    Example 1 annotates edge (C, D) with
    ``(o(C)[1] > 0) and (o(C)[2] < o(C)[1])`` — a parameter-to-parameter
    comparison an axis-aligned tree cannot represent.  With pairwise
    difference features the tree recovers it; the table contrasts both
    learners on a 200-execution holdout.
    """
    from repro.model.conditions import Comparison, attr_gt, param

    condition = attr_gt(0, 0) & Comparison(1, "<", param(0))
    model = (
        ProcessBuilder("example1-style")
        .activity("C", arity=2, low=0, high=100)
        .edge("A", "C")
        .edge("C", "D", condition=condition)
        .edge("C", "E")
        .edge("D", "E")
        .build()
    )
    train = WorkflowSimulator(
        model, SimulationConfig(seed=11)
    ).run_log(400)
    holdout = WorkflowSimulator(
        model, SimulationConfig(seed=12)
    ).run_log(200)

    def score(learned) -> float:
        total = hits = 0
        for execution in holdout:
            output = execution.last_output_of("C")
            if output is None:
                continue
            total += 1
            hits += learned.evaluate(output) == (
                "D" in execution.activities
            )
        return hits / total if total else 0.0

    results = {}

    def run():
        for label, pairwise in (("axis-only", False), ("pairwise", True)):
            mined = ConditionsMiner(pairwise=pairwise).mine_edge(
                train, ("C", "D")
            )
            results[label] = (mined.condition, score(mined.condition))

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["learner", "learned condition", "holdout acc"],
        title=(
            "Example 1's condition (o[0] > 0 and o[1] < o[0]) — "
            "axis-only vs pairwise features"
        ),
    )
    for label in ("axis-only", "pairwise"):
        learned, accuracy = results[label]
        text = str(learned)
        if len(text) > 60:
            text = text[:57] + "..."
        table.add_row([label, text, f"{accuracy:.1%}"])
    emit("section7_example1_condition", table.render())

    assert results["pairwise"][1] >= 0.98
    assert results["pairwise"][1] > results["axis-only"][1]


def test_conditions_scaling(benchmark, emit):
    """Holdout accuracy vs. training-log size (learning curve)."""
    model = routing_model()
    holdout = WorkflowSimulator(
        model, SimulationConfig(seed=8)
    ).run_log(200)
    sizes = (25, 100, 400)
    scores = {}

    def run():
        for m in sizes:
            train = WorkflowSimulator(
                model, SimulationConfig(seed=9)
            ).run_log(m)
            graph = mine_general_dag(train)
            if not graph.has_edge("Assess", "Escalate"):
                scores[m] = 0.0
                continue
            mined = ConditionsMiner().mine_edge(
                train, ("Assess", "Escalate")
            )
            scores[m] = holdout_accuracy(
                mined.condition, "Escalate", holdout
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["training executions", "holdout accuracy"],
        title="Section 7 — learning curve (Assess -> Escalate)",
    )
    for m in sizes:
        table.add_row([m, f"{scores[m]:.1%}"])
    emit("section7_learning_curve", table.render())

    assert scores[sizes[-1]] >= max(scores[sizes[0]], 0.95) - 0.02
