"""Related-work baselines — the paper's Section 1 arguments, measured.

Two comparisons the paper makes qualitatively are reproduced here with
working implementations of the prior approaches:

* **vs. finite-state machines** (Cook & Wolf): on the paper's own
  example — process S -> {A, B} -> E with executions SABE and SBAE —
  the learned automaton must duplicate activity labels across
  transitions, while the mined process graph names each activity once.
  The gap explodes with the number of parallel branches (n! orderings).
* **vs. sequential patterns** (Agrawal & Srikant): frequent-subsequence
  mining of a branching process returns many overlapping total orders,
  none of which is execution-complete, while Algorithm 2 returns one
  conformal graph.
"""

import itertools

from repro.analysis.tables import TextTable
from repro.baselines.ktails import ktails_automaton
from repro.baselines.sequential import maximal_sequential_patterns
from repro.core.conformance import is_consistent
from repro.core.general_dag import mine_general_dag
from repro.logs.event_log import EventLog


def parallel_process_log(n_branches: int) -> EventLog:
    """All interleavings of ``n_branches`` parallel activities between a
    source S and sink E (the paper's SABE/SBAE example generalized)."""
    activities = [chr(ord("A") + i) for i in range(n_branches)]
    sequences = [
        ["S", *perm, "E"]
        for perm in itertools.permutations(activities)
    ]
    return EventLog.from_sequences(sequences)


def test_fsm_vs_process_graph(benchmark, emit):
    """The automaton's size blows up with parallelism; the graph's not."""
    rows = []

    def run():
        rows.clear()
        for branches in (2, 3, 4):
            log = parallel_process_log(branches)
            graph = mine_general_dag(log)
            automaton = ktails_automaton(log, k=2)
            max_label_multiplicity = max(
                automaton.label_multiplicity().values()
            )
            rows.append(
                (
                    branches,
                    len(log),
                    graph.node_count,
                    graph.edge_count,
                    automaton.state_count,
                    automaton.transition_count,
                    max_label_multiplicity,
                )
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        [
            "parallel branches",
            "executions",
            "graph vertices",
            "graph edges",
            "FSM states",
            "FSM transitions",
            "max label repeats",
        ],
        title=(
            "Baseline: k-tails FSM vs process graph on fully parallel "
            "processes (paper Section 1, SABE/SBAE example)"
        ),
    )
    for row in rows:
        table.add_row(list(row))
    emit("baseline_fsm", table.render())

    # The graph grows linearly with branches; the automaton repeats
    # labels and outgrows it.
    for branches, _, vertices, edges, states, transitions, repeats in rows:
        assert vertices == branches + 2
        assert edges == 2 * branches
        assert repeats >= 2  # some activity labels multiple transitions
    assert rows[-1][5] > rows[-1][3]  # FSM transitions > graph edges


def test_sequential_patterns_vs_process_graph(benchmark, emit):
    """Patterns are many and execution-incomplete; the graph is one and
    conformal."""
    # A process with a choice and a parallel pair: A -> (B|C) -> D, with
    # D -> E and an optional F between A and D.
    log = EventLog.from_sequences(
        ["ABDE", "ACDE", "ABFDE", "ACFDE", "AFBDE", "AFCDE"] * 3
    )
    state = {}

    def run():
        state["patterns"] = maximal_sequential_patterns(
            log, min_support=0.3
        )
        state["graph"] = mine_general_dag(log)

    benchmark.pedantic(run, rounds=1, iterations=1)

    patterns = state["patterns"]
    graph = state["graph"]

    # How many maximal patterns would a user have to reconcile, and how
    # many of the log's executions does each single pattern "explain"
    # (contain as a subsequence)?
    coverages = []
    for pattern in patterns:
        from repro.baselines.sequential import is_subsequence

        coverage = sum(
            1
            for sequence in log.sequences()
            if is_subsequence(pattern.sequence, sequence)
        ) / len(log)
        coverages.append((pattern, coverage))

    table = TextTable(
        ["maximal pattern", "support"],
        title=(
            "Baseline: maximal sequential patterns of a branching "
            f"process ({len(patterns)} patterns vs 1 conformal graph "
            f"with {graph.edge_count} edges)"
        ),
    )
    for pattern, _ in coverages:
        table.add_row(
            [" -> ".join(pattern.sequence), f"{pattern.support:.2f}"]
        )
    emit("baseline_sequential", table.render())

    # The paper's contrast: several patterns, none universal...
    assert len(patterns) > 1
    assert all(pattern.support < 1.0 for pattern in patterns)
    # ...while the single mined graph admits every execution.
    for execution in log:
        assert is_consistent(graph, execution, "A", "E") is None
