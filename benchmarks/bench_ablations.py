"""Ablations of Algorithm 2's design choices (DESIGN.md §4).

Three stages of the pipeline are individually load-bearing:

* **SCC removal (step 4)** — without it, independence cycles longer than
  two survive as spurious mutual dependencies (Example 7's C/D/E);
* **per-execution TR marking (steps 5-6)** — without it, the dependency
  graph keeps every surviving pair, grossly over-edged;
* **noise threshold (Section 6)** — without it, a few swapped pairs
  destroy real chains.

Each ablation runs the pipeline with one stage disabled and tabulates the
damage against the full algorithm.
"""

from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_prepared, prepare_log
from repro.datasets.examples import example7_log
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.graphs.compare import compare_edges
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.logs.noise import NoiseConfig, NoiseInjector


def test_ablation_scc_removal(benchmark, emit):
    """Disable step 4 on Example 7 and on a synthetic grid cell."""
    prepared_ex7 = prepare_log(example7_log())
    dataset = synthetic_dataset(
        SyntheticConfig(n_vertices=25, n_executions=300, seed=3)
    )
    prepared_syn = prepare_log(dataset.log)
    outcomes = {}

    def run():
        outcomes["ex7_full"] = mine_prepared(prepared_ex7)
        outcomes["ex7_noscc"] = mine_prepared(
            prepared_ex7, skip_scc_removal=True
        )
        outcomes["syn_full"] = mine_prepared(prepared_syn)
        outcomes["syn_noscc"] = mine_prepared(
            prepared_syn, skip_scc_removal=True
        )

    benchmark.pedantic(run, rounds=3, iterations=1)

    table = TextTable(
        ["log", "full pipeline edges", "without SCC removal",
         "spurious kept"],
        title="Ablation — step 4 (SCC removal)",
    )
    for key, label in (("ex7", "Example 7"), ("syn", "synthetic 25v")):
        full = outcomes[f"{key}_full"]
        ablated = outcomes[f"{key}_noscc"]
        spurious = len(ablated.edge_set() - full.edge_set())
        table.add_row(
            [label, full.edge_count, ablated.edge_count, spurious]
        )
    emit("ablation_scc", table.render())

    # Example 7: the C/D/E cycle must survive only in the ablated run.
    ablated = outcomes["ex7_noscc"]
    assert ablated.edge_count > outcomes["ex7_full"].edge_count
    cycle_edges = {("C", "D"), ("D", "E"), ("E", "C")}
    assert cycle_edges & ablated.edge_set()
    assert not cycle_edges & outcomes["ex7_full"].edge_set()


def test_ablation_execution_marking(benchmark, emit):
    """Disable steps 5-6: the raw dependency graph is far over-edged."""
    dataset = synthetic_dataset(
        SyntheticConfig(n_vertices=25, n_executions=300, seed=3)
    )
    prepared = prepare_log(dataset.log)
    outcomes = {}

    def run():
        outcomes["full"] = mine_prepared(prepared)
        outcomes["unmarked"] = mine_prepared(
            prepared, skip_execution_marking=True
        )

    benchmark.pedantic(run, rounds=3, iterations=1)

    full = outcomes["full"]
    unmarked = outcomes["unmarked"]
    truth = dataset.graph
    table = TextTable(
        ["variant", "edges", "precision vs truth", "recall vs truth"],
        title="Ablation — steps 5-6 (per-execution TR marking)",
    )
    for label, graph in (("full", full), ("no marking", unmarked)):
        comparison = compare_edges(truth, graph)
        table.add_row(
            [label, graph.edge_count,
             f"{comparison.precision:.3f}", f"{comparison.recall:.3f}"]
        )
    emit("ablation_marking", table.render())

    assert unmarked.edge_count > full.edge_count
    assert compare_edges(truth, full).precision > compare_edges(
        truth, unmarked
    ).precision


def test_ablation_noise_threshold(benchmark, emit):
    """Disable the Section 6 threshold on a noisy chain."""
    chain = "ABCDEFG"
    chain_edges = set(zip(chain, chain[1:]))
    clean = EventLog.from_sequences([list(chain)] * 300)
    noisy = NoiseInjector(
        NoiseConfig(swap_rate=0.08, seed=23)
    ).corrupt(clean)
    prepared = prepare_log(noisy)
    outcomes = {}

    def run():
        outcomes["unthresholded"] = mine_prepared(prepared, threshold=0)
        outcomes["thresholded"] = mine_prepared(prepared, threshold=60)

    benchmark.pedantic(run, rounds=3, iterations=1)

    table = TextTable(
        ["variant", "chain edges kept", "graph edges"],
        title="Ablation — Section 6 threshold on a noisy 7-chain",
    )
    for label in ("unthresholded", "thresholded"):
        graph = outcomes[label]
        kept = len(graph.edge_set() & chain_edges)
        table.add_row([label, f"{kept}/{len(chain_edges)}",
                       graph.edge_count])
    emit("ablation_threshold", table.render())

    kept_raw = outcomes["unthresholded"].edge_set() & chain_edges
    kept_thresh = outcomes["thresholded"].edge_set() & chain_edges
    assert len(kept_thresh) == len(chain_edges)
    assert len(kept_raw) < len(chain_edges)


def test_ablation_heuristic_vs_exact_minimization(benchmark, emit):
    """Section 4's chosen heuristic vs the exact alternative it rejected.

    "An edge can be removed only if all the executions are consistent
    with the remaining graph.  To derive a fast algorithm, we use the
    following alternative" — measure what the fast marking heuristic
    gives up against exact greedy minimization, in edges and in time.
    """
    import time as _time

    from repro.core.minimize import minimize_conformal
    from repro.datasets.examples import example7_log, open_problem_log

    cases = {
        "Example 7": example7_log(),
        "Fig 5 open problem": open_problem_log(),
        "synthetic 10v/100m": synthetic_dataset(
            SyntheticConfig(n_vertices=10, n_executions=100, seed=4)
        ).log,
        "synthetic 15v/200m": synthetic_dataset(
            SyntheticConfig(n_vertices=15, n_executions=200, seed=6)
        ).log,
    }
    rows = []

    def run():
        rows.clear()
        for label, log in cases.items():
            started = _time.perf_counter()
            heuristic = mine_prepared(prepare_log(log))
            heuristic_time = _time.perf_counter() - started
            started = _time.perf_counter()
            exact = minimize_conformal(heuristic, log)
            exact_time = _time.perf_counter() - started
            rows.append(
                (
                    label,
                    heuristic.edge_count,
                    exact.edge_count,
                    heuristic_time,
                    exact_time,
                )
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        [
            "log",
            "heuristic edges",
            "exact-minimized edges",
            "heuristic s",
            "extra minimization s",
        ],
        title=(
            "Ablation — per-execution marking heuristic vs exact "
            "conformal minimization (Section 4)"
        ),
    )
    for row in rows:
        table.add_row(
            [row[0], row[1], row[2], f"{row[3]:.4f}", f"{row[4]:.4f}"]
        )
    emit("ablation_minimization", table.render())

    for label, heuristic_edges, exact_edges, _, _ in rows:
        assert exact_edges <= heuristic_edges
        # Empirical finding worth reporting: the gap grows with
        # optionality (tiny on the worked examples, up to ~40% on dense
        # synthetic logs) — exactly the minimality the paper concedes
        # when it says "we can no longer guarantee that we have
        # obtained a minimal conformal graph".  Bound it loosely.
        assert exact_edges >= heuristic_edges // 2, label


def test_ablation_overlap_handling(benchmark, emit):
    """Disable overlap-based independence (the interval-log extension).

    With genuinely concurrent logs, ordered pairs alone cannot prove
    independence when timing biases one order; overlap evidence can.
    """
    from repro.datasets.flowmark import flowmark_dataset

    dataset = flowmark_dataset("StressSleep", seed=11)
    prepared_with = prepare_log(dataset.log)
    # Strip the overlap sets to simulate the paper's order-only reading.
    from repro.core.general_dag import PreparedExecution

    prepared_without = [
        PreparedExecution(vertices=p.vertices, pairs=p.pairs)
        for p in prepared_with
    ]
    outcomes = {}

    def run():
        outcomes["with"] = mine_prepared(prepared_with)
        outcomes["without"] = mine_prepared(prepared_without)

    benchmark.pedantic(run, rounds=1, iterations=1)

    truth = dataset.model.graph
    table = TextTable(
        ["variant", "edges", "extra vs truth"],
        title="Ablation — overlap-as-independence (StressSleep log)",
    )
    for label in ("with", "without"):
        graph = outcomes[label]
        extra = len(graph.edge_set() - truth.edge_set())
        table.add_row([label, graph.edge_count, extra])
    emit("ablation_overlap", table.render())

    assert outcomes["without"].edge_count >= outcomes["with"].edge_count
