"""Condition-learner comparison: decision tree vs one-rule stump.

Section 7 says "use a classifier [WK91] … in particular, the use of a
decision tree classifier will give a set of simple rules".  This bench
justifies that choice empirically against the simplest [WK91] learner
(a one-rule stump): the two tie on single-threshold conditions and the
tree wins on conjunctive and banded conditions — the very shapes the
paper's Example 1 uses (``o(C)[1] > 0 and o(C)[2] < o(C)[1]``).
"""

import random

from repro.analysis.tables import TextTable
from repro.classifier.dataset import Dataset
from repro.classifier.stump import DecisionStump
from repro.classifier.tree import DecisionTree


def make_dataset(kind: str, n: int, seed: int) -> Dataset:
    rng = random.Random(seed)
    points = [
        (rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)
    ]
    if kind == "threshold":
        return Dataset.from_pairs(
            [(p, p[0] > 50) for p in points]
        )
    if kind == "conjunction":
        return Dataset.from_pairs(
            [(p, p[0] > 40 and p[1] < 60) for p in points]
        )
    if kind == "band":
        return Dataset.from_pairs(
            [(p, 30 <= p[0] <= 70) for p in points]
        )
    if kind == "disjunction":
        return Dataset.from_pairs(
            [(p, p[0] < 20 or p[1] > 80) for p in points]
        )
    raise ValueError(kind)


KINDS = ("threshold", "conjunction", "band", "disjunction")


def test_tree_vs_stump(benchmark, emit):
    """Train/holdout accuracy of both learners per condition shape."""
    results = {}

    def run():
        for kind in KINDS:
            train = make_dataset(kind, 400, seed=1)
            holdout = make_dataset(kind, 400, seed=2)
            tree = DecisionTree.fit(train)
            stump = DecisionStump.fit(train)
            results[kind] = (
                tree.accuracy(holdout),
                stump.accuracy(holdout),
                tree.leaf_count,
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["condition shape", "tree holdout acc", "stump holdout acc",
         "tree leaves"],
        title="Section 7 learner comparison — decision tree vs one-rule",
    )
    for kind in KINDS:
        tree_acc, stump_acc, leaves = results[kind]
        table.add_row(
            [kind, f"{tree_acc:.1%}", f"{stump_acc:.1%}", leaves]
        )
    emit("section7_learner_comparison", table.render())

    # Ties on thresholds, tree wins elsewhere — the paper's rationale.
    tree_acc, stump_acc, _ = results["threshold"]
    assert abs(tree_acc - stump_acc) < 0.03
    for kind in ("conjunction", "band", "disjunction"):
        tree_acc, stump_acc, _ = results[kind]
        assert tree_acc >= 0.97
        assert tree_acc > stump_acc + 0.05, kind
