"""Streaming extension — incremental mining throughput and convergence.

Not a paper table; an extension bench for the deployment the paper's
introduction motivates (Flowmark recording executions as users perform
them).  Measures:

* streaming ingest + periodic materialization vs. batch re-mining from
  scratch at every poll;
* how quickly the mined edge set converges as executions stream in.
"""

import time

from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_general_dag
from repro.core.incremental import IncrementalMiner
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.logs.event_log import EventLog


def test_streaming_vs_batch_polling(benchmark, emit):
    """Poll the mined graph every 50 executions, both ways."""
    dataset = synthetic_dataset(
        SyntheticConfig(n_vertices=25, n_executions=1000, seed=12)
    )
    executions = dataset.log.executions
    poll_every = 50
    timings = {}

    def run_both():
        started = time.perf_counter()
        miner = IncrementalMiner()
        for i, execution in enumerate(executions, start=1):
            miner.add(execution)
            if i % poll_every == 0:
                miner.graph()
        timings["streaming"] = time.perf_counter() - started

        started = time.perf_counter()
        for i in range(poll_every, len(executions) + 1, poll_every):
            mine_general_dag(EventLog(executions[:i]))
        timings["batch"] = time.perf_counter() - started

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = TextTable(
        ["strategy", "total seconds", "per poll (ms)"],
        title=(
            "Streaming vs batch re-mining — 1000 executions, "
            f"polled every {poll_every}"
        ),
    )
    polls = len(executions) // poll_every
    for label in ("streaming", "batch"):
        table.add_row(
            [label, f"{timings[label]:.4f}",
             f"{1000 * timings[label] / polls:.2f}"]
        )
    emit("extension_incremental", table.render())

    # Streaming must produce the identical final graph.
    miner = IncrementalMiner()
    miner.add_log(dataset.log)
    assert miner.graph().edge_set() == mine_general_dag(
        dataset.log
    ).edge_set()


def test_convergence_curve(benchmark, emit):
    """Edge-set churn as the log grows — the deployment's stop signal."""
    dataset = synthetic_dataset(
        SyntheticConfig(n_vertices=15, n_executions=800, seed=9)
    )
    checkpoints = (25, 50, 100, 200, 400, 800)
    churn = {}

    def run():
        miner = IncrementalMiner()
        previous = None
        consumed = 0
        for checkpoint in checkpoints:
            for execution in dataset.log.executions[consumed:checkpoint]:
                miner.add(execution)
            consumed = checkpoint
            edges = miner.graph().edge_set()
            churn[checkpoint] = (
                len(edges ^ previous) if previous is not None else None
            )
            previous = edges

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["executions seen", "edge churn since last checkpoint"],
        title="Incremental mining convergence (15-vertex process)",
    )
    for checkpoint in checkpoints:
        value = churn[checkpoint]
        table.add_row(
            [checkpoint, "-" if value is None else value]
        )
    emit("extension_convergence", table.render())

    # Churn must die down as the log saturates the process.
    late = [churn[c] for c in checkpoints[-2:] if churn[c] is not None]
    early = [churn[c] for c in checkpoints[1:3]]
    assert sum(late) <= sum(early)
