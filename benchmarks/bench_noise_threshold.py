"""Section 6 — noise-threshold behaviour (Example 9's chain scenario).

The paper's analysis: with out-of-order error rate ε over m executions,
the threshold T trades two failure modes — ``C(m,T)·ε^T`` (noise kills a
true dependency) against ``C(m,m−T)·(1/2)^(m−T)`` (an unlucky streak
fakes one) — balanced at ``ε^T = (1/2)^(m−T)``.

This bench sweeps T on a noisy chain log and regenerates:

* the measured recovery at each T (dependencies kept / spurious edges);
* the predicted failure probabilities alongside;
* the balance-point T*, which must sit in the sweet spot.
"""

from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_general_dag
from repro.core.noise import optimal_threshold, threshold_error_probability
from repro.logs.event_log import EventLog
from repro.logs.noise import NoiseConfig, NoiseInjector

CHAIN = "ABCDEFGH"
CHAIN_EDGES = {
    (a, b) for a, b in zip(CHAIN, CHAIN[1:])
}
FORWARD = {
    (a, b)
    for i, a in enumerate(CHAIN)
    for b in CHAIN[i + 1:]
}
M = 400
EPSILON = 0.08


def noisy_chain_log():
    clean = EventLog.from_sequences([list(CHAIN)] * M)
    injector = NoiseInjector(NoiseConfig(swap_rate=EPSILON, seed=17))
    return injector.corrupt(clean)


def test_threshold_sweep(benchmark, emit):
    """Sweep T and regenerate the Section 6 trade-off table."""
    log = noisy_chain_log()
    t_star = optimal_threshold(M, EPSILON)
    thresholds = sorted(
        {0, 2, t_star // 2, t_star, 2 * t_star, int(0.8 * M)}
    )
    rows = []

    def run_sweep():
        rows.clear()
        for t in thresholds:
            mined = mine_general_dag(log, threshold=t)
            edges = mined.edge_set()
            kept = len(edges & CHAIN_EDGES)
            backward = len(edges - FORWARD)
            probs = threshold_error_probability(M, max(t, 1), EPSILON)
            rows.append(
                (
                    t,
                    kept,
                    backward,
                    edges >= CHAIN_EDGES,
                    probs.p_false_independence,
                    probs.p_false_dependency,
                )
            )

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = TextTable(
        [
            "T",
            "chain edges kept",
            "backward edges",
            "dependencies intact",
            "P[noise kills dep]",
            "P[fake dep]",
        ],
        title=(
            f"Section 6 threshold sweep — chain of {len(CHAIN)}, "
            f"m={M}, eps={EPSILON:.0%}, balance T*={t_star}"
        ),
    )
    for row in rows:
        table.add_row(
            [row[0], f"{row[1]}/{len(CHAIN_EDGES)}", row[2], row[3],
             row[4], row[5]]
        )
    emit("section6_noise_threshold", table.render())

    by_t = {row[0]: row for row in rows}
    # T = 0: swapped pairs survive as 2-cycles and kill chain edges.
    assert by_t[0][1] < len(CHAIN_EDGES)
    # The balance threshold keeps every dependency, adds no reversals.
    assert by_t[t_star][3] is True
    assert by_t[t_star][2] == 0
    # Probabilities move in opposite directions as T grows.
    probs_ind = [row[4] for row in rows if row[0] >= 1]
    assert probs_ind == sorted(probs_ind, reverse=True)
