"""End-to-end smoke for the mining service daemon (the CI service job).

Boots a real ``repro-miner serve`` process on an ephemeral port, pushes
the bundled example log over HTTP, and asserts the service acceptance
contract:

1. ``GET /v1/{p}/model?format=edges`` is byte-identical to the batch
   ``repro-miner mine`` stdout for the same records;
2. ``GET /v1/{p}/state`` is byte-identical to the ``mine --stream
   --state-out`` envelope;
3. ``GET /metrics`` parses as Prometheus text exposition;
4. a synthetic throughput probe (POST batches -> flush) sustains at
   least :data:`MIN_SERVICE_RPS` end-to-end records/sec — a tripwire
   for the batched off-loop ingest path silently degenerating, set far
   below healthy measurements so CI jitter cannot trip it;
5. SIGTERM exits 0 after checkpointing every tenant, and a restarted
   daemon serves the exact same model/state bytes.

The work directory (journal + checkpoints + dead-letter files) is left
on disk so CI can upload it as an artifact when an assertion trips.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py [--work DIR]
"""

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.datasets.synthetic import (  # noqa: E402
    SyntheticConfig,
    synthetic_dataset,
)
from repro.logs.codec import read_log_file  # noqa: E402
from repro.logs.jsonl import record_to_json  # noqa: E402
from repro.obs import parse_prometheus  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

EXAMPLE_LOG = REPO / "examples" / "logs" / "upload_and_notify.log"
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))

#: End-to-end service ingest floor (records/sec, push through flush).
#: Healthy runs measure an order of magnitude above this even on slow
#: runners; the floor only trips when batching stops paying off.
MIN_SERVICE_RPS = 2_000.0
THROUGHPUT_VERTICES = 50
THROUGHPUT_EXECUTIONS = 500
THROUGHPUT_BATCH_LINES = 1_000


def start_daemon(data_dir: Path, port_file: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            str(data_dir),
            "--port",
            "0",
            "--port-file",
            str(port_file),
        ],
        env=ENV,
        stderr=subprocess.PIPE,
        text=True,
    )


def connect(port_file: Path) -> ServiceClient:
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists():
            port = int(port_file.read_text().strip())
            client = ServiceClient(port=port, timeout=10.0)
            client.wait_ready(budget=15.0)
            return client
        time.sleep(0.05)
    raise RuntimeError(f"daemon never wrote {port_file}")


def stop_daemon(daemon: subprocess.Popen) -> str:
    daemon.send_signal(signal.SIGTERM)
    _, stderr = daemon.communicate(timeout=30)
    assert daemon.returncode == 0, (
        f"daemon exited {daemon.returncode}:\n{stderr}"
    )
    return stderr


def batch_reference(work: Path) -> "tuple[bytes, bytes]":
    """The batch CLI's model stdout and streaming state envelope."""
    state_out = work / "cli-state.json"
    mined = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "mine",
            str(EXAMPLE_LOG),
            "--algorithm",
            "general-dag",
            "--format",
            "edges",
            "--stream",
            "--state-out",
            str(state_out),
        ],
        env=ENV,
        capture_output=True,
        timeout=120,
    )
    assert mined.returncode == 0, mined.stderr.decode()
    return mined.stdout, state_out.read_bytes()


def throughput_probe(client: ServiceClient) -> float:
    """Push a synthetic log and measure folded records/sec end-to-end.

    Times the whole client-visible pipeline — HTTP POST batches, queue
    handoff, the off-loop decode/fold, and the final flush — against a
    dedicated tenant so the parity tenant's state stays untouched.
    """
    process = "smoke-throughput"
    log = synthetic_dataset(
        SyntheticConfig(
            n_vertices=THROUGHPUT_VERTICES,
            n_executions=THROUGHPUT_EXECUTIONS,
            seed=THROUGHPUT_VERTICES,
        )
    ).log
    lines = [
        record_to_json(record, process)
        for execution in log
        for record in execution.records
    ]
    started = time.perf_counter()
    for start in range(0, len(lines), THROUGHPUT_BATCH_LINES):
        batch = lines[start : start + THROUGHPUT_BATCH_LINES]
        response = client.push_lines(process, batch)
        while response.status == 429:
            retry_after = float(
                response.headers.get("retry-after", "1")
            )
            time.sleep(min(retry_after, 2.0))
            response = client.push_lines(process, batch)
        assert response.status == 202, (response.status, response.body)
    stats = client.flush(process)
    elapsed = time.perf_counter() - started
    assert stats["executions"] == len(log), stats
    rps = len(lines) / elapsed if elapsed else float("inf")
    print(
        f"smoke: service ingest {rps:,.0f} records/s "
        f"({len(lines)} records in {elapsed * 1000:.0f} ms)"
    )
    assert rps >= MIN_SERVICE_RPS, (
        f"service throughput {rps:,.0f} rec/s under the "
        f"{MIN_SERVICE_RPS:,.0f} rec/s floor"
    )
    return rps


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--work",
        type=Path,
        default=Path("service-smoke"),
        help="scratch directory (kept for artifact upload)",
    )
    args = parser.parse_args()
    work = args.work
    work.mkdir(parents=True, exist_ok=True)
    data_dir = work / "data"

    log = read_log_file(EXAMPLE_LOG)
    process = log.process_name
    print(f"smoke: pushing {len(log)} executions as {process!r}")

    daemon = start_daemon(data_dir, work / "port")
    try:
        client = connect(work / "port")
        _, responses = client.push_log(None, log)
        assert all(r.status == 202 for r in responses), [
            r.status for r in responses
        ]
        stats = client.flush(process)
        assert stats["executions"] == len(log), stats
        model = client.model_text(process, fmt="edges")
        state = client.state_bytes(process)
        samples = parse_prometheus(client.metrics())
        names = {name for name, _ in samples}
        assert "repro_service_requests_total" in names, sorted(names)
        assert "repro_service_events_total" in names, sorted(names)
        print(f"smoke: /metrics parses ({len(samples)} samples)")
        throughput_probe(client)
    finally:
        if daemon.poll() is None:
            stderr = stop_daemon(daemon)
        else:  # crashed before the clean stop
            _, stderr = daemon.communicate(timeout=10)
            raise RuntimeError(f"daemon died early:\n{stderr}")
    assert f"checkpointed {process!r}" in stderr, stderr
    print("smoke: SIGTERM checkpointed and exited 0")

    cli_model, cli_state = batch_reference(work)
    assert model == cli_model, "HTTP model != batch mine stdout"
    assert state == cli_state, "HTTP state != --state-out envelope"
    print("smoke: model and state are byte-identical to the batch CLI")

    restarted = start_daemon(data_dir, work / "port2")
    try:
        client = connect(work / "port2")
        assert client.state_bytes(process) == state, (
            "restarted daemon state diverged"
        )
        assert client.model_text(process, fmt="edges") == model, (
            "restarted daemon model diverged"
        )
    finally:
        stderr = stop_daemon(restarted)
    assert f"recovered {process}" in stderr, stderr
    print("smoke: restart resumed byte-identically — PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
