"""CI regression gate: diff a fresh benchmark run against the baseline.

Compares a just-measured ``perf_harness.py`` report (typically the
``--quick`` grid) against the committed ``BENCH_mining.json`` baseline,
cell by cell, and exits non-zero when any shared cell regressed.

Two families of checks:

* **Quality** (exact): ``nodes``, ``edges``, ``equal_to_reference``.
  Any difference fails — the mined graph must not change shape.
* **Timing** (tolerant): ``fast_seconds`` may grow by at most
  ``--tolerance`` (default +15%, ratcheted down from +25% when the
  kernel work landed) over the baseline.  Micro cells time
  sub-millisecond loops and jitter proportionally more, so their
  tolerance is scaled up by :data:`KIND_TOLERANCE_SCALE`.  Two more
  knobs absorb cross-machine noise:

  - ``--min-ms`` (default 20): cells whose baseline *and* current wall
    time are both under this floor are reported but never fail — a
    3 ms cell jittering to 4 ms is not a regression signal.
  - ``--calibrate``: normalise current timings by the median
    current/baseline ratio across all shared cells before applying the
    tolerance.  A uniformly slower CI runner then cancels out, while a
    single cell that regressed relative to its peers still trips.

Ingest cells (``kind: "ingest"``) additionally carry an absolute
records/sec floor (``--min-ingest-rps``): the fast path's measured
``records_per_second`` must stay above it.  The floor is deliberately
far below what any healthy run measures — it is a machine-independent
tripwire for the fast path silently degenerating to per-record work
(e.g. a disabled memo or a broken batch scanner), not a timing gate;
relative regressions are still caught by the wall-time check.

Cells present in only one report are listed but do not fail the gate
(the full baseline supersets the quick grid by design).

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py --quick -o bench_current.json
    python benchmarks/compare_bench.py BENCH_mining.json bench_current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional

DEFAULT_TOLERANCE = 0.15
DEFAULT_MIN_MS = 20.0
#: Absolute fast-path throughput floor for ``kind: "ingest"`` cells
#: (records/sec).  Healthy runs measure well over 100k rec/s even on
#: slow CI runners; dipping under the floor means the batched path
#: lost its asymptotic advantage, not that the machine is busy.
DEFAULT_MIN_INGEST_RPS = 25_000.0

#: Per-kind multipliers on the timing tolerance.  Micro cells time a
#: few hundred microseconds of pure-Python loop and jitter far more
#: than the mining cells, which get the tightened default as-is.
KIND_TOLERANCE_SCALE = {"micro": 2.0}

QUALITY_KEYS = ("nodes", "edges", "equal_to_reference")


@dataclass
class CellResult:
    """Verdict for one benchmark cell shared by both reports."""

    cell: str
    baseline_ms: float
    current_ms: float
    adjusted_ms: float
    ratio: Optional[float]
    failures: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class CompareResult:
    """Outcome of a full baseline/current comparison."""

    cells: List[CellResult]
    only_baseline: List[str]
    only_current: List[str]
    scale: float

    @property
    def failed(self) -> List[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def ok(self) -> bool:
        return not self.failed


def _index(report: dict) -> Dict[str, dict]:
    return {cell["cell"]: cell for cell in report.get("cells", [])}


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    min_ms: float = DEFAULT_MIN_MS,
    calibrate: bool = False,
    min_ingest_rps: float = DEFAULT_MIN_INGEST_RPS,
) -> CompareResult:
    """Diff two ``perf_harness`` reports. Pure function, no I/O."""
    base_cells = _index(baseline)
    cur_cells = _index(current)
    shared = sorted(set(base_cells) & set(cur_cells))
    only_baseline = sorted(set(base_cells) - set(cur_cells))
    only_current = sorted(set(cur_cells) - set(base_cells))

    scale = 1.0
    if calibrate and shared:
        ratios = [
            cur_cells[name]["fast_seconds"] / base_cells[name]["fast_seconds"]
            for name in shared
            if base_cells[name]["fast_seconds"] > 0
        ]
        if ratios:
            scale = median(ratios)
            if scale <= 0:
                scale = 1.0

    results: List[CellResult] = []
    for name in shared:
        base = base_cells[name]
        cur = cur_cells[name]
        base_ms = base["fast_seconds"] * 1000
        cur_ms = cur["fast_seconds"] * 1000
        adjusted_ms = cur_ms / scale
        ratio = adjusted_ms / base_ms if base_ms > 0 else None
        result = CellResult(
            cell=name,
            baseline_ms=base_ms,
            current_ms=cur_ms,
            adjusted_ms=adjusted_ms,
            ratio=ratio,
        )
        for key in QUALITY_KEYS:
            if base.get(key) != cur.get(key):
                result.failures.append(
                    f"{key}: baseline {base.get(key)!r} != "
                    f"current {cur.get(key)!r}"
                )
        if base.get("kind") == "ingest":
            rps = cur.get("records_per_second")
            if rps is None:
                result.failures.append(
                    "ingest cell is missing records_per_second"
                )
            elif rps < min_ingest_rps:
                result.failures.append(
                    f"ingest throughput {rps:,.0f} rec/s under the "
                    f"{min_ingest_rps:,.0f} rec/s floor"
                )
            else:
                result.notes.append(f"{rps:,.0f} rec/s")
        cell_tolerance = tolerance * KIND_TOLERANCE_SCALE.get(
            base.get("kind"), 1.0
        )
        if base_ms < min_ms and cur_ms < min_ms:
            result.notes.append(f"under {min_ms:g} ms floor, timing skipped")
        elif ratio is not None and ratio > 1.0 + cell_tolerance:
            result.failures.append(
                f"wall time {adjusted_ms:.1f} ms vs baseline "
                f"{base_ms:.1f} ms (+{(ratio - 1) * 100:.0f}%, "
                f"tolerance +{cell_tolerance * 100:.0f}%)"
            )
        results.append(result)

    return CompareResult(
        cells=results,
        only_baseline=only_baseline,
        only_current=only_current,
        scale=scale,
    )


def render(result: CompareResult) -> str:
    """Human-readable comparison table."""
    lines = []
    header = (
        f"{'cell':<24} {'baseline':>10} {'current':>10} "
        f"{'ratio':>7}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in result.cells:
        ratio = f"{cell.ratio:.2f}x" if cell.ratio is not None else "n/a"
        status = "ok" if cell.ok else "FAIL"
        if cell.ok and any("timing skipped" in note for note in cell.notes):
            status = "ok (floor)"
        detail = next(
            (note for note in cell.notes if "rec/s" in note), None
        )
        lines.append(
            f"{cell.cell:<24} {cell.baseline_ms:>8.1f}ms "
            f"{cell.adjusted_ms:>8.1f}ms {ratio:>7}  {status}"
            + (f"  ({detail})" if detail else "")
        )
        for failure in cell.failures:
            lines.append(f"    ! {failure}")
    if result.scale != 1.0:
        lines.append(
            f"calibration: current timings divided by median ratio "
            f"{result.scale:.3f}"
        )
    if result.only_baseline:
        lines.append(
            "baseline-only cells (not gated): "
            + ", ".join(result.only_baseline)
        )
    if result.only_current:
        lines.append(
            "current-only cells (not gated): "
            + ", ".join(result.only_current)
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON report")
    parser.add_argument("current", help="freshly measured JSON report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional wall-time growth per cell "
        "(default 0.15 = +15%%; micro cells get 2x headroom)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=DEFAULT_MIN_MS,
        help="skip timing checks when both sides are under this "
        "wall-time floor in ms (default 20)",
    )
    parser.add_argument(
        "--min-ingest-rps",
        type=float,
        default=DEFAULT_MIN_INGEST_RPS,
        help="absolute fast-path throughput floor for ingest cells "
        "in records/sec (default 25000)",
    )
    parser.add_argument(
        "--calibrate",
        action="store_true",
        help="normalise by the median current/baseline ratio to absorb "
        "uniformly slower runners",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    result = compare(
        baseline,
        current,
        tolerance=args.tolerance,
        min_ms=args.min_ms,
        calibrate=args.calibrate,
        min_ingest_rps=args.min_ingest_rps,
    )
    print(render(result))
    if not result.cells:
        print("ERROR: no shared cells between reports", file=sys.stderr)
        return 2
    if not result.ok:
        failed = ", ".join(cell.cell for cell in result.failed)
        print(f"REGRESSION: {failed}", file=sys.stderr)
        return 1
    print(f"gate passed: {len(result.cells)} cell(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
