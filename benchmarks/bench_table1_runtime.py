"""Table 1 — execution times of Algorithm 2 on synthetic datasets.

The paper reports seconds on a 1995 RS/6000 250 for graphs of 10/25/50/100
vertices and logs of 100/1000/10000 executions (Table 1), observing that
runtime "is fast and scales linearly with the size of the input for a
given graph size".

This bench regenerates the grid on this machine.  Absolute numbers are
incomparable across three decades of hardware; the *shape* claims checked
here are (a) near-linear growth in the number of executions for fixed
graph size and (b) moderate growth with graph size.

Default grid: executions (100, 1000) x vertices (10, 25, 50, 100).
``REPRO_FULL_SCALE=1`` adds the paper's 10,000-execution row.
"""

import time

import pytest

from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_general_dag
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset

VERTEX_SIZES = (10, 25, 50, 100)
EXECUTION_SIZES = (100, 1000)
FULL_EXECUTION_SIZES = (100, 1000, 10000)

_dataset_cache = {}


def dataset_for(n_vertices: int, n_executions: int):
    key = (n_vertices, n_executions)
    if key not in _dataset_cache:
        _dataset_cache[key] = synthetic_dataset(
            SyntheticConfig(
                n_vertices=n_vertices,
                n_executions=n_executions,
                seed=n_vertices,
            )
        )
    return _dataset_cache[key]


@pytest.mark.parametrize("n_vertices", VERTEX_SIZES)
@pytest.mark.parametrize("n_executions", EXECUTION_SIZES)
def test_algorithm2_runtime(benchmark, n_vertices, n_executions):
    """One Table 1 grid cell, timed by pytest-benchmark."""
    dataset = dataset_for(n_vertices, n_executions)
    benchmark.group = f"table1-m{n_executions}"
    benchmark.pedantic(
        mine_general_dag,
        args=(dataset.log,),
        rounds=3 if n_executions <= 1000 else 1,
        iterations=1,
    )


def test_table1_grid(benchmark, full_scale, emit):
    """Regenerate the full Table 1 text table (one timed pass per cell).

    Also asserts the scaling shape: for each graph size, time per
    execution must not blow up as the log grows (near-linear scaling),
    allowing generous noise margins.
    """
    executions = FULL_EXECUTION_SIZES if full_scale else EXECUTION_SIZES
    times = {}

    def run_grid():
        for m in executions:
            for n in VERTEX_SIZES:
                dataset = dataset_for(n, m)
                started = time.perf_counter()
                mine_general_dag(dataset.log)
                times[(n, m)] = time.perf_counter() - started

    benchmark.pedantic(run_grid, rounds=1, iterations=1)

    table = TextTable(
        ["executions", *[f"{n} vertices" for n in VERTEX_SIZES]],
        title=(
            "Table 1 — Algorithm 2 mining time in seconds "
            "(paper: 4.6 s to 1385.1 s on a 1995 RS/6000 250)"
        ),
    )
    for m in executions:
        table.add_row(
            [m, *[f"{times[(n, m)]:.4f}" for n in VERTEX_SIZES]]
        )
    emit("table1_runtime", table.render())

    # Shape check: 10x executions should cost roughly 10x, not 100x.
    for n in VERTEX_SIZES:
        for small, large in zip(executions, executions[1:]):
            ratio = times[(n, large)] / max(times[(n, small)], 1e-9)
            growth = large / small
            assert ratio < growth * 6, (
                f"runtime superlinear in executions for {n} vertices: "
                f"{ratio:.1f}x for {growth}x executions"
            )
