"""Out-of-core mining probe: log generator + peak-RSS measurement.

Two subcommands, both designed to run as *subprocesses* so each
measurement sees a clean address space:

``generate``
    Write an N-execution synthetic log (Section 8.1 procedure) to disk
    *incrementally* — executions are produced in bounded batches and
    appended, so generating a 100k-execution log never holds more than
    one batch in memory.  The output format follows the file extension
    (``.jsonl`` vs the tab-separated codec).

``probe``
    Mine a log either ``materialized`` (ingest into an ``EventLog``,
    then :func:`repro.core.general_dag.mine_general_dag`) or ``stream``
    (:func:`repro.core.state.fold_executions` over the streaming ingest
    iterators, then ``finish``), and print one JSON object::

        {"mode": ..., "seconds": ..., "ru_maxrss_kb": ...,
         "nodes": ..., "edges": ..., "executions": ...}

    ``ru_maxrss`` is the process's lifetime peak, which is why the two
    modes must run in separate processes.  ``--limit-mb`` arms a hard
    ``RLIMIT_AS`` cap before mining (the CI memory-budget smoke test);
    blowing the cap raises ``MemoryError`` and exits non-zero.

The :func:`measure` helper spawns the probe subprocess and parses its
JSON — the perf harness and ``memory_budget.py`` both build on it.

Usage::

    PYTHONPATH=src python benchmarks/stream_probe.py generate big.jsonl \
        --executions 100000 --vertices 25
    PYTHONPATH=src python benchmarks/stream_probe.py probe big.jsonl \
        --mode stream
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

GENERATE_BATCH = 1000


def generate_log(
    path: str,
    executions: int,
    vertices: int = 25,
    seed: int = 0,
    process_name: str = "stream-bench",
) -> int:
    """Append-write an ``executions``-long log to ``path`` in batches.

    Every execution gets a fresh sequential id, so the log looks like a
    long-running recording rather than one repeated trace.  Returns the
    number of records written.
    """
    from dataclasses import replace

    from repro.datasets.synthetic import generate_executions
    from repro.graphs.random_dag import random_process_dag
    from repro.logs.codec import format_record
    from repro.logs.jsonl import record_to_json

    jsonl = path.endswith(".jsonl")
    graph = random_process_dag(vertices, seed=seed)
    written = 0
    records = 0
    with open(path, "w", encoding="utf-8") as handle:
        while written < executions:
            batch = min(GENERATE_BATCH, executions - written)
            # A distinct seed per batch keeps the variant mix realistic;
            # the batch log is the only thing held in memory.
            log = generate_executions(
                graph, batch, seed=seed + 1 + written,
                process_name=process_name,
            )
            for index, execution in enumerate(log):
                eid = f"{process_name}-{written + index:07d}"
                for record in execution.records:
                    record = replace(record, execution_id=eid)
                    line = (
                        record_to_json(record, process_name)
                        if jsonl
                        else format_record(record, process_name)
                    )
                    handle.write(line)
                    handle.write("\n")
                    records += 1
            written += batch
    return records


def probe(path: str, mode: str, jobs: int = 1, limit_mb: int = 0) -> dict:
    """Mine ``path`` in one mode; return the measurement record.

    ``stage_seconds`` splits the wall time into ``ingest`` (reading,
    parsing, window finalization, and — streamed — variant folding) and
    ``mine`` (the graph algorithm), so a flat materialized/stream
    speedup is attributable: if both modes sink their time into
    ``ingest``, the bottleneck is decode throughput, not mining.
    """
    if limit_mb:
        cap = limit_mb * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    stages = {}
    started = time.perf_counter()
    if mode == "materialized":
        from repro.core.general_dag import mine_general_dag
        from repro.logs.codec import ingest_log_file
        from repro.logs.jsonl import ingest_log_jsonl_file

        reader = (
            ingest_log_jsonl_file
            if path.endswith(".jsonl")
            else ingest_log_file
        )
        log = reader(path).log
        stages["ingest"] = round(time.perf_counter() - started, 6)
        mark = time.perf_counter()
        graph = mine_general_dag(log, jobs=jobs)
        stages["mine"] = round(time.perf_counter() - mark, 6)
        executions = len(log)
    elif mode == "stream":
        if path.endswith(".jsonl"):
            # The batched fast fold (block scan + signature memo) is
            # the production out-of-core path for JSON lines; the tab
            # codec still streams record by record.
            from repro.logs.jsonl import fold_log_jsonl_file

            state = fold_log_jsonl_file(path)
        else:
            from repro.core.state import fold_executions
            from repro.logs.codec import iter_ingest_log_file

            state = fold_executions(
                iter_ingest_log_file(path), jobs=jobs
            )
        stages["ingest"] = round(time.perf_counter() - started, 6)
        mark = time.perf_counter()
        graph = state.finish(jobs=jobs)
        stages["mine"] = round(time.perf_counter() - mark, 6)
        executions = state.execution_count
    else:
        raise ValueError(f"unknown mode {mode!r}")
    seconds = time.perf_counter() - started
    return {
        "mode": mode,
        "seconds": round(seconds, 6),
        "stage_seconds": stages,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "nodes": graph.node_count,
        "edges": graph.edge_count,
        "edge_set": sorted(map(list, graph.edge_set())),
        "executions": executions,
    }


def measure(
    path: str, mode: str, jobs: int = 1, limit_mb: int = 0
) -> dict:
    """Run the probe in a fresh subprocess and parse its JSON line."""
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        "probe",
        path,
        "--mode",
        mode,
        "--jobs",
        str(jobs),
    ]
    if limit_mb:
        command += ["--limit-mb", str(limit_mb)]
    completed = subprocess.run(
        command, capture_output=True, text=True, check=True
    )
    return json.loads(completed.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write an N-execution synthetic log, batched"
    )
    generate.add_argument("output", help="log path (.jsonl or codec)")
    generate.add_argument("--executions", type=int, default=100_000)
    generate.add_argument("--vertices", type=int, default=25)
    generate.add_argument("--seed", type=int, default=0)

    probe_cmd = commands.add_parser(
        "probe", help="mine a log in one mode; print a JSON measurement"
    )
    probe_cmd.add_argument("log", help="log path (.jsonl or codec)")
    probe_cmd.add_argument(
        "--mode", choices=["materialized", "stream"], required=True
    )
    probe_cmd.add_argument("--jobs", type=int, default=1)
    probe_cmd.add_argument(
        "--limit-mb",
        type=int,
        default=0,
        help="arm a hard RLIMIT_AS cap (MiB) before mining; 0 = off",
    )

    args = parser.parse_args(argv)
    if args.command == "generate":
        records = generate_log(
            args.output,
            executions=args.executions,
            vertices=args.vertices,
            seed=args.seed,
        )
        print(
            f"wrote {args.executions} executions ({records} records) "
            f"to {args.output}"
        )
        return 0
    result = probe(
        args.log, args.mode, jobs=args.jobs, limit_mb=args.limit_mb
    )
    print(json.dumps(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
