"""Algorithm 3 at scale — cyclic-graph recovery beyond Example 8.

The paper evaluates Algorithm 3 only on the worked Example 8.  This
bench extends the evaluation: random process graphs with injected
rework loops, random-walk logs with bounded loop iterations, Algorithm
3 mining, and cycle-recovery metrics:

* were the loop's back edges recovered (cycle present in the merged
  graph)?
* edge recall over the acyclic skeleton;
* how recovery scales with the number of executions.
"""

import pytest

from repro.analysis.tables import TextTable
from repro.core.cyclic import max_instance_counts, mine_cyclic
from repro.datasets.cyclic import (
    CyclicTraceGenerator,
    loop_edges,
    random_cyclic_graph,
)


def build_case(n_vertices: int, n_loops: int, seed: int):
    graph = random_cyclic_graph(
        n_vertices, n_loops=n_loops, seed=seed
    )
    loops = loop_edges(graph)
    generator = CyclicTraceGenerator(
        graph,
        loop_probability=0.5,
        max_loop_iterations=2,
        seed=seed + 1,
    )
    return graph, loops, generator


@pytest.mark.parametrize("n_vertices", (8, 12))
def test_cycle_recovery(benchmark, n_vertices, emit):
    """Mine 200 walks of a looped graph; check the cycles come back."""
    graph, loops, generator = build_case(n_vertices, n_loops=2, seed=3)
    log = generator.generate(200)

    mined = benchmark.pedantic(
        mine_cyclic, args=(log,), rounds=1, iterations=1
    )

    counts = max_instance_counts(log)
    repeated = [a for a, k in counts.items() if k > 1]
    recovered_loops = sum(
        1 for edge in loops if mined.has_edge(*edge)
    )
    skeleton_edges = graph.edge_set() - loops
    recalled = sum(1 for e in skeleton_edges if mined.has_edge(*e))

    emit(
        f"cyclic_recovery_{n_vertices}v",
        "\n".join(
            [
                f"graph: {n_vertices} vertices, "
                f"{graph.edge_count} edges, {len(loops)} loop edges",
                f"log: {len(log)} executions; activities repeating in "
                f"some execution: {sorted(repeated)}",
                f"loop edges recovered: {recovered_loops}/{len(loops)}",
                f"skeleton edges recalled: {recalled}/"
                f"{len(skeleton_edges)}",
            ]
        ),
    )

    # Every activity that actually repeated implies its loop was taken;
    # the corresponding back edges must be recovered.
    if repeated:
        assert recovered_loops >= 1
    # The skeleton's dependency structure must be intact.
    from repro.graphs.transitive import transitive_closure

    mined_closure = transitive_closure(mined)
    for a, b in skeleton_edges:
        assert mined_closure.has_edge(a, b), (a, b)


def test_recovery_vs_log_size(benchmark, emit):
    """Loop recovery as the log grows (small logs may miss rare loops)."""
    graph, loops, generator = build_case(10, n_loops=2, seed=7)
    sizes = (10, 50, 200)
    results = {}

    def run():
        for size in sizes:
            log = generator.generate(size)
            mined = mine_cyclic(log)
            results[size] = sum(
                1 for edge in loops if mined.has_edge(*edge)
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["executions", f"loop edges recovered (of {len(loops)})"],
        title="Algorithm 3 — loop recovery vs log size (10-vertex graph)",
    )
    for size in sizes:
        table.add_row([size, results[size]])
    emit("cyclic_recovery_scaling", table.render())

    assert results[sizes[-1]] >= results[sizes[0]]
