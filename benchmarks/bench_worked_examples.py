"""Figures 1-6 — the paper's worked examples, regenerated.

Each running example of Sections 2-5 is mined and the result compared
with the published output:

* Example 6 / Figure 3: Algorithm 1's minimal conformal graph;
* Example 7 / Figure 4: Algorithm 2 with the C/D/E independence cycle;
* Example 5 / Figure 2: the dependency graph must admit ADCE;
* Figure 5: the open-problem log with two minimal conformal graphs;
* Example 8 / Figure 6: Algorithm 3's instance graph and merged cycle.
"""

from repro.analysis.tables import TextTable
from repro.core.conformance import check_conformance
from repro.core.cyclic import mine_cyclic
from repro.core.general_dag import mine_general_dag
from repro.core.special_dag import mine_special_dag
from repro.datasets.examples import (
    example5_log,
    example6_expected_edges,
    example6_log,
    example7_expected_edges,
    example7_log,
    example8_expected_cycle,
    example8_log,
    open_problem_log,
)
from repro.graphs.render import edge_list_text


def test_worked_examples(benchmark, emit):
    """Mine every worked example and tabulate published-vs-mined."""
    outcomes = {}

    def run_all():
        outcomes["ex6"] = mine_special_dag(example6_log())
        outcomes["ex7"] = mine_general_dag(example7_log())
        outcomes["ex5"] = mine_general_dag(example5_log())
        outcomes["open"] = mine_general_dag(open_problem_log())
        outcomes["ex8"] = mine_cyclic(example8_log())

    benchmark.pedantic(run_all, rounds=3, iterations=1)

    table = TextTable(
        ["example", "log", "published check", "result"],
        title="Worked examples (Figures 1-6)",
    )
    ex6_ok = outcomes["ex6"].edge_set() == example6_expected_edges()
    table.add_row(
        ["Example 6 / Fig 3", "ABCDE ACDBE ACBDE",
         "minimal graph matches", ex6_ok]
    )
    ex7_ok = outcomes["ex7"].edge_set() == example7_expected_edges()
    table.add_row(
        ["Example 7 / Fig 4", "ABCF ACDF ADEF AECF",
         "published graph matches", ex7_ok]
    )
    ex5_report = check_conformance(outcomes["ex5"], example5_log())
    table.add_row(
        ["Example 5 / Fig 2", "ADCE ABCDE",
         "conformal (admits ADCE)", ex5_report.is_conformal]
    )
    open_report = check_conformance(outcomes["open"], open_problem_log())
    table.add_row(
        ["Fig 5 open problem", "ACF ADCF ABCF ADECF",
         "a conformal graph found", open_report.is_conformal]
    )
    cycle_ok = all(
        outcomes["ex8"].has_edge(*edge)
        for edge in example8_expected_cycle()
    )
    table.add_row(
        ["Example 8 / Fig 6", "ABDCE ABDCBCE ABCBDCE ADE",
         "B/C cycle recovered", cycle_ok]
    )

    details = "\n\n".join(
        [
            table.render(),
            "Example 6 mined edges:\n" + edge_list_text(outcomes["ex6"]),
            "Example 7 mined edges:\n" + edge_list_text(outcomes["ex7"]),
            "Example 8 merged graph:\n" + edge_list_text(outcomes["ex8"]),
        ]
    )
    emit("figs1_6_worked_examples", details)

    assert ex6_ok and ex7_ok and cycle_ok
    assert ex5_report.is_conformal, ex5_report.violations()
    assert open_report.is_conformal, open_report.violations()
