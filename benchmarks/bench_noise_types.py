"""Section 6 — sensitivity to each noise class, not just swaps.

Section 6 names three error sources: inserted erroneous activities,
unlogged activities, and out-of-order reporting.  Its analysis (and our
``bench_noise_threshold.py``) treats the out-of-order case; this bench
sweeps all three kinds against the same ground truth and reports the
thresholded miner's recovery — showing which errors the frequency
threshold absorbs and which merely dilute evidence.
"""

from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_general_dag
from repro.core.noise import optimal_threshold
from repro.datasets.flowmark import flowmark_dataset
from repro.logs.noise import NoiseConfig, NoiseInjector

RATES = (0.02, 0.05, 0.1, 0.2)
M = 300


def corrupted(log, kind: str, rate: float):
    config = {
        "swap": NoiseConfig(swap_rate=rate, seed=31),
        "drop": NoiseConfig(drop_rate=rate, seed=31),
        "insert": NoiseConfig(insert_rate=rate, seed=31),
    }[kind]
    return NoiseInjector(config).corrupt(log)


def test_noise_type_sensitivity(benchmark, emit):
    """Recovery per noise kind × rate on the Local_Swap chain."""
    dataset = flowmark_dataset("Local_Swap", executions=M, seed=3)
    truth = dataset.model.graph.edge_set()
    rows = {}

    def run():
        for kind in ("swap", "drop", "insert"):
            for rate in RATES:
                noisy = corrupted(dataset.log, kind, rate)
                threshold = optimal_threshold(M, max(rate, 0.01))
                mined = mine_general_dag(noisy, threshold=threshold)
                kept = len(mined.edge_set() & truth)
                aliens = sum(
                    1
                    for a, b in mined.edge_set()
                    if a.startswith("NOISE") or b.startswith("NOISE")
                )
                rows[(kind, rate)] = (kept, aliens)

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["noise kind", *[f"rate {r:.0%}" for r in RATES]],
        title=(
            f"Section 6 — true edges kept (of {len(truth)}) per noise "
            f"kind, thresholded miner, m={M}"
        ),
    )
    for kind in ("swap", "drop", "insert"):
        table.add_row(
            [kind, *[rows[(kind, r)][0] for r in RATES]]
        )
    table.add_row(
        ["insert: alien edges",
         *[rows[("insert", r)][1] for r in RATES]]
    )
    emit("section6_noise_types", table.render())

    for rate in RATES:
        # Swap noise under the balance threshold: chain intact.
        assert rows[("swap", rate)][0] == len(truth), rate
        # Drops only remove evidence: the chain survives moderate rates.
        if rate <= 0.1:
            assert rows[("drop", rate)][0] == len(truth), rate
        # Inserted aliens never clear the threshold.
        assert rows[("insert", rate)][1] == 0, rate
