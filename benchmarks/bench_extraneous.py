"""The open problem (Section 4, Figure 5) — extraneous executions.

"One cannot construct a graph that allows only those executions that
are present in a log.  A valid goal … could be to find a conformal
graph that also minimizes extraneous executions."  The paper leaves the
problem open; this bench *measures* it on small instances: for each
log, enumerate every execution each conformal graph admits and count
how many the log never exhibited — for Algorithm 2's heuristic output
and for the exact-minimized graph.

A deliberately interesting shape: fewer edges is not automatically
fewer extraneous executions (dropping an edge relaxes an ordering),
which is why the open problem is a genuine trade-off and not solved by
minimality.
"""

from repro.analysis.tables import TextTable
from repro.core.extraneous import admitted_executions, extraneous_executions
from repro.core.general_dag import mine_general_dag
from repro.core.minimize import minimize_conformal
from repro.datasets.examples import (
    example5_log,
    example7_log,
    open_problem_log,
)
from repro.logs.filters import variant_counts


def test_extraneous_executions_measured(benchmark, emit):
    """Regenerate the open-problem numbers for the worked-example logs."""
    logs = {
        "Example 5 (ADCE ABCDE)": example5_log(),
        "Fig 5 open problem": open_problem_log(),
        "Example 7": example7_log(),
    }
    rows = []

    def run():
        rows.clear()
        for label, log in logs.items():
            source = log[0].first_activity
            sink = log[0].last_activity
            mined = mine_general_dag(log)
            minimized = minimize_conformal(mined, log)
            for variant, graph in (
                ("Algorithm 2", mined),
                ("exact-minimized", minimized),
            ):
                admitted = admitted_executions(graph, source, sink)
                extraneous = extraneous_executions(graph, log)
                rows.append(
                    (
                        label,
                        variant,
                        graph.edge_count,
                        len(variant_counts(log)),
                        len(admitted),
                        len(extraneous),
                    )
                )

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        [
            "log",
            "graph",
            "edges",
            "log variants",
            "admitted executions",
            "extraneous",
        ],
        title=(
            "Open problem (Section 4) — extraneous executions of "
            "conformal graphs"
        ),
    )
    for row in rows:
        table.add_row(list(row))
    emit("open_problem_extraneous", table.render())

    for label, variant, _, variants, admitted, extraneous in rows:
        # Conformance: every log variant admitted.
        assert admitted - extraneous == variants, (label, variant)
        # The paper's point: extraneous executions exist.
        if label != "Example 5 (ADCE ABCDE)":
            assert extraneous > 0, (label, variant)
