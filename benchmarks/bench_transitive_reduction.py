"""Appendix Algorithm 4 / Theorem 8 — transitive reduction in O(|V||E|).

The appendix gives the simplified DAG transitive-reduction algorithm the
miners call per execution.  Theorem 8 claims O(|V||E|) time; this bench
measures the reduction over a size sweep and checks the growth stays
polynomial of the claimed order (generous constant slack — we use bitset
descendant unions, so the practical exponent is lower).
"""

import time

import pytest

from repro.analysis.tables import TextTable
from repro.graphs.random_dag import random_process_dag
from repro.graphs.transitive import (
    transitive_closure,
    transitive_reduction,
)

SIZES = (25, 50, 100, 200)


@pytest.mark.parametrize("n", SIZES)
def test_reduction_speed(benchmark, n):
    """Reduction latency per graph size."""
    graph = random_process_dag(n, seed=n)
    benchmark.group = "transitive-reduction"
    reduced = benchmark(transitive_reduction, graph)
    assert reduced.edge_count <= graph.edge_count


def test_reduction_scaling_table(benchmark, emit):
    """Regenerate the V/E/time sweep and check polynomial growth."""
    rows = []

    def run():
        rows.clear()
        for n in SIZES:
            graph = random_process_dag(n, seed=n)
            started = time.perf_counter()
            reduced = transitive_reduction(graph)
            elapsed = time.perf_counter() - started
            rows.append((n, graph.edge_count, reduced.edge_count, elapsed))

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["|V|", "|E|", "reduced |E|", "time (s)", "|V||E| (Theorem 8)"],
        title="Appendix Algorithm 4 — transitive reduction scaling",
    )
    for n, edges, reduced_edges, elapsed in rows:
        table.add_row(
            [n, edges, reduced_edges, f"{elapsed:.5f}", n * edges]
        )
    emit("appendix_transitive_reduction", table.render())

    # Growth check: time ratio bounded by the |V||E| ratio with slack.
    for (n1, e1, _, t1), (n2, e2, _, t2) in zip(rows, rows[1:]):
        bound_ratio = (n2 * e2) / (n1 * e1)
        time_ratio = t2 / max(t1, 1e-7)
        assert time_ratio < bound_ratio * 8, (time_ratio, bound_ratio)


def test_reduction_correctness_at_scale(benchmark):
    """On a large dense DAG the reduction still preserves the closure."""
    graph = random_process_dag(120, seed=7)

    def reduce_and_verify():
        reduced = transitive_reduction(graph)
        assert transitive_closure(reduced).edge_set() == (
            transitive_closure(graph).edge_set()
        )
        return reduced

    benchmark.pedantic(reduce_and_verify, rounds=1, iterations=1)
