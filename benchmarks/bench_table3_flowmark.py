"""Table 3 — the five (simulated) Flowmark datasets.

The paper's Table 3 lists, per process, the vertex/edge counts, number of
executions, log size and mining time, and reports that "in every case,
our algorithm was able to recover the underlying process".

The real Flowmark installation is unavailable; per DESIGN.md §5 the five
processes are rebuilt with the published vertex/edge/execution counts and
logged through the workflow engine.  The bench regenerates the table and
asserts recovery: exact for four processes, dependency-equivalent
(closure-equal supergraph) for StressSleep, whose dead-path verdict
semantics add closure-implied edges — see DESIGN.md.
"""

import time

import pytest

from repro.analysis.metrics import recovery_metrics
from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_general_dag
from repro.datasets.flowmark import (
    FLOWMARK_EXECUTIONS,
    FLOWMARK_PROCESS_NAMES,
    flowmark_dataset,
)
from repro.graphs.transitive import closure_equal
from repro.logs.codec import log_size_bytes

PAPER_TABLE3 = {
    #                    vertices, edges, executions, log KB, seconds
    "Upload_and_Notify": (7, 7, 134, 792, 11.5),
    "StressSleep": (14, 23, 160, 3685, 111.7),
    "Pend_Block": (6, 7, 121, 505, 6.3),
    "Local_Swap": (12, 11, 24, 463, 5.7),
    "UWI_Pilot": (7, 7, 134, 779, 11.8),
}

_datasets = {}


def dataset_for(name):
    if name not in _datasets:
        _datasets[name] = flowmark_dataset(name, seed=11)
    return _datasets[name]


@pytest.mark.parametrize("name", FLOWMARK_PROCESS_NAMES)
def test_flowmark_mining_time(benchmark, name):
    """Per-process mining time (the paper's last Table 3 column)."""
    dataset = dataset_for(name)
    benchmark.group = "table3-flowmark"
    mined = benchmark.pedantic(
        mine_general_dag, args=(dataset.log,), rounds=3, iterations=1
    )
    truth = dataset.model.graph
    if name == "StressSleep":
        assert mined.edge_set() >= truth.edge_set()
        assert closure_equal(mined, truth)
    else:
        assert mined.edge_set() == truth.edge_set()


def test_table3_summary(benchmark, emit):
    """Regenerate the Table 3 rows (counts, log size, time, verdict)."""
    rows = []

    def run_all():
        rows.clear()
        for name in FLOWMARK_PROCESS_NAMES:
            dataset = dataset_for(name)
            started = time.perf_counter()
            mined = mine_general_dag(dataset.log)
            elapsed = time.perf_counter() - started
            metrics = recovery_metrics(
                dataset.model.graph, mined, log=dataset.log
            )
            rows.append(
                (
                    name,
                    dataset.model.activity_count,
                    dataset.model.edge_count,
                    len(dataset.log),
                    log_size_bytes(dataset.log) // 1024,
                    elapsed,
                    metrics.verdict,
                )
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = TextTable(
        [
            "process",
            "vertices",
            "edges",
            "executions",
            "log KB",
            "time (s)",
            "recovery",
        ],
        title=(
            "Table 3 — simulated Flowmark datasets "
            "(paper times: 5.7-111.7 s on a 1995 RS/6000 250)"
        ),
    )
    for row in rows:
        table.add_row(
            [row[0], row[1], row[2], row[3], row[4], f"{row[5]:.4f}",
             row[6]]
        )
    emit("table3_flowmark", table.render())

    # Shape: counts match the paper exactly; recovery everywhere.
    for name, vertices, edges, executions, _, _, verdict in rows:
        paper = PAPER_TABLE3[name]
        assert (vertices, edges, executions) == paper[:3]
        assert verdict in ("exact", "closure-equivalent")
