"""Table 2 — edges in synthesized vs. original graphs.

The paper's Table 2 reports, for the Table 1 grid, the edge count of the
generating graph ("Edges Present") and of the mined graph ("Edges
found").  Its signature shape:

* small graphs are recovered with matching counts even from small logs;
* large graphs are under-recovered at small logs (1638 of 4569 edges at
  100 executions for 100 vertices) and approach the original as the log
  grows;
* mid-size graphs can overshoot slightly — "the algorithm eventually
  found a supergraph" (1076 vs 1058 at 50 vertices).

This bench regenerates the same two-row-per-size table and asserts the
shape: recovery ratio is non-decreasing in the log size and every mined
edge set keeps full recall of *observable* structure (verdicts are
exact/closure-equivalent for small graphs).
"""

import pytest

from repro.analysis.metrics import recovery_metrics
from repro.analysis.tables import TextTable
from repro.core.general_dag import mine_general_dag
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset

VERTEX_SIZES = (10, 25, 50, 100)
EXECUTION_SIZES = (100, 1000)
FULL_EXECUTION_SIZES = (100, 1000, 10000)

PAPER_TABLE2 = {
    # (vertices): (edges present, found@100, found@1000, found@10000)
    10: (24, 24, 24, 24),
    25: (224, 172, 224, 224),
    50: (1058, 791, 1053, 1076),
    100: (4569, 1638, 3712, 4301),
}


def test_table2_edge_recovery(benchmark, full_scale, emit):
    """Regenerate Table 2 and check its qualitative shape."""
    executions = FULL_EXECUTION_SIZES if full_scale else EXECUTION_SIZES
    found = {}
    present = {}
    verdicts = {}

    def run_grid():
        for n in VERTEX_SIZES:
            for m in executions:
                dataset = synthetic_dataset(
                    SyntheticConfig(
                        n_vertices=n, n_executions=m, seed=n
                    )
                )
                mined = mine_general_dag(dataset.log)
                metrics = recovery_metrics(
                    dataset.graph, mined, log=dataset.log
                )
                present[n] = metrics.edges_present
                found[(n, m)] = metrics.edges_found
                verdicts[(n, m)] = metrics.verdict

    benchmark.pedantic(run_grid, rounds=1, iterations=1)

    table = TextTable(
        ["", *[f"{n} vertices" for n in VERTEX_SIZES]],
        title=(
            "Table 2 — edges in synthesized and original graphs "
            "(paper values in header comment of this bench)"
        ),
    )
    table.add_row(
        ["Edges Present", *[present[n] for n in VERTEX_SIZES]]
    )
    for m in executions:
        table.add_row(
            [
                f"Edges found @ {m}",
                *[found[(n, m)] for n in VERTEX_SIZES],
            ]
        )
    for m in executions:
        table.add_row(
            [
                f"verdict @ {m}",
                *[verdicts[(n, m)] for n in VERTEX_SIZES],
            ]
        )
    emit("table2_edges", table.render())

    # Shape assertions.
    for n in VERTEX_SIZES:
        ratios = [found[(n, m)] / present[n] for m in executions]
        # Recovery approaches the original as the log grows (small slack
        # for supergraph overshoot, which the paper also observed).
        assert ratios == sorted(ratios) or ratios[-1] > 0.95, (n, ratios)
    # The paper's signature: the largest graph is clearly under-recovered
    # at 100 executions while the smallest is essentially recovered.
    assert found[(100, 100)] / present[100] < 0.5
    assert found[(10, max(executions))] / present[10] >= 0.9


@pytest.mark.parametrize("n_vertices", VERTEX_SIZES)
def test_recall_of_observable_edges(benchmark, n_vertices, emit):
    """Every ground-truth edge *observed in use* must be mined.

    An edge can only be recovered if some execution needs it; this
    cross-checks that the miner never drops an edge that some execution's
    transitive reduction required — the step 5/6 contract.
    """
    dataset = synthetic_dataset(
        SyntheticConfig(
            n_vertices=n_vertices, n_executions=500, seed=n_vertices
        )
    )

    mined = benchmark.pedantic(
        mine_general_dag, args=(dataset.log,), rounds=1, iterations=1
    )
    metrics = recovery_metrics(dataset.graph, mined, log=dataset.log)
    # Missed edges must be unobservable (never needed), hence the mined
    # graph must still admit every execution.
    from repro.core.conformance import is_consistent
    from repro.graphs.random_dag import END, START

    for execution in dataset.log:
        assert (
            is_consistent(mined, execution, START, END) is None
        ), execution.execution_id
