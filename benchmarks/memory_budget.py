"""CI memory-budget smoke test for ``mine --stream``.

Generates a large synthetic ``.jsonl`` log (100k executions by
default), then mines it with the CLI's streaming path inside a
subprocess whose address space is capped hard with
``resource.setrlimit(RLIMIT_AS)`` — if out-of-core mining ever regresses
into materializing the log, the run dies on ``MemoryError`` and this
script exits non-zero.

The cap is deliberately far below what materialized mining needs at
this scale (~800 MiB peak RSS for the default cell, vs ~170 MiB
streamed), so the gate has a wide margin on both sides: streamed mining
passes comfortably, a materializing regression cannot.

The capped child runs ``python -m repro.cli mine --stream`` rather than
the mining API directly, so the budget covers the whole user-facing
path: streaming ingest, parallel fold, finish, and rendering.

Usage::

    PYTHONPATH=src python benchmarks/memory_budget.py
    PYTHONPATH=src python benchmarks/memory_budget.py \
        --executions 100000 --limit-mb 512
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import tempfile
from pathlib import Path

DEFAULT_EXECUTIONS = 100_000
DEFAULT_VERTICES = 25
DEFAULT_LIMIT_MB = 512


def _capped_cli_mine(log_path: str, limit_mb: int) -> int:
    """Run ``mine --stream`` in a child with a hard RLIMIT_AS cap."""
    cap = limit_mb * 1024 * 1024

    def arm_limit() -> None:
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "mine",
            log_path,
            "--stream",
            "--format",
            "edges",
        ],
        preexec_fn=arm_limit,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        print(completed.stdout, end="")
        print(completed.stderr, end="", file=sys.stderr)
        print(
            f"FAIL: mine --stream exited {completed.returncode} under a "
            f"{limit_mb} MiB address-space cap — streaming mining no "
            f"longer fits the memory budget",
            file=sys.stderr,
        )
        return 1
    edges = [
        line
        for line in completed.stdout.splitlines()
        if line and not line.startswith("#")
    ]
    print(
        f"mine --stream held the {limit_mb} MiB budget "
        f"({len(edges)} edges mined)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--executions", type=int, default=DEFAULT_EXECUTIONS
    )
    parser.add_argument("--vertices", type=int, default=DEFAULT_VERTICES)
    parser.add_argument(
        "--limit-mb",
        type=int,
        default=DEFAULT_LIMIT_MB,
        help="hard RLIMIT_AS cap for the mining child (MiB)",
    )
    parser.add_argument(
        "--keep-log",
        metavar="PATH",
        help="also keep the generated log at PATH (debugging)",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import stream_probe

    with tempfile.TemporaryDirectory(prefix="membudget-") as workdir:
        log_path = args.keep_log or str(Path(workdir) / "budget.jsonl")
        records = stream_probe.generate_log(
            log_path,
            executions=args.executions,
            vertices=args.vertices,
        )
        print(
            f"generated {args.executions} executions "
            f"({records} records) at {log_path}"
        )
        status = _capped_cli_mine(log_path, args.limit_mb)
        if status == 0:
            # Report the streamed peak for the CI log (uncapped probe).
            measured = stream_probe.measure(log_path, "stream")
            print(
                json.dumps(
                    {
                        "executions": args.executions,
                        "limit_mb": args.limit_mb,
                        "stream_peak_rss_kb": measured["ru_maxrss_kb"],
                        "stream_seconds": measured["seconds"],
                    }
                )
            )
        return status


if __name__ == "__main__":
    sys.exit(main())
