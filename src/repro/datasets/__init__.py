"""Dataset generators for the paper's evaluation.

* :mod:`repro.datasets.synthetic` — the Section 8.1 synthetic workload:
  random DAG + the paper's ready-list execution logger;
* :mod:`repro.datasets.examples` — every worked example of the paper
  (Figures 1–6, Graph10 of Figure 7) as ready-made graphs and logs;
* :mod:`repro.datasets.cyclic` — random-walk trace generation over cyclic
  graphs for Algorithm 3's experiments;
* :mod:`repro.datasets.flowmark` — the five simulated Flowmark processes
  of Table 3 (Upload_and_Notify, StressSleep, Pend_Block, Local_Swap,
  UWI_Pilot), built as process models with the published vertex/edge
  counts and logged through the workflow engine.
"""

from repro.datasets.cyclic import CyclicTraceGenerator
from repro.datasets.examples import (
    example1_model,
    example3_log,
    example5_log,
    example6_log,
    example7_log,
    example8_log,
    graph10,
    graph10_expected_edges,
)
from repro.datasets.flowmark import (
    FLOWMARK_PROCESS_NAMES,
    FlowmarkDataset,
    flowmark_dataset,
    flowmark_model,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    SyntheticDataset,
    generate_executions,
    synthetic_dataset,
)

__all__ = [
    "CyclicTraceGenerator",
    "FLOWMARK_PROCESS_NAMES",
    "FlowmarkDataset",
    "SyntheticConfig",
    "SyntheticDataset",
    "example1_model",
    "example3_log",
    "example5_log",
    "example6_log",
    "example7_log",
    "example8_log",
    "flowmark_dataset",
    "flowmark_model",
    "generate_executions",
    "graph10",
    "graph10_expected_edges",
    "synthetic_dataset",
]
