"""Simulated Flowmark datasets (Table 3 of the paper).

The paper's Section 8.2 evaluates on logs from five processes of an IBM
Flowmark installation: Upload_and_Notify (7 vertices / 7 edges, 134
executions), StressSleep (14/23, 160), Pend_Block (6/7, 121), Local_Swap
(12/11, 24) and UWI_Pilot (7/7, 134).  The installation and its logs are
unavailable, so — per the substitution rule in DESIGN.md §5 — we define
plausible process models with exactly the published vertex and edge
counts, run them through the workflow engine for the published number of
executions, and verify the miner recovers the model (the paper verified
"with the user"; we verify against our ground truth).

Figure topologies were not published; the designs below follow each
process' name.  Only the *counts* are pinned by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.logs.event_log import EventLog
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_ge, attr_gt, attr_le, attr_lt
from repro.model.process import ProcessModel

#: The five processes of Table 3 with their published execution counts.
FLOWMARK_EXECUTIONS: Dict[str, int] = {
    "Upload_and_Notify": 134,
    "StressSleep": 160,
    "Pend_Block": 121,
    "Local_Swap": 24,
    "UWI_Pilot": 134,
}

FLOWMARK_PROCESS_NAMES = tuple(FLOWMARK_EXECUTIONS)

#: Published (vertices, edges) per process, for sanity assertions.
FLOWMARK_SHAPES: Dict[str, tuple] = {
    "Upload_and_Notify": (7, 7),
    "StressSleep": (14, 23),
    "Pend_Block": (6, 7),
    "Local_Swap": (12, 11),
    "UWI_Pilot": (7, 7),
}


@dataclass(frozen=True)
class FlowmarkDataset:
    """One simulated Flowmark dataset: the model and its engine log."""

    model: ProcessModel
    log: EventLog


def _upload_and_notify() -> ProcessModel:
    """7 vertices / 7 edges: upload, then user/admin notification fan-out.

    The notification branches overlap for mid-range upload outputs, so the
    log exhibits genuine parallelism; neither branch can be dead for any
    output, so every run reaches the sink.
    """
    return (
        ProcessBuilder("Upload_and_Notify")
        .edge("Start", "Validate")
        .edge("Validate", "Upload")
        .edge("Upload", "Notify_User", condition=attr_gt(0, 30))
        .edge("Upload", "Notify_Admin", condition=attr_le(0, 70))
        .edge("Notify_User", "Archive")
        .edge("Notify_Admin", "Archive")
        .edge("Archive", "End")
        .build()
    )


def _stress_sleep() -> ProcessModel:
    """14 vertices / 23 edges: three fork/sleep/check lanes with optional
    sleeps and cross-lane throttles, a merge, and an optional verify pass.

    Every edge is *recoverable*: for each edge some execution exists in
    which no alternative path of always-present activities shadows it (a
    skip edge over an always-run activity could never survive Algorithm
    2's per-execution transitive reductions).
    """
    builder = ProcessBuilder("StressSleep").edge("Start", "Init")
    for lane in ("1", "2", "3"):
        fork, sleep, check = f"Fork{lane}", f"Sleep{lane}", f"Check{lane}"
        builder.edge("Init", fork)
        builder.edge(fork, sleep, condition=attr_gt(0, 40))
        builder.edge(fork, check)
        builder.edge(sleep, check)
        builder.edge(check, "Merge")
    # Cross-lane throttles: a lane's sleep delays the next lane's check.
    builder.edge("Sleep1", "Check2")
    builder.edge("Sleep2", "Check3")
    builder.edge("Sleep3", "Check1")
    builder.edge("Sleep1", "Check3")
    # Optional verification pass; End joins from Merge when it is skipped.
    builder.edge("Merge", "Verify", condition=attr_le(0, 80))
    builder.edge("Verify", "End")
    builder.edge("Merge", "End")
    return builder.build()


def _pend_block() -> ProcessModel:
    """6 vertices / 7 edges: a three-way pend/block/skip decision whose
    conditions partition the output range, re-joining at Resume."""
    return (
        ProcessBuilder("Pend_Block")
        .edge("Start", "Check")
        .edge("Check", "Pend", condition=attr_lt(0, 34))
        .edge("Check", "Block", condition=attr_ge(0, 67))
        .edge("Check", "Resume",
              condition=attr_ge(0, 34) & attr_lt(0, 67))
        .edge("Pend", "Resume")
        .edge("Block", "Resume")
        .edge("Resume", "End")
        .build()
    )


def _local_swap() -> ProcessModel:
    """12 vertices / 11 edges: a pure chain (the only single-source,
    single-sink shape with one less edge than vertices)."""
    stages = [
        "Start", "Lock", "Read_Source", "Read_Target", "Stage",
        "Swap", "Flush", "Verify", "Unlock", "Log", "Cleanup", "End",
    ]
    return ProcessBuilder("Local_Swap").chain(*stages).build()


def _uwi_pilot() -> ProcessModel:
    """7 vertices / 7 edges: a pilot run with parallel collect/review."""
    return (
        ProcessBuilder("UWI_Pilot")
        .edge("Start", "Prepare")
        .edge("Prepare", "Pilot_Run")
        .edge("Pilot_Run", "Collect", condition=attr_gt(0, 25))
        .edge("Pilot_Run", "Review", condition=attr_le(0, 75))
        .edge("Collect", "Report")
        .edge("Review", "Report")
        .edge("Report", "End")
        .build()
    )


_BUILDERS = {
    "Upload_and_Notify": _upload_and_notify,
    "StressSleep": _stress_sleep,
    "Pend_Block": _pend_block,
    "Local_Swap": _local_swap,
    "UWI_Pilot": _uwi_pilot,
}


def flowmark_model(name: str) -> ProcessModel:
    """Return the simulated process model named ``name``.

    Raises ``KeyError`` listing the valid names otherwise.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown Flowmark process {name!r}; choose from "
            f"{sorted(_BUILDERS)}"
        ) from None
    model = builder()
    expected_vertices, expected_edges = FLOWMARK_SHAPES[name]
    assert model.activity_count == expected_vertices, (
        name, model.activity_count
    )
    assert model.edge_count == expected_edges, (name, model.edge_count)
    return model


def flowmark_dataset(
    name: str,
    executions: int = 0,
    seed: int = 0,
    agents: int = 4,
) -> FlowmarkDataset:
    """Build the model and simulate its log.

    ``executions`` of 0 means "the paper's count" (Table 3).  The high
    duration jitter matters: independent activities at different graph
    depths must occasionally be observed in both orders, or the log itself
    (not the miner) would contain extra dependencies.
    """
    model = flowmark_model(name)
    count = executions or FLOWMARK_EXECUTIONS[name]
    simulator = WorkflowSimulator(
        model,
        SimulationConfig(agents=agents, duration_jitter=0.9, seed=seed),
    )
    return FlowmarkDataset(model=model, log=simulator.run_log(count))


def all_flowmark_datasets(seed: int = 0) -> List[FlowmarkDataset]:
    """Build every Table 3 dataset at the published execution counts."""
    return [
        flowmark_dataset(name, seed=seed) for name in FLOWMARK_PROCESS_NAMES
    ]
