"""The Section 8.1 synthetic workload generator.

The paper: "we start with a random directed acyclic graph, and using this
as a process model graph, log a set of process executions.  The order of
the activity executions follows the graph dependencies.  The START
activity is executed first and then all the activities that can be reached
directly with one edge are inserted in a list.  The next activity to be
executed is selected from this list in random order.  Once an activity A
is logged, it is removed from the list, along with any activity B in the
list such that there exists a (B, A) dependency.  At the same time A's
descendents are added to the list.  When the END activity is selected, the
process terminates.  In this way, not all activities are present in all
executions."

:func:`generate_executions` implements that procedure verbatim — including
the eviction rule, which is what makes activities optional; a ``(B, A)``
dependency means a path from ``B`` to ``A`` in the graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graphs.digraph import DiGraph
from repro.graphs.random_dag import END, START, random_process_dag
from repro.graphs.transitive import transitive_closure
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic dataset (one Table 1/2 grid cell).

    Attributes
    ----------
    n_vertices:
        Total vertices including START and END (the paper's convention).
    n_executions:
        Number of executions to log (the paper's ``m``).
    seed:
        Seed for both graph generation and execution logging.
    edge_probability:
        Optional density override; ``None`` uses the paper-calibrated
        density (Table 2's edge counts).
    """

    n_vertices: int
    n_executions: int
    seed: int = 0
    edge_probability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_vertices < 2:
            raise ValueError("n_vertices must be >= 2 (START and END)")
        if self.n_executions < 0:
            raise ValueError("n_executions must be >= 0")


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated ground-truth graph together with its execution log."""

    config: SyntheticConfig
    graph: DiGraph
    log: EventLog


def synthetic_dataset(config: SyntheticConfig) -> SyntheticDataset:
    """Generate the random graph and log of one grid cell."""
    graph = random_process_dag(
        config.n_vertices,
        seed=config.seed,
        edge_probability=config.edge_probability,
    )
    log = generate_executions(
        graph,
        config.n_executions,
        seed=config.seed + 1,
        process_name=f"synthetic-{config.n_vertices}v",
    )
    return SyntheticDataset(config=config, graph=graph, log=log)


def generate_executions(
    graph: DiGraph,
    n_executions: int,
    seed: int = 0,
    process_name: str = "synthetic",
    start: str = START,
    end: str = END,
) -> EventLog:
    """Log ``n_executions`` random executions of ``graph`` (Section 8.1).

    The ready-list procedure guarantees each execution starts with
    ``start``, ends with ``end``, and respects every graph dependency
    among the activities it contains.
    """
    rng = random.Random(seed)
    closure = transitive_closure(graph)
    # ancestor_sets[a] = activities with a path to a (the "(B, A)
    # dependency" of the eviction rule).
    ancestor_sets: Dict[str, frozenset] = {
        node: frozenset(closure.predecessors(node)) for node in graph.nodes()
    }
    log = EventLog(process_name=process_name)
    for index in range(n_executions):
        sequence = _one_execution(graph, ancestor_sets, rng, start, end)
        log.append(
            Execution.from_sequence(
                sequence, execution_id=f"{process_name}-{index:06d}"
            )
        )
    return log


def _one_execution(
    graph: DiGraph,
    ancestor_sets: Dict[str, frozenset],
    rng: random.Random,
    start: str,
    end: str,
) -> List[str]:
    sequence = [start]
    logged = {start}
    # The ready list; kept sorted for deterministic RNG consumption.
    ready: List[str] = sorted(graph.successors(start))
    while ready:
        activity = ready.pop(rng.randrange(len(ready)))
        if activity in logged:
            continue
        sequence.append(activity)
        logged.add(activity)
        if activity == end:
            break
        # Eviction: drop every listed B with a (B, activity) dependency —
        # B was skipped, an execution would now violate B -> activity.
        ancestors = ancestor_sets[activity]
        ready = [b for b in ready if b not in ancestors]
        # Add A's direct descendants.
        for child in sorted(graph.successors(activity)):
            if child not in logged and child not in ready:
                ready.append(child)
    else:
        # Ready list exhausted without selecting END (possible when END's
        # only enablers were evicted); terminate explicitly so the trace
        # stays well-formed.
        if end not in logged:
            sequence.append(end)
    return sequence
