"""Random-walk trace generation over cyclic process graphs.

The workflow engine (like Flowmark) executes acyclic models only, but
Algorithm 3's evaluation needs logs whose executions repeat activities.
:class:`CyclicTraceGenerator` produces such logs directly from a cyclic
graph: it walks the graph like the Section 8.1 generator, but edges that
close a cycle ("loop edges", detected against a DFS spanning structure)
are taken probabilistically and re-enable their target's downstream
region, bounded by ``max_loop_iterations``.

The generator guarantees each trace starts at the source, ends at the
sink, and orders any two *dependent* activities (related by a path in the
acyclic skeleton) consistently — so Algorithm 3's relabelling sees
exactly the structure the paper describes in Example 8.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import CycleError
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_closure
from repro.graphs.traversal import topological_sort
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution

Edge = Tuple[str, str]


def random_cyclic_graph(
    n_vertices: int,
    n_loops: int = 2,
    seed: int = 0,
    edge_probability: float = 0.25,
) -> DiGraph:
    """Generate a random process graph with ``n_loops`` rework loops.

    Starts from a sparse random DAG (single source/sink) and adds
    ``n_loops`` back edges, each jumping from a vertex to one of its
    ancestors at distance >= 2 — the structured "go back and redo"
    loops Algorithm 3 targets.  Fewer back edges are added when the
    sampled DAG lacks long enough ancestor chains.
    """
    from repro.graphs.random_dag import random_process_dag

    rng = random.Random(seed)
    graph = random_process_dag(
        n_vertices, seed=seed, edge_probability=edge_probability
    )
    closure = transitive_closure(graph)
    source = graph.sources()[0]
    sink = graph.sinks()[0]
    candidates = []
    for node in graph.nodes():
        if node in (source, sink):
            continue
        for ancestor in closure.predecessors(node):
            if ancestor in (source, sink):
                continue
            # Jump-back distance >= 2: not a direct parent.
            if graph.has_edge(ancestor, node):
                continue
            candidates.append((node, ancestor))
    rng.shuffle(candidates)
    added = 0
    for back_source, back_target in candidates:
        if added >= n_loops:
            break
        if graph.has_edge(back_source, back_target):
            continue
        graph.add_edge(back_source, back_target)
        added += 1
    return graph


def loop_edges(graph: DiGraph) -> Set[Edge]:
    """Split a cyclic graph into loop edges and an acyclic skeleton.

    Loop (back) edges are detected with a depth-first search rooted at the
    graph's sources (falling back to insertion order for source-less
    graphs): an edge pointing at a vertex currently on the DFS stack
    closes a cycle.  Removing exactly those edges leaves an acyclic
    skeleton, and for structured rework loops ("repair -> retry") the
    removed edges are the natural jump-backs.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph.nodes()}
    removed: Set[Edge] = set()
    roots = graph.sources() or list(graph.nodes())
    other = [node for node in graph.nodes() if node not in roots]
    for root in [*roots, *other]:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(sorted(graph.successors(root), key=repr)))]
        color[root] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color[child] == GRAY:
                    removed.add((node, child))
                    continue
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append(
                        (
                            child,
                            iter(
                                sorted(
                                    graph.successors(child), key=repr
                                )
                            ),
                        )
                    )
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    # Verify the skeleton is acyclic (cross-component corner cases).
    skeleton = graph.copy()
    for edge in removed:
        skeleton.remove_edge(*edge)
    while True:
        try:
            topological_sort(skeleton)
            return removed
        except CycleError as exc:
            cycle = exc.cycle
            # Sliding-window pairing; the slice is shorter by design.
            edge = sorted(
                zip(cycle, cycle[1:], strict=False), reverse=True
            )[0]
            skeleton.remove_edge(*edge)
            removed.add(edge)


class CyclicTraceGenerator:
    """Generate executions of a cyclic process graph.

    Parameters
    ----------
    graph:
        The (cyclic) process graph; must have a unique source and sink.
    loop_probability:
        Probability of taking an enabled loop edge at each opportunity.
    max_loop_iterations:
        Hard cap on the times any single loop edge fires per execution.
    seed:
        RNG seed.

    Examples
    --------
    >>> g = DiGraph(edges=[("A", "B"), ("B", "C"), ("C", "B"), ("C", "E")])
    >>> generator = CyclicTraceGenerator(g, loop_probability=1.0,
    ...                                  max_loop_iterations=1, seed=7)
    >>> generator.generate(1)[0].sequence
    ['A', 'B', 'C', 'B', 'C', 'E']
    """

    def __init__(
        self,
        graph: DiGraph,
        loop_probability: float = 0.4,
        max_loop_iterations: int = 3,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= loop_probability <= 1.0:
            raise ValueError("loop_probability must be in [0, 1]")
        if max_loop_iterations < 0:
            raise ValueError("max_loop_iterations must be >= 0")
        self.graph = graph
        self.loop_probability = loop_probability
        self.max_loop_iterations = max_loop_iterations
        self.seed = seed

        self._loops = loop_edges(graph)
        self._skeleton = graph.copy()
        for edge in self._loops:
            self._skeleton.remove_edge(*edge)
        # The source must be unique in the skeleton; the sink is the
        # unique vertex with no outgoing edges in the *original* graph
        # (a loop body's tail legitimately dangles in the skeleton).
        sources = self._skeleton.sources()
        sinks = graph.sinks()
        if len(sources) != 1 or len(sinks) != 1:
            raise ValueError(
                "the process graph must have one source and one sink; "
                f"found sources={sources}, sinks={sinks}"
            )
        self.source = sources[0]
        self.sink = sinks[0]
        # Eviction ("(B, A) dependency") uses the *full* graph's paths so
        # that optional loop-tail activities (e.g. a Repair that a passed
        # Test never needs) are evicted when a downstream activity runs.
        full_closure = transitive_closure(graph)
        self._ancestors: Dict[str, FrozenSet[str]] = {
            node: frozenset(full_closure.predecessors(node))
            for node in graph.nodes()
        }
        closure = transitive_closure(self._skeleton)
        # Loop bodies: vertices re-enabled when a loop edge fires.
        self._loop_bodies: Dict[Edge, FrozenSet[str]] = {}
        for back_source, back_target in self._loops:
            body = {back_target}
            body |= set(closure.successors(back_target)) & (
                set(closure.predecessors(back_source)) | {back_source}
            )
            body.add(back_source)
            self._loop_bodies[(back_source, back_target)] = frozenset(body)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(
        self, n_executions: int, process_name: str = "cyclic"
    ) -> EventLog:
        """Generate a log of ``n_executions`` traces."""
        rng = random.Random(self.seed)
        log = EventLog(process_name=process_name)
        for index in range(n_executions):
            sequence = self._one_trace(rng)
            log.append(
                Execution.from_sequence(
                    sequence, execution_id=f"{process_name}-{index:06d}"
                )
            )
        return log

    def _one_trace(self, rng: random.Random) -> List[str]:
        sequence = [self.source]
        logged = {self.source}
        ready: List[str] = sorted(self._skeleton.successors(self.source))
        loop_fires: Dict[Edge, int] = {edge: 0 for edge in self._loops}
        # A fired loop edge means control jumped back: its body *must*
        # re-run before the trace may terminate.
        obligations: Set[str] = set()

        while ready:
            # "The next activity to be executed is selected from this
            # list in random order" — selecting the sink terminates the
            # trace even with candidates pending (Section 8.1 semantics),
            # unless a fired loop still owes its re-run.
            activity = ready.pop(rng.randrange(len(ready)))
            if activity == self.sink and obligations and ready:
                ready.append(activity)
                activity = ready.pop(rng.randrange(len(ready) - 1))
            sequence.append(activity)
            logged.add(activity)
            obligations.discard(activity)
            if activity == self.sink:
                break
            ready = [
                b for b in ready if b not in self._ancestors[activity]
            ]
            for child in sorted(self._skeleton.successors(activity)):
                if child not in logged and child not in ready:
                    ready.append(child)
            # Loop decision: may this activity jump back?
            for edge in sorted(self._loops):
                back_source, back_target = edge
                if back_source != activity:
                    continue
                if loop_fires[edge] >= self.max_loop_iterations:
                    continue
                if rng.random() >= self.loop_probability:
                    continue
                loop_fires[edge] += 1
                # Re-enable the loop body: its members may run again and
                # are owed a re-run before termination.
                body = self._loop_bodies[edge]
                logged -= set(body)
                logged.add(self.source)
                obligations |= set(body) - {self.sink}
                if back_target not in ready:
                    ready.append(back_target)
        if sequence[-1] != self.sink:
            sequence.append(self.sink)
        return sequence
