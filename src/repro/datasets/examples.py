"""The paper's worked examples, as ready-made models, graphs and logs.

Everything the running text of the paper exhibits is reproduced here so
tests and the worked-examples bench can assert the published outcomes:

* :func:`example1_model` — Figure 1's five-activity process with the
  Example 1 edge condition on (C, D);
* :func:`example3_log` — the Example 3/4 log ``{ABCE, ACDE, ADBE}``;
* :func:`example5_log` — Example 5's log ``{ADCE, ABCDE}`` (Figure 2);
* :func:`example6_log` — Example 6's log and its published mined graph
  (Figure 3);
* :func:`example7_log` — Example 7's log and its published mined graph
  (Figure 4);
* :func:`open_problem_log` — the two-conformal-graphs log of Figure 5;
* :func:`example8_log` — Example 8's cyclic log and the published merged
  graph (Figure 6);
* :func:`graph10` — the ten-activity synthetic graph of Figure 7,
  reconstructed from its listed "typical executions".
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.model.builder import ProcessBuilder
from repro.model.conditions import attr_gt, attr_le, attr_lt
from repro.model.process import ProcessModel

Edge = Tuple[str, str]


def example1_model() -> ProcessModel:
    """Figure 1: activities A–E; D always follows C; B parallel to C.

    The edge (C, D) carries Example 1's condition
    ``(o(C)[0] > 0) and (o(C)[1] < o(C)[0])`` — indices shifted to 0-based.
    """
    condition_cd = attr_gt(0, 0) & attr_lt(1, 50)
    return (
        ProcessBuilder("example1")
        .edge("A", "B")
        .edge("A", "C")
        .edge("B", "E")
        .edge("C", "D", condition=condition_cd)
        .edge("C", "E")
        .edge("D", "E")
        .build()
    )


def example1_edges() -> Set[Edge]:
    """Figure 1's edge set."""
    return {
        ("A", "B"), ("A", "C"), ("B", "E"),
        ("C", "D"), ("C", "E"), ("D", "E"),
    }


def example3_log() -> EventLog:
    """The Example 3 log ``{ABCE, ACDE, ADBE}`` (also Example 4's)."""
    return EventLog.from_sequences(
        ["ABCE", "ACDE", "ADBE"], process_name="example3"
    )


def example3_extended_log() -> EventLog:
    """Example 3's log extended with ``ADCE`` (B becomes dependent on D)."""
    return EventLog.from_sequences(
        ["ABCE", "ACDE", "ADBE", "ADCE"], process_name="example3-extended"
    )


def example5_log() -> EventLog:
    """Example 5's log ``{ADCE, ABCDE}`` (Figure 2)."""
    return EventLog.from_sequences(
        ["ADCE", "ABCDE"], process_name="example5"
    )


def example6_log() -> EventLog:
    """Example 6's log ``{ABCDE, ACDBE, ACBDE}``."""
    return EventLog.from_sequences(
        ["ABCDE", "ACDBE", "ACBDE"], process_name="example6"
    )


def example6_expected_edges() -> Set[Edge]:
    """Figure 3 (right): the published output of Algorithm 1."""
    return {("A", "B"), ("A", "C"), ("B", "E"), ("C", "D"), ("D", "E")}


def example7_log() -> EventLog:
    """Example 7's log ``{ABCF, ACDF, ADEF, AECF}``."""
    return EventLog.from_sequences(
        ["ABCF", "ACDF", "ADEF", "AECF"], process_name="example7"
    )


def example7_expected_edges() -> Set[Edge]:
    """Figure 4 (right): the published output of Algorithm 2.

    After removing the strongly connected component {C, D, E}'s internal
    edges and the unmarked edges, the mined graph keeps A's fan-out, B's
    chain into C and the three joins into F.
    """
    return {
        ("A", "B"), ("A", "C"), ("A", "D"), ("A", "E"),
        ("B", "C"), ("C", "F"), ("D", "F"), ("E", "F"),
    }


def open_problem_log() -> EventLog:
    """Figure 5's log ``{ACF, ADCF, ABCF, ADECF}`` with two minimal
    conformal graphs — the paper's open problem."""
    return EventLog.from_sequences(
        ["ACF", "ADCF", "ABCF", "ADECF"], process_name="open-problem"
    )


def example8_log() -> EventLog:
    """Example 8's cyclic log ``{ABDCE, ABDCBCE, ABCBDCE, ADE}``."""
    return EventLog.from_sequences(
        ["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"], process_name="example8"
    )


def example8_expected_cycle() -> Set[Edge]:
    """Figure 6 (right) "shows the cycle consisting of the activities B
    and C": both directions must be present after merging."""
    return {("B", "C"), ("C", "B")}


def graph10() -> DiGraph:
    """Figure 7's ten-activity graph (Graph10).

    The figure's topology is reconstructed from the caption's typical
    executions (ADBEJ, AGHEJ, ADGHBEJ, AGCFIBEJ) and the constraints they
    impose: A initiates, J terminates, D enables B, G enables both H and
    C, C enables F which enables I, and B/H/I join through E into J.
    """
    graph = DiGraph()
    for source, target in [
        ("A", "D"), ("A", "G"),
        ("D", "B"),
        ("G", "H"), ("G", "C"),
        ("C", "F"), ("F", "I"), ("I", "B"),
        ("B", "E"), ("H", "E"),
        ("E", "J"),
    ]:
        graph.add_edge(source, target)
    return graph


def graph10_expected_edges() -> Set[Edge]:
    """Graph10's edge set (the ground truth for the Figure 7 bench)."""
    return set(graph10().edges())


def graph10_typical_executions() -> List[str]:
    """The caption's "typical executions" of Graph10."""
    return ["ADBEJ", "AGHEJ", "ADGHBEJ", "AGCFIBEJ"]


def graph10_model() -> ProcessModel:
    """Graph10 as an executable process model for the workflow engine.

    The conditions reproduce the optionality visible in the typical
    executions: the D-branch and the C/F/I-chain are conditional (never
    both dead — their ranges overlap), everything else unconditional.
    """
    return (
        ProcessBuilder("Graph10")
        .edge("A", "D", condition=attr_gt(0, 30))
        .edge("A", "G", condition=attr_le(0, 70))
        .edge("D", "B")
        .edge("G", "H")
        .edge("G", "C", condition=attr_gt(0, 50))
        .edge("C", "F")
        .edge("F", "I")
        .edge("I", "B")
        .edge("B", "E")
        .edge("H", "E")
        .edge("E", "J")
        .build()
    )
