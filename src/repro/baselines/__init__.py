"""Baseline approaches the paper positions itself against.

The related-work section contrasts process-graph mining with two prior
families, both implemented here from scratch so the comparison can be
made empirically (bench ``bench_baselines.py``):

* **Sequential pattern mining** (Agrawal & Srikant 1995; Mannila et al.
  1995) — :mod:`repro.baselines.sequential`.  The paper: "sequential
  patterns allow only a total ordering of fully parallel subsets,
  whereas process graphs are richer structures"; and the goal there "is
  to discover all patterns that occur frequently" rather than one
  conformal structure.
* **Finite-state-machine process discovery** (Cook & Wolf 1995/96) —
  :mod:`repro.baselines.ktails`.  The paper: in an automaton "the same
  token (activity) may appear multiple times", whereas "an activity
  appears only once in a process graph as a vertex label" — the SABE /
  SBAE example.
"""

from repro.baselines.ktails import Automaton, ktails_automaton
from repro.baselines.sequential import (
    SequentialPattern,
    mine_sequential_patterns,
)

__all__ = [
    "Automaton",
    "SequentialPattern",
    "ktails_automaton",
    "mine_sequential_patterns",
]
