"""Sequential pattern mining (AprioriAll-style), as a baseline.

A from-scratch implementation of the frequent-subsequence mining of
Agrawal & Srikant (ICDE 1995), restricted to single-activity elements —
which is exactly the shape of workflow executions.  A *pattern* is a
sequence of activities; a log execution *supports* it when the pattern
is an (order-preserving, not necessarily contiguous) subsequence of the
execution's activity sequence; a pattern is frequent when its support
ratio meets the threshold.

The miner is level-wise:

1. ``L1`` — frequent single activities;
2. candidates ``C_{k+1}`` are joins of ``L_k`` pairs that overlap on
   ``k-1`` elements (the AprioriAll join), pruned by the Apriori
   property (every length-``k`` subsequence must be frequent);
3. supports are counted against the log; iteration stops when a level
   is empty.

The paper's related-work argument that this module exists to exhibit:
frequent sequences describe *total orders* of what co-occurs often, so a
process with parallel branches yields a pile of overlapping patterns,
none of which captures branching or synchronization — the bench
quantifies that against the mined process graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.errors import EmptyLogError
from repro.logs.event_log import EventLog

Pattern = Tuple[str, ...]


@dataclass(frozen=True)
class SequentialPattern:
    """One frequent sequential pattern with its support.

    Attributes
    ----------
    sequence:
        The activity sequence.
    support:
        Fraction of log executions containing it as a subsequence.
    maximal:
        Whether no frequent super-pattern contains it (AprioriAll
        reports the maximal ones as the answer set).
    """

    sequence: Pattern
    support: float
    maximal: bool = False

    def __len__(self) -> int:
        return len(self.sequence)

    def __str__(self) -> str:
        arrow = " -> ".join(self.sequence)
        flag = " (maximal)" if self.maximal else ""
        return f"<{arrow}> support={self.support:.2f}{flag}"


def is_subsequence(pattern: Sequence[str], sequence: Sequence[str]) -> bool:
    """Order-preserving subsequence test."""
    iterator = iter(sequence)
    return all(any(item == step for step in iterator) for item in pattern)


def pattern_support(pattern: Sequence[str], log: EventLog) -> float:
    """Fraction of executions supporting ``pattern``."""
    if len(log) == 0:
        raise EmptyLogError("cannot compute support on an empty log")
    hits = sum(
        1
        for execution in log
        if is_subsequence(pattern, execution.sequence)
    )
    return hits / len(log)


def mine_sequential_patterns(
    log: EventLog,
    min_support: float = 0.5,
    max_length: int = 12,
) -> List[SequentialPattern]:
    """Mine all frequent sequential patterns of ``log``.

    Parameters
    ----------
    log:
        Workflow executions.
    min_support:
        Minimum support ratio in ``(0, 1]``.
    max_length:
        Safety cap on pattern length.

    Returns
    -------
    list of SequentialPattern
        All frequent patterns of length >= 1, sorted by length then
        lexicographically, with maximal ones flagged.
    """
    log.require_non_empty()
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    if max_length < 1:
        raise ValueError("max_length must be >= 1")

    sequences = log.sequences()
    total = len(sequences)
    threshold = min_support * total

    # L1.
    counts: Dict[Pattern, int] = {}
    for sequence in sequences:
        for activity in set(sequence):
            counts[(activity,)] = counts.get((activity,), 0) + 1
    current: Dict[Pattern, int] = {
        pattern: count
        for pattern, count in counts.items()
        if count >= threshold
    }
    frequent: Dict[Pattern, int] = dict(current)

    length = 1
    while current and length < max_length:
        candidates = _generate_candidates(set(current), length)
        candidates = {
            candidate
            for candidate in candidates
            if _all_subpatterns_frequent(candidate, frequent)
        }
        next_level: Dict[Pattern, int] = {}
        for candidate in candidates:
            count = sum(
                1
                for sequence in sequences
                if is_subsequence(candidate, sequence)
            )
            if count >= threshold:
                next_level[candidate] = count
        frequent.update(next_level)
        current = next_level
        length += 1

    maximal = _maximal_patterns(set(frequent))
    results = [
        SequentialPattern(
            sequence=pattern,
            support=count / total,
            maximal=pattern in maximal,
        )
        for pattern, count in frequent.items()
    ]
    results.sort(key=lambda p: (len(p.sequence), p.sequence))
    return results


def maximal_sequential_patterns(
    log: EventLog, min_support: float = 0.5, max_length: int = 12
) -> List[SequentialPattern]:
    """Only the maximal frequent patterns (AprioriAll's answer set)."""
    return [
        pattern
        for pattern in mine_sequential_patterns(
            log, min_support=min_support, max_length=max_length
        )
        if pattern.maximal
    ]


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------
def _generate_candidates(
    level: Set[Pattern], length: int
) -> Set[Pattern]:
    """AprioriAll join: p + q when p[1:] == q[:-1]."""
    if length == 1:
        return {
            (a[0], b[0])
            for a in level
            for b in level
            if a[0] != b[0]
        }
    candidates = set()
    by_prefix: Dict[Pattern, List[Pattern]] = {}
    for pattern in level:
        by_prefix.setdefault(pattern[:-1], []).append(pattern)
    for pattern in level:
        for extension in by_prefix.get(pattern[1:], ()):
            candidates.add(pattern + (extension[-1],))
    return candidates


def _all_subpatterns_frequent(
    candidate: Pattern, frequent: Dict[Pattern, int]
) -> bool:
    """Apriori pruning: every (k-1)-subsequence must be frequent."""
    for skip in range(len(candidate)):
        sub = candidate[:skip] + candidate[skip + 1:]
        if sub and sub not in frequent:
            return False
    return True


def _maximal_patterns(frequent: Set[Pattern]) -> FrozenSet[Pattern]:
    return frozenset(
        pattern
        for pattern in frequent
        if not any(
            len(other) > len(pattern) and is_subsequence(pattern, other)
            for other in frequent
        )
    )
