"""Finite-state-machine process discovery (k-tails), as a baseline.

Cook & Wolf's process-discovery work — the prior art of the paper's
related-work section — models a process as an automaton learned from the
event stream, classically with Biermann's *k-tails* algorithm: build the
prefix-tree acceptor of the traces, then merge states whose sets of
length-<=k continuations ("tails") coincide.

The paper's structural argument against this representation (Section 1):
activities label *transitions*, so "the same token (activity) may appear
multiple times in an automaton", whereas a process graph names each
activity once and represents parallelism by branching.  The two-branch
process S -> {A, B} -> E with traces SABE and SBAE is its example; the
bench reproduces it quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.logs.event_log import EventLog

State = int
Transition = Tuple[State, str, State]


@dataclass
class Automaton:
    """A (possibly nondeterministic) finite automaton over activities.

    Attributes
    ----------
    initial:
        The start state.
    accepting:
        States where a trace may legally end.
    transitions:
        The labelled edges.
    """

    initial: State
    accepting: FrozenSet[State]
    transitions: FrozenSet[Transition]

    @property
    def states(self) -> FrozenSet[State]:
        """All states appearing anywhere in the automaton."""
        found: Set[State] = {self.initial}
        found |= set(self.accepting)
        for source, _, target in self.transitions:
            found.add(source)
            found.add(target)
        return frozenset(found)

    @property
    def state_count(self) -> int:
        """Number of states."""
        return len(self.states)

    @property
    def transition_count(self) -> int:
        """Number of labelled transitions."""
        return len(self.transitions)

    def label_multiplicity(self) -> Dict[str, int]:
        """How many distinct transitions carry each activity label.

        The paper's point: in a process graph every activity appears
        once (as a vertex); an automaton of a parallel process must
        duplicate activity labels across transitions.
        """
        counts: Dict[str, int] = {}
        for _, label, _ in self.transitions:
            counts[label] = counts.get(label, 0) + 1
        return counts

    def accepts(self, sequence: Sequence[str]) -> bool:
        """Whether the automaton accepts ``sequence`` (NFA semantics)."""
        current: Set[State] = {self.initial}
        for symbol in sequence:
            current = {
                target
                for source, label, target in self.transitions
                if source in current and label == symbol
            }
            if not current:
                return False
        return bool(current & self.accepting)


def prefix_tree_acceptor(log: EventLog) -> Automaton:
    """Build the prefix-tree acceptor (PTA) of the log's traces."""
    log.require_non_empty()
    next_state = 1
    children: Dict[Tuple[State, str], State] = {}
    accepting: Set[State] = set()
    transitions: Set[Transition] = set()
    for sequence in log.sequences():
        state = 0
        for symbol in sequence:
            key = (state, symbol)
            if key not in children:
                children[key] = next_state
                transitions.add((state, symbol, next_state))
                next_state += 1
            state = children[key]
        accepting.add(state)
    return Automaton(
        initial=0,
        accepting=frozenset(accepting),
        transitions=frozenset(transitions),
    )


def ktails_automaton(log: EventLog, k: int = 2) -> Automaton:
    """Learn an automaton from ``log`` with the k-tails algorithm.

    States of the prefix-tree acceptor are merged when their *k-tails*
    — the sets of continuations of length <= k, with acceptance marks —
    are identical.  ``k`` controls generalization: larger k merges less
    and overfits the log; smaller k generalizes more aggressively.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    pta = prefix_tree_acceptor(log)

    # Adjacency of the PTA (deterministic by construction).
    outgoing: Dict[State, List[Tuple[str, State]]] = {}
    for source, label, target in pta.transitions:
        outgoing.setdefault(source, []).append((label, target))

    def tails(state: State, depth: int) -> FrozenSet[Tuple[str, ...]]:
        """All continuation strings of length <= depth from ``state``,
        marking ends that are accepting with a terminal token."""
        results: Set[Tuple[str, ...]] = set()
        if state in pta.accepting:
            results.add(("$",))
        if depth == 0:
            results.add(())
            return frozenset(results)
        for label, target in outgoing.get(state, ()):
            for continuation in tails(target, depth - 1):
                results.add((label,) + continuation)
        if not outgoing.get(state):
            results.add(())
        return frozenset(results)

    signature: Dict[State, FrozenSet[Tuple[str, ...]]] = {
        state: tails(state, k) for state in pta.states
    }
    # Group states by identical signatures.
    groups: Dict[FrozenSet[Tuple[str, ...]], int] = {}
    mapping: Dict[State, int] = {}
    for state in sorted(pta.states):
        key = signature[state]
        if key not in groups:
            groups[key] = len(groups)
        mapping[state] = groups[key]

    merged_transitions = frozenset(
        (mapping[source], label, mapping[target])
        for source, label, target in pta.transitions
    )
    merged_accepting = frozenset(
        mapping[state] for state in pta.accepting
    )
    return Automaton(
        initial=mapping[pta.initial],
        accepting=merged_accepting,
        transitions=merged_transitions,
    )
