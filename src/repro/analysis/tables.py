"""Fixed-width text tables in the style of the paper's result tables.

Every bench prints its reproduction of a paper table through
:class:`TextTable`, so the console output lines up with the published
rows for eyeball comparison.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


class TextTable:
    """A simple fixed-width table renderer.

    Examples
    --------
    >>> table = TextTable(["n", "time (s)"])
    >>> table.add_row([10, 4.6])
    >>> table.add_row([25, 6.5])
    >>> print(table.render())
    n  | time (s)
    ---+---------
    10 | 4.6
    25 | 6.5
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers: List[str] = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row; floats render with 4 significant digits."""
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: Cell) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        """Render the table as aligned text."""
        columns = len(self.headers)
        normalized = [
            row + [""] * (columns - len(row)) for row in self.rows
        ]
        widths = [
            max(
                len(self.headers[i]),
                max((len(row[i]) for row in normalized), default=0),
            )
            for i in range(columns)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(
            self.headers[i].ljust(widths[i]) for i in range(columns)
        ).rstrip()
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in normalized:
            lines.append(
                " | ".join(
                    row[i].ljust(widths[i]) for i in range(columns)
                ).rstrip()
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
