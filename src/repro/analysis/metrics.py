"""Graph-recovery metrics.

Wraps the raw edge comparison of :mod:`repro.graphs.compare` with the
context the paper's tables report: original and mined edge counts
(Table 2's two rows), recovery verdicts, and per-log context (execution
count, log size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graphs.compare import EdgeComparison, compare_edges
from repro.graphs.digraph import DiGraph
from repro.logs.codec import log_size_bytes
from repro.logs.event_log import EventLog


@dataclass(frozen=True)
class RecoveryMetrics:
    """How well a mined graph recovered its ground truth.

    Attributes
    ----------
    comparison:
        The underlying edge comparison.
    edges_present:
        Ground-truth edge count (Table 2's "Edges Present" row).
    edges_found:
        Mined edge count (Table 2's "Edges found" rows).
    executions:
        Number of log executions used, when known.
    log_bytes:
        Serialized log size, when known (Tables 1 and 3 report it).
    """

    comparison: EdgeComparison
    edges_present: int
    edges_found: int
    executions: Optional[int] = None
    log_bytes: Optional[int] = None

    @property
    def verdict(self) -> str:
        """Recovery verdict (exact / supergraph / subgraph / ...)."""
        return self.comparison.verdict

    @property
    def is_exact(self) -> bool:
        """Whether the mined edge set equals the ground truth."""
        return self.comparison.is_exact

    @property
    def precision(self) -> float:
        """Edge precision of the mined graph."""
        return self.comparison.precision

    @property
    def recall(self) -> float:
        """Edge recall of the mined graph."""
        return self.comparison.recall

    @property
    def f1(self) -> float:
        """Edge F1 of the mined graph."""
        return self.comparison.f1

    def describe(self) -> str:
        """One-line summary in the style of the paper's discussion."""
        parts = [
            f"present={self.edges_present}",
            f"found={self.edges_found}",
            f"verdict={self.verdict}",
            f"precision={self.precision:.3f}",
            f"recall={self.recall:.3f}",
        ]
        if self.executions is not None:
            parts.insert(0, f"executions={self.executions}")
        return ", ".join(parts)


def recovery_metrics(
    original: DiGraph,
    mined: DiGraph,
    log: Optional[EventLog] = None,
) -> RecoveryMetrics:
    """Compare ``mined`` against ``original`` with optional log context."""
    comparison = compare_edges(original, mined)
    return RecoveryMetrics(
        comparison=comparison,
        edges_present=original.edge_count,
        edges_found=mined.edge_count,
        executions=len(log) if log is not None else None,
        log_bytes=log_size_bytes(log) if log is not None else None,
    )
