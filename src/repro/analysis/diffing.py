"""Structured comparison of a purported model against mined reality.

The paper's introduction names this use case directly: an installed
workflow system "can help in the evaluation of the workflow system by
comparing the synthesized process graphs with purported graphs".

:func:`diff_against_log` mines a log and compares it with the purported
process model on three levels:

* **activities** — performed but not modelled / modelled but never
  performed;
* **edges** — modelled edges never needed vs. mined edges the model
  lacks;
* **dependencies** — transitive-closure level disagreements: orderings
  the model mandates that the log contradicts (violated dependencies)
  and orderings the log exhibits that the model does not explain;
* **executions** — logged executions the purported model does not admit.

The result renders as a reviewer-friendly report (the CLI's ``compare``
command prints it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.core.conformance import is_consistent
from repro.core.general_dag import mine_general_dag
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_closure
from repro.logs.event_log import EventLog
from repro.model.process import ProcessModel

Edge = Tuple[str, str]


@dataclass(frozen=True)
class ModelLogDiff:
    """Outcome of diffing a purported model against a mined log.

    Attributes
    ----------
    unmodelled_activities:
        Activities the log performs that the model lacks.
    unperformed_activities:
        Activities the model declares that the log never ran.
    missing_edges:
        Mined edges absent from the model (behaviour the model does not
        allow directly).
    unused_edges:
        Model edges never required by any logged execution.
    contradicted_dependencies:
        Model-mandated orderings ``(a, b)`` the log violates (both
        orders, or overlap, observed).
    unexplained_dependencies:
        Log dependencies with no corresponding model path.
    rejected_executions:
        ``(execution_id, reason)`` for logged executions the model does
        not admit (Definition 6).
    mined:
        The mined graph the comparison was made against.
    """

    unmodelled_activities: FrozenSet[str]
    unperformed_activities: FrozenSet[str]
    missing_edges: FrozenSet[Edge]
    unused_edges: FrozenSet[Edge]
    contradicted_dependencies: FrozenSet[Edge]
    unexplained_dependencies: FrozenSet[Edge]
    rejected_executions: Tuple[Tuple[str, str], ...]
    mined: DiGraph = field(compare=False, repr=False, default=None)

    @property
    def is_clean(self) -> bool:
        """Whether the model and the log agree on every level."""
        return not (
            self.unmodelled_activities
            or self.unperformed_activities
            or self.missing_edges
            or self.unused_edges
            or self.contradicted_dependencies
            or self.unexplained_dependencies
            or self.rejected_executions
        )

    def report(self) -> str:
        """Render the diff as a multi-line review report."""
        if self.is_clean:
            return "model and log agree: no differences found"
        sections: List[str] = []

        def edge_lines(edges) -> List[str]:
            return [f"  {a} -> {b}" for a, b in sorted(edges)]

        if self.unmodelled_activities:
            sections.append(
                "activities performed but not in the model:\n  "
                + ", ".join(sorted(self.unmodelled_activities))
            )
        if self.unperformed_activities:
            sections.append(
                "modelled activities never performed:\n  "
                + ", ".join(sorted(self.unperformed_activities))
            )
        if self.missing_edges:
            sections.append(
                "mined control flow missing from the model:\n"
                + "\n".join(edge_lines(self.missing_edges))
            )
        if self.unused_edges:
            sections.append(
                "model edges never exercised by the log:\n"
                + "\n".join(edge_lines(self.unused_edges))
            )
        if self.contradicted_dependencies:
            sections.append(
                "model-mandated orderings the log contradicts:\n"
                + "\n".join(edge_lines(self.contradicted_dependencies))
            )
        if self.unexplained_dependencies:
            sections.append(
                "log dependencies the model does not explain:\n"
                + "\n".join(edge_lines(self.unexplained_dependencies))
            )
        if self.rejected_executions:
            lines = [
                f"  {execution_id}: {reason}"
                for execution_id, reason in self.rejected_executions[:10]
            ]
            more = len(self.rejected_executions) - 10
            if more > 0:
                lines.append(f"  ... and {more} more")
            sections.append(
                "executions the model does not admit:\n"
                + "\n".join(lines)
            )
        return "\n\n".join(sections)


def diff_against_log(
    model: ProcessModel,
    log: EventLog,
    mined: Optional[DiGraph] = None,
    threshold: int = 0,
) -> ModelLogDiff:
    """Diff a purported ``model`` against what ``log`` actually shows.

    Parameters
    ----------
    model:
        The purported process model.
    log:
        Real executions (of what is believed to be the same process).
    mined:
        Optionally a pre-mined graph for the log; mined with Algorithm 2
        otherwise.
    threshold:
        Noise threshold for the mining pass.
    """
    log.require_non_empty()
    if mined is None:
        mined = mine_general_dag(log, threshold=threshold)

    model_graph = model.graph
    log_activities = set(log.activities())
    model_activities = set(model.activity_names)

    mined_closure = transitive_closure(mined)
    model_closure = transitive_closure(model_graph)

    shared = log_activities & model_activities

    # Dependencies the model mandates (paths) among performed activities
    # that the log contradicts: the mined graph orders them the other
    # way or not at all.
    contradicted = set()
    unexplained = set()
    for a in sorted(shared):
        for b in sorted(shared):
            if a == b:
                continue
            model_dep = model_closure.has_edge(a, b)
            mined_dep = mined_closure.has_edge(a, b)
            if model_dep and not mined_dep:
                contradicted.add((a, b))
            elif mined_dep and not model_dep:
                unexplained.add((a, b))

    rejected = []
    for execution in log:
        reason = is_consistent(
            model_graph, execution, model.source, model.sink
        )
        if reason is not None:
            rejected.append((execution.execution_id, reason))

    mined_edges = {
        (a, b)
        for a, b in mined.edges()
        if a in model_activities and b in model_activities
    }
    model_edges = model_graph.edge_set()

    return ModelLogDiff(
        unmodelled_activities=frozenset(
            log_activities - model_activities
        ),
        unperformed_activities=frozenset(
            model_activities - log_activities
        ),
        missing_edges=frozenset(mined_edges - model_edges),
        unused_edges=frozenset(
            (a, b)
            for a, b in model_edges - mined_edges
            # An unused edge is one the log never needed *directly*;
            # edges between unperformed activities are reported via the
            # activity section instead.
            if a in log_activities and b in log_activities
        ),
        contradicted_dependencies=frozenset(contradicted),
        unexplained_dependencies=frozenset(unexplained),
        rejected_executions=tuple(rejected),
        mined=mined,
    )
