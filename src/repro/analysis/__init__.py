"""Evaluation metrics and report rendering.

* :mod:`repro.analysis.metrics` — graph-recovery metrics over mined vs.
  ground-truth graphs, wrapping :mod:`repro.graphs.compare` with
  log-aware context;
* :mod:`repro.analysis.recovery` — end-to-end "generate, mine, compare"
  runs used by the Table 1/2 benches;
* :mod:`repro.analysis.tables` — fixed-width text tables matching the
  paper's layout, printed by every bench;
* :mod:`repro.analysis.diffing` — purported-model vs. mined-log diffs
  (the paper's "evaluation of the workflow system" use case).
"""

from repro.analysis.coverage import CoverageReport, edge_coverage
from repro.analysis.diffing import ModelLogDiff, diff_against_log
from repro.analysis.metrics import RecoveryMetrics, recovery_metrics
from repro.analysis.recovery import RecoveryRun, run_recovery
from repro.analysis.tables import TextTable

__all__ = [
    "CoverageReport",
    "ModelLogDiff",
    "RecoveryMetrics",
    "RecoveryRun",
    "TextTable",
    "diff_against_log",
    "edge_coverage",
    "recovery_metrics",
    "run_recovery",
]
