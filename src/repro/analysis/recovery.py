"""End-to-end recovery runs: generate → mine → compare, with timing.

One :class:`RecoveryRun` corresponds to one cell of the paper's Table 1 /
Table 2 grid: a random graph of ``n`` vertices, a log of ``m`` executions,
Algorithm 2, the wall-clock mining time, and the edge-recovery metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.metrics import RecoveryMetrics, recovery_metrics
from repro.core.general_dag import mine_general_dag
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog


@dataclass(frozen=True)
class RecoveryRun:
    """Outcome of one generate-mine-compare cell.

    Attributes
    ----------
    n_vertices, n_executions:
        The grid coordinates.
    mining_seconds:
        Wall-clock time of the mining call alone (generation excluded),
        matching the paper's reported "execution times" which measure the
        algorithm over an existing log.
    metrics:
        Edge-recovery metrics against the generating graph.
    mined:
        The mined graph.
    log:
        The generated log (kept so callers can reuse it).
    """

    n_vertices: int
    n_executions: int
    mining_seconds: float
    metrics: RecoveryMetrics
    mined: DiGraph
    log: EventLog


def run_recovery(
    n_vertices: int,
    n_executions: int,
    seed: int = 0,
    threshold: int = 0,
) -> RecoveryRun:
    """Run one Table 1 / Table 2 grid cell.

    The synthetic dataset is generated with the Section 8.1 procedure;
    Algorithm 2 mines it; timing covers mining only.
    """
    dataset = synthetic_dataset(
        SyntheticConfig(
            n_vertices=n_vertices, n_executions=n_executions, seed=seed
        )
    )
    started = time.perf_counter()
    mined = mine_general_dag(dataset.log, threshold=threshold)
    elapsed = time.perf_counter() - started
    metrics = recovery_metrics(dataset.graph, mined, log=dataset.log)
    return RecoveryRun(
        n_vertices=n_vertices,
        n_executions=n_executions,
        mining_seconds=elapsed,
        metrics=metrics,
        mined=mined,
        log=dataset.log,
    )
