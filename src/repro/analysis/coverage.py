"""Edge-coverage analysis: how thoroughly a log exercises a model.

Before trusting a mined or evolved model — and before pruning
"unobserved" edges — a workflow owner needs to know how well the log
covers the model: which edges were *required* by some execution, which
were merely compatible, and which never mattered.  This module computes
that per-edge usage from the step-5 marking machinery (an edge is *used*
by an execution when it appears in the execution's induced-subgraph
transitive reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_reduction_edges
from repro.logs.event_log import EventLog

Edge = Tuple[str, str]


@dataclass(frozen=True)
class EdgeUsage:
    """Usage of one model edge across a log.

    Attributes
    ----------
    required:
        Executions whose induced transitive reduction needed the edge.
    compatible:
        Executions ordering the edge's endpoints accordingly (superset
        of ``required``).
    co_present:
        Executions containing both endpoints.
    """

    required: int
    compatible: int
    co_present: int

    @property
    def is_exercised(self) -> bool:
        """Whether at least one execution required this edge."""
        return self.required > 0


@dataclass(frozen=True)
class CoverageReport:
    """Per-edge usage plus aggregate coverage of a model by a log.

    Attributes
    ----------
    usage:
        Per-edge :class:`EdgeUsage`.
    executions:
        Number of executions analysed.
    """

    usage: Dict[Edge, EdgeUsage]
    executions: int

    @property
    def exercised_edges(self) -> int:
        """Number of model edges required by at least one execution."""
        return sum(1 for u in self.usage.values() if u.is_exercised)

    @property
    def coverage(self) -> float:
        """Fraction of model edges exercised (1.0 for an edgeless model)."""
        if not self.usage:
            return 1.0
        return self.exercised_edges / len(self.usage)

    def unexercised(self) -> list:
        """Model edges no execution required, sorted."""
        return sorted(
            edge for edge, u in self.usage.items() if not u.is_exercised
        )

    def report(self) -> str:
        """Render a per-edge coverage table."""
        lines = [
            f"edge coverage: {self.exercised_edges}/{len(self.usage)} "
            f"({self.coverage:.0%}) over {self.executions} executions",
        ]
        width = max(
            (len(f"{a} -> {b}") for a, b in self.usage), default=10
        )
        for edge in sorted(self.usage):
            u = self.usage[edge]
            label = f"{edge[0]} -> {edge[1]}"
            lines.append(
                f"  {label:<{width}}  required={u.required:<5} "
                f"compatible={u.compatible:<5} "
                f"co-present={u.co_present}"
            )
        return "\n".join(lines)


def edge_coverage(graph: DiGraph, log: EventLog) -> CoverageReport:
    """Compute how ``log`` exercises the edges of ``graph``.

    ``graph`` may be a purported model's graph or a mined graph; edges
    between activities the log never performs report zero everywhere.
    """
    log.require_non_empty()
    edge_set = graph.edge_set()
    required: Dict[Edge, int] = {edge: 0 for edge in edge_set}
    compatible: Dict[Edge, int] = {edge: 0 for edge in edge_set}
    co_present: Dict[Edge, int] = {edge: 0 for edge in edge_set}

    for execution in log:
        activities = execution.activities
        pairs = set(execution.ordered_pairs())
        induced_edges = pairs & edge_set
        needed = transitive_reduction_edges(
            DiGraph(nodes=activities, edges=induced_edges)
        )
        for edge in edge_set:
            source, target = edge
            if source in activities and target in activities:
                co_present[edge] += 1
            if edge in pairs:
                compatible[edge] += 1
            if edge in needed:
                required[edge] += 1

    usage = {
        edge: EdgeUsage(
            required=required[edge],
            compatible=compatible[edge],
            co_present=co_present[edge],
        )
        for edge in edge_set
    }
    return CoverageReport(usage=usage, executions=len(log))
