"""JSON-lines interchange for workflow logs.

The tab-separated codec (:mod:`repro.logs.codec`) mirrors the paper's
Flowmark audit format; this module provides the same records as JSON
lines for interchange with modern tooling — one object per line::

    {"process": "claims", "execution": "run-000001",
     "activity": "Assess", "type": "END", "time": 3.5,
     "output": [42.0, 7.0]}

START events carry ``"output": null``.  Field names are fixed; unknown
fields are ignored on read so sidecar metadata survives round-trips
through other tools.
"""

from __future__ import annotations

import json
import math
import re
import sys
from itertools import islice
from pathlib import Path
from typing import IO, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import LogFormatError
from repro.logs.event_log import EventLog
from repro.logs.events import END_EVENT, START_EVENT, EventRecord
from repro.logs.execution import Execution
from repro.resilience.durable import durable_stream_writer
from repro.logs.ingest import (
    DEFAULT_STREAM_WINDOW,
    INGEST_BLOCK_LINES,
    POLICY_STRICT,
    IngestLimits,
    IngestReport,
    IngestResult,
    Quarantine,
    ingest_blocks,
    iter_ingest_blocks,
)

PathOrStr = Union[str, Path]

_REQUIRED_FIELDS = ("process", "execution", "activity", "type", "time")


def _require_number(
    value: object, what: str, line_number: Optional[int]
) -> float:
    # ``float(True)`` and ``float("3.5")`` both succeed, so explicit
    # type checks are needed to reject non-numeric JSON values; NaN and
    # Infinity are valid JSON extensions but poison timestamp ordering.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise LogFormatError(
            f"{what} must be a number, got {value!r}", line_number
        )
    if not math.isfinite(value):
        raise LogFormatError(
            f"{what} must be finite, got {value!r}", line_number
        )
    return float(value)


def record_to_json(record: EventRecord, process_name: str) -> str:
    """Serialize one record to its JSON line (no trailing newline)."""
    return json.dumps(
        {
            "process": process_name,
            "execution": record.execution_id,
            "activity": record.activity,
            "type": record.event_type,
            "time": record.timestamp,
            "output": (
                list(record.output) if record.output is not None else None
            ),
        },
        sort_keys=True,
    )


def record_from_json(
    line: str, line_number: Optional[int] = None
) -> Tuple[str, EventRecord]:
    """Parse one JSON line into ``(process_name, record)``."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"invalid JSON: {exc}", line_number) from exc
    if not isinstance(payload, dict):
        raise LogFormatError("record must be a JSON object", line_number)
    missing = [f for f in _REQUIRED_FIELDS if f not in payload]
    if missing:
        raise LogFormatError(
            f"missing fields {missing}", line_number
        )
    output = payload.get("output")
    if output is not None:
        if not isinstance(output, list):
            raise LogFormatError(
                "output must be a list or null", line_number
            )
        output = tuple(
            _require_number(v, "output entry", line_number) for v in output
        )
    timestamp = _require_number(payload["time"], "time", line_number)
    try:
        record = EventRecord(
            timestamp=timestamp,
            execution_id=str(payload["execution"]),
            activity=str(payload["activity"]),
            event_type=str(payload["type"]),
            output=output,
        )
    except (TypeError, ValueError) as exc:
        raise LogFormatError(str(exc), line_number) from exc
    return str(payload["process"]), record


#: JSON's number grammar, verbatim.  ``float()`` accepts a superset
#: (``"01"``, ``"+1"``, ``"nan"``); anchoring the scanner to the exact
#: grammar keeps it from accepting lines ``json.loads`` would reject.
_JSON_NUMBER = r"-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?"

#: The exact shape :func:`record_to_json` emits (``sort_keys=True``,
#: default separators, no escape sequences in any string).  Lines that
#: do not match — foreign key order, escaped characters, sidecar fields
#: — fall back to :func:`json.loads`, so matching is a pure fast path.
#: String fields exclude raw control characters because strict JSON
#: rejects them; allowing them here would accept lines the per-line
#: reader errors on.
_CANONICAL_LINE = re.compile(
    r'\{"activity": "([^"\\\x00-\x1f]+)", '
    r'"execution": "([^"\\\x00-\x1f]+)", '
    r'"output": (null|\[(?:'
    + _JSON_NUMBER
    + r"(?:, "
    + _JSON_NUMBER
    + r')*)?\]), '
    r'"process": "([^"\\\x00-\x1f]*)", '
    r'"time": (' + _JSON_NUMBER + r'), '
    r'"type": "(START|END)"\}\s*\Z'
)

#: Everything but the execution id of a canonical line is literal
#: text, so a line whose id-excised text equals a previously validated
#: line's is itself canonical — provided the excised id is one valid
#: id token.  This pattern is that final check.
_EID_TOKEN = re.compile(r'[^"\\\x00-\x1f]+\Z')

#: The key whose value :func:`scan_batch` excises.  Its quotes cannot
#: appear inside any canonical string value, so its first occurrence in
#: a canonical line is exactly the grammar position.
_EID_PREFIX = '"execution": "'
_EID_PREFIX_LEN = len(_EID_PREFIX)

#: Default bound of the caller-owned line memo ``scan_batch`` fills.
#: Keys are whole excised lines, so entries are ~100 bytes plus the
#: shared field tuple; the cap bounds a worst-case all-distinct stream
#: at a few tens of MB before the memo resets.
DEFAULT_LINE_MEMO = 65536

#: One record's codec-independent identity: ``(timestamp, activity,
#: event type, output)`` — everything but the execution id.
RawFields = Tuple[float, str, str, Optional[Tuple[float, ...]]]


def scan_batch(
    lines: Sequence[str],
    start: int = 1,
    memo: Optional[dict] = None,
    memo_cap: int = DEFAULT_LINE_MEMO,
) -> Tuple[
    List[Tuple[int, str, str, str, RawFields]],
    Optional[Tuple[int, str]],
]:
    """Scan canonical JSON lines into raw field tuples, memoizing.

    The zero-object decode path behind :class:`repro.logs.fastfold.
    FoldingIngestStream`: each scanned line yields ``(line_number,
    raw_line, process, execution_id, fields)`` where ``fields`` is the
    shared :data:`RawFields` tuple — no :class:`EventRecord` is built.
    ``memo`` (caller-owned, bounded by ``memo_cap``) maps the line text
    with the execution id excised to its validated ``(process,
    fields)``; repeated traces that differ only in execution id — the
    regime real logs live in — hit the memo and skip parsing entirely.

    Only lines *proven* valid are returned: a memo hit proves it (the
    excised text was validated before, and the id token is re-checked),
    a miss validates against the canonical grammar.  Anything else —
    malformed, non-canonical key order, escape sequences, non-finite
    numbers — stops the scan with ``(entries, (line_number,
    raw_line))`` so the caller can route that one line through the
    per-line parser for byte-identical errors, then resume after it.
    Blank lines are skipped, like :func:`parse_batch`.
    """
    entries: List[Tuple[int, str, str, str, RawFields]] = []
    append = entries.append
    if memo is None:
        memo = {}
    memo_get = memo.get
    match = _CANONICAL_LINE.match
    eid_ok = _EID_TOKEN.match
    intern = sys.intern
    isfinite = math.isfinite
    prefix_len = _EID_PREFIX_LEN
    last_eid: Optional[str] = None
    number = start - 1
    for line in lines:
        number += 1
        i = line.find(_EID_PREFIX)
        if i >= 0:
            i += prefix_len
            j = line.find('"', i)
            if j > i:
                cached = memo_get(line[:i] + line[j:])
                if cached is not None:
                    eid = line[i:j]
                    if eid != last_eid:
                        if eid_ok(eid) is None:
                            return entries, (number, line)
                        last_eid = eid
                    else:
                        # Reuse the run's id object so downstream
                        # equality checks short-circuit on identity.
                        eid = last_eid
                    process, fields = cached
                    append((number, line, process, eid, fields))
                    continue
        elif not line.strip():
            continue
        m = match(line)
        if m is None:
            if not line.strip():
                continue
            return entries, (number, line)
        activity, eid, output_src, process, time_src, event_type = (
            m.groups()
        )
        timestamp = float(time_src)
        if not isfinite(timestamp):
            return entries, (number, line)
        output: Optional[Tuple[float, ...]]
        if output_src == "null":
            output = None
        else:
            if event_type != "END":
                # record_from_json accepts START outputs; rare enough
                # to take the slow road rather than model here.
                return entries, (number, line)
            values = []
            ok = True
            if len(output_src) > 2:
                for v in output_src[1:-1].split(", "):
                    value = float(v)
                    if not isfinite(value):
                        ok = False
                        break
                    values.append(value)
            if not ok:
                return entries, (number, line)
            output = tuple(values)
        fields = (
            timestamp,
            intern(activity),
            END_EVENT if event_type == "END" else START_EVENT,
            output,
        )
        process = intern(process)
        # Group 2's character class is the id-token grammar, so the
        # matched id needs no separate check; it still primes the
        # hit path's one-entry cache.
        last_eid = eid
        if len(memo) >= memo_cap:
            memo.clear()
        a, b = m.span(2)
        memo[line[:a] + line[b:]] = (process, fields)
        append((number, line, process, eid, fields))
    return entries, None


def parse_batch(
    lines: Sequence[str], start: int = 1
) -> Tuple[
    List[Tuple[int, str, str, EventRecord]], Optional[LogFormatError]
]:
    """Parse a block of JSON lines in one pass.

    The JSON-lines counterpart of :func:`repro.logs.codec.parse_batch`:
    ``lines[i]`` is line number ``start + i``, blank lines are skipped
    (this codec has no comments), and the common shape — string fields,
    numeric time, null or numeric-list output — is validated inline.
    Anything unusual re-parses through :func:`record_from_json`, so
    coercions (non-string names) and error messages stay identical to
    the per-line reader.  Returns ``(entries, error)``; see the codec
    counterpart for the protocol.
    """
    entries: List[Tuple[int, str, str, EventRecord]] = []
    append = entries.append
    loads = json.loads
    intern = sys.intern
    isfinite = math.isfinite
    new_record = EventRecord.__new__
    record_cls = EventRecord
    cmatch = _CANONICAL_LINE.match
    number = start - 1
    for line in lines:
        number += 1
        if not line.strip():
            continue
        m = cmatch(line)
        if m is not None:
            # Canonical shape: every field is already validated by the
            # grammar, so the record builds straight from the groups
            # without touching ``json.loads``.
            (
                activity,
                execution_id,
                output_src,
                process,
                time_src,
                event_type,
            ) = m.groups()
            timestamp = float(time_src)
            if isfinite(timestamp):
                good = True
                if output_src == "null":
                    output = None
                elif event_type == "END":
                    values = []
                    if len(output_src) > 2:
                        for v in output_src[1:-1].split(", "):
                            value = float(v)
                            if not isfinite(value):
                                good = False
                                break
                            values.append(value)
                    output = tuple(values) if good else None
                else:
                    good = False
                if good:
                    record = new_record(record_cls)
                    attrs = record.__dict__
                    attrs["timestamp"] = timestamp
                    attrs["execution_id"] = execution_id
                    attrs["activity"] = intern(activity)
                    attrs["event_type"] = (
                        END_EVENT
                        if event_type == "END"
                        else START_EVENT
                    )
                    attrs["output"] = output
                    append((number, line, intern(process), record))
                    continue
        handled = False
        try:
            payload = loads(line)
            process = payload["process"]
            execution_id = payload["execution"]
            activity = payload["activity"]
            event_type = payload["type"]
            timestamp = payload["time"]
            output = payload.get("output")
            if (
                type(process) is str
                and type(execution_id) is str
                and execution_id
                and type(activity) is str
                and activity
                and type(timestamp) in (int, float)
                and isfinite(timestamp)
            ):
                if event_type == "END":
                    if output is not None:
                        if type(output) is list:
                            values = []
                            good = True
                            for v in output:
                                if type(v) in (int, float) and isfinite(v):
                                    values.append(float(v))
                                else:
                                    good = False
                                    break
                            output = tuple(values) if good else None
                            handled = good
                        else:
                            handled = False
                    else:
                        handled = True
                    event_type = END_EVENT
                elif event_type == "START" and output is None:
                    event_type = START_EVENT
                    handled = True
                if handled:
                    record = new_record(record_cls)
                    attrs = record.__dict__
                    attrs["timestamp"] = float(timestamp)
                    attrs["execution_id"] = execution_id
                    attrs["activity"] = intern(activity)
                    attrs["event_type"] = event_type
                    attrs["output"] = output
                    append((number, line, intern(process), record))
        except (KeyError, TypeError, ValueError):
            handled = False
        if not handled:
            try:
                name, record = record_from_json(line, number)
            except LogFormatError as exc:
                return entries, exc
            append((number, line, name, record))
    return entries, None


def write_log_jsonl(log: EventLog, stream: IO[str]) -> int:
    """Write ``log`` as JSON lines; returns the line count."""
    process_name = log.process_name or "process"
    count = 0
    for record in log.records():
        stream.write(record_to_json(record, process_name))
        stream.write("\n")
        count += 1
    return count


def _numbered_lines(stream: IO[str]) -> Iterator[Tuple[int, str]]:
    for line_number, line in enumerate(stream, start=1):
        if not line.strip():
            continue
        yield line_number, line


def ingest_log_jsonl(
    stream: IO[str],
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
) -> IngestResult:
    """Read a JSON-lines log under an error policy.

    Same semantics as :func:`repro.logs.codec.ingest_log`; see
    :mod:`repro.logs.ingest` for policies, limits, and quarantine.
    """
    return ingest_blocks(
        stream,
        record_from_json,
        parse_batch,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
    )


def ingest_log_jsonl_file(
    path: PathOrStr,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
) -> IngestResult:
    """Read a JSON-lines log file under an error policy."""
    with open(path, "r", encoding="utf-8") as handle:
        return ingest_log_jsonl(
            handle, policy=policy, limits=limits, quarantine=quarantine
        )


def iter_ingest_log_jsonl(
    stream: IO[str],
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    journal=None,
    journal_skip: int = 0,
) -> Iterator[Execution]:
    """Stream executions out of a JSON-lines log (no ``EventLog``).

    JSON-lines counterpart of :func:`repro.logs.codec.iter_ingest_log`;
    see :func:`repro.logs.ingest.iter_ingest_lines` for the policy,
    limit, window and report semantics.
    """
    return iter_ingest_blocks(
        stream,
        record_from_json,
        parse_batch,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
        report=report,
        window=window,
        journal=journal,
        journal_skip=journal_skip,
    )


def iter_ingest_log_jsonl_file(
    path: PathOrStr,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    journal=None,
    journal_skip: int = 0,
) -> Iterator[Execution]:
    """Stream executions out of a JSON-lines log file."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from iter_ingest_log_jsonl(
            handle,
            policy=policy,
            limits=limits,
            quarantine=quarantine,
            report=report,
            window=window,
            journal=journal,
            journal_skip=journal_skip,
        )


def fold_log_jsonl_file(
    path: PathOrStr,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    state=None,
):
    """Fold a JSON-lines log file straight into a ``MiningState``.

    The out-of-core fast path: the batched equivalent of
    ``fold_executions(iter_ingest_log_jsonl_file(path))``, decoding
    blocks of lines through :func:`scan_batch`/:func:`parse_batch` and
    folding finalized buckets without materializing an
    :class:`~repro.logs.execution.Execution` for clean records (see
    :class:`repro.logs.fastfold.FoldingIngestStream`).  Policy, limit,
    quarantine, window and report semantics match the iterator path
    byte for byte.  Journaling callers keep using the iterator — this
    path never yields the executions a journal would record.  Returns
    the (given or fresh) state.
    """
    from repro.logs.fastfold import FoldingIngestStream

    stream = FoldingIngestStream(
        record_from_json,
        state=state,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
        report=report,
        window=window,
        parse_batch=parse_batch,
        scan_batch=scan_batch,
    )
    with open(path, "r", encoding="utf-8") as handle:
        start = 1
        while True:
            block = list(islice(handle, INGEST_BLOCK_LINES))
            if not block:
                break
            stream.push_batch(start, block)
            start += len(block)
    stream.flush()
    return stream.state


def read_log_jsonl(stream: IO[str]) -> EventLog:
    """Read a JSON-lines log (single process, like the text codec).

    Fail-fast, like :func:`repro.logs.codec.read_log`; errors carry the
    offending 1-based line number.  Use :func:`ingest_log_jsonl` for the
    policy-driven fault-tolerant reader.
    """
    return ingest_log_jsonl(stream).log


def iter_jsonl_records(
    stream: IO[str],
) -> Iterator[Tuple[str, EventRecord]]:
    """Stream ``(process_name, record)`` pairs; blank lines skipped."""
    for line_number, line in enumerate(stream, start=1):
        if not line.strip():
            continue
        yield record_from_json(line, line_number)


def write_log_jsonl_file(
    log: EventLog, path: PathOrStr, durable: bool = True
) -> int:
    """Write a JSON-lines log file.

    Streams records through :func:`repro.resilience.durable.
    durable_stream_writer`, so ``path`` appears atomically and is
    never torn.  ``durable=False`` keeps the atomic replace but skips
    the fsyncs — the escape hatch for large scratch exports where
    throughput matters more than crash durability.
    """
    with durable_stream_writer(path, fsync=durable) as handle:
        return write_log_jsonl(log, handle)


def read_log_jsonl_file(path: PathOrStr) -> EventLog:
    """Read a JSON-lines log file."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_log_jsonl(handle)
