"""JSON-lines interchange for workflow logs.

The tab-separated codec (:mod:`repro.logs.codec`) mirrors the paper's
Flowmark audit format; this module provides the same records as JSON
lines for interchange with modern tooling — one object per line::

    {"process": "claims", "execution": "run-000001",
     "activity": "Assess", "type": "END", "time": 3.5,
     "output": [42.0, 7.0]}

START events carry ``"output": null``.  Field names are fixed; unknown
fields are ignored on read so sidecar metadata survives round-trips
through other tools.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Iterator, Optional, Tuple, Union

from repro.errors import LogFormatError
from repro.logs.event_log import EventLog
from repro.logs.events import EventRecord
from repro.logs.execution import Execution
from repro.resilience.durable import durable_stream_writer
from repro.logs.ingest import (
    DEFAULT_STREAM_WINDOW,
    POLICY_STRICT,
    IngestLimits,
    IngestReport,
    IngestResult,
    Quarantine,
    ingest_lines,
    iter_ingest_lines,
)

PathOrStr = Union[str, Path]

_REQUIRED_FIELDS = ("process", "execution", "activity", "type", "time")


def _require_number(
    value: object, what: str, line_number: Optional[int]
) -> float:
    # ``float(True)`` and ``float("3.5")`` both succeed, so explicit
    # type checks are needed to reject non-numeric JSON values; NaN and
    # Infinity are valid JSON extensions but poison timestamp ordering.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise LogFormatError(
            f"{what} must be a number, got {value!r}", line_number
        )
    if not math.isfinite(value):
        raise LogFormatError(
            f"{what} must be finite, got {value!r}", line_number
        )
    return float(value)


def record_to_json(record: EventRecord, process_name: str) -> str:
    """Serialize one record to its JSON line (no trailing newline)."""
    return json.dumps(
        {
            "process": process_name,
            "execution": record.execution_id,
            "activity": record.activity,
            "type": record.event_type,
            "time": record.timestamp,
            "output": (
                list(record.output) if record.output is not None else None
            ),
        },
        sort_keys=True,
    )


def record_from_json(
    line: str, line_number: Optional[int] = None
) -> Tuple[str, EventRecord]:
    """Parse one JSON line into ``(process_name, record)``."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"invalid JSON: {exc}", line_number) from exc
    if not isinstance(payload, dict):
        raise LogFormatError("record must be a JSON object", line_number)
    missing = [f for f in _REQUIRED_FIELDS if f not in payload]
    if missing:
        raise LogFormatError(
            f"missing fields {missing}", line_number
        )
    output = payload.get("output")
    if output is not None:
        if not isinstance(output, list):
            raise LogFormatError(
                "output must be a list or null", line_number
            )
        output = tuple(
            _require_number(v, "output entry", line_number) for v in output
        )
    timestamp = _require_number(payload["time"], "time", line_number)
    try:
        record = EventRecord(
            timestamp=timestamp,
            execution_id=str(payload["execution"]),
            activity=str(payload["activity"]),
            event_type=str(payload["type"]),
            output=output,
        )
    except (TypeError, ValueError) as exc:
        raise LogFormatError(str(exc), line_number) from exc
    return str(payload["process"]), record


def write_log_jsonl(log: EventLog, stream: IO[str]) -> int:
    """Write ``log`` as JSON lines; returns the line count."""
    process_name = log.process_name or "process"
    count = 0
    for record in log.records():
        stream.write(record_to_json(record, process_name))
        stream.write("\n")
        count += 1
    return count


def _numbered_lines(stream: IO[str]) -> Iterator[Tuple[int, str]]:
    for line_number, line in enumerate(stream, start=1):
        if not line.strip():
            continue
        yield line_number, line


def ingest_log_jsonl(
    stream: IO[str],
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
) -> IngestResult:
    """Read a JSON-lines log under an error policy.

    Same semantics as :func:`repro.logs.codec.ingest_log`; see
    :mod:`repro.logs.ingest` for policies, limits, and quarantine.
    """
    return ingest_lines(
        _numbered_lines(stream),
        record_from_json,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
    )


def ingest_log_jsonl_file(
    path: PathOrStr,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
) -> IngestResult:
    """Read a JSON-lines log file under an error policy."""
    with open(path, "r", encoding="utf-8") as handle:
        return ingest_log_jsonl(
            handle, policy=policy, limits=limits, quarantine=quarantine
        )


def iter_ingest_log_jsonl(
    stream: IO[str],
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    journal=None,
    journal_skip: int = 0,
) -> Iterator[Execution]:
    """Stream executions out of a JSON-lines log (no ``EventLog``).

    JSON-lines counterpart of :func:`repro.logs.codec.iter_ingest_log`;
    see :func:`repro.logs.ingest.iter_ingest_lines` for the policy,
    limit, window and report semantics.
    """
    return iter_ingest_lines(
        _numbered_lines(stream),
        record_from_json,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
        report=report,
        window=window,
        journal=journal,
        journal_skip=journal_skip,
    )


def iter_ingest_log_jsonl_file(
    path: PathOrStr,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    journal=None,
    journal_skip: int = 0,
) -> Iterator[Execution]:
    """Stream executions out of a JSON-lines log file."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from iter_ingest_log_jsonl(
            handle,
            policy=policy,
            limits=limits,
            quarantine=quarantine,
            report=report,
            window=window,
            journal=journal,
            journal_skip=journal_skip,
        )


def read_log_jsonl(stream: IO[str]) -> EventLog:
    """Read a JSON-lines log (single process, like the text codec).

    Fail-fast, like :func:`repro.logs.codec.read_log`; errors carry the
    offending 1-based line number.  Use :func:`ingest_log_jsonl` for the
    policy-driven fault-tolerant reader.
    """
    return ingest_log_jsonl(stream).log


def iter_jsonl_records(
    stream: IO[str],
) -> Iterator[Tuple[str, EventRecord]]:
    """Stream ``(process_name, record)`` pairs; blank lines skipped."""
    for line_number, line in enumerate(stream, start=1):
        if not line.strip():
            continue
        yield record_from_json(line, line_number)


def write_log_jsonl_file(
    log: EventLog, path: PathOrStr, durable: bool = True
) -> int:
    """Write a JSON-lines log file.

    Streams records through :func:`repro.resilience.durable.
    durable_stream_writer`, so ``path`` appears atomically and is
    never torn.  ``durable=False`` keeps the atomic replace but skips
    the fsyncs — the escape hatch for large scratch exports where
    throughput matters more than crash durability.
    """
    with durable_stream_writer(path, fsync=durable) as handle:
        return write_log_jsonl(log, handle)


def read_log_jsonl_file(path: PathOrStr) -> EventLog:
    """Read a JSON-lines log file."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_log_jsonl(handle)
