"""Timing analytics over interval logs.

The paper's model records START and END per activity (Definition 2); the
mining algorithms collapse that to order, but a workflow owner evaluating
their system (the paper's second motivating use) also needs the timing
view: how long activities run, how long work waits between activities,
and where the critical path sits.  This module computes those statistics
directly from :class:`~repro.logs.event_log.EventLog`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logs.event_log import EventLog


@dataclass(frozen=True)
class DurationStats:
    """Summary statistics of a duration sample.

    Attributes
    ----------
    count:
        Number of samples.
    mean, std:
        Sample mean and (population) standard deviation.
    minimum, median, p95, maximum:
        Order statistics.
    """

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: List[float]) -> "DurationStats":
        """Compute statistics for a non-empty sample list."""
        if not samples:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(samples)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((x - mean) ** 2 for x in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            median=_quantile(ordered, 0.5),
            p95=_quantile(ordered, 0.95),
            maximum=ordered[-1],
        )


def _quantile(ordered: List[float], q: float) -> float:
    """Linear-interpolation quantile of a pre-sorted sample."""
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def activity_durations(log: EventLog) -> Dict[str, DurationStats]:
    """Per-activity service-time statistics (END minus START)."""
    samples: Dict[str, List[float]] = {}
    for execution in log:
        for instance in execution.instances:
            samples.setdefault(instance.activity, []).append(
                instance.end - instance.start
            )
    return {
        activity: DurationStats.from_samples(values)
        for activity, values in samples.items()
    }


def execution_makespans(log: EventLog) -> DurationStats:
    """Statistics of whole-execution durations (first START to last END).

    Raises ``ValueError`` when the log has no completed executions.
    """
    samples = []
    for execution in log:
        instances = execution.instances
        if not instances:
            continue
        start = min(instance.start for instance in instances)
        end = max(instance.end for instance in instances)
        samples.append(end - start)
    return DurationStats.from_samples(samples)


def handover_waits(
    log: EventLog, edges: Optional[List[Tuple[str, str]]] = None
) -> Dict[Tuple[str, str], DurationStats]:
    """Waiting time across control-flow handovers.

    For each ``(u, v)`` edge (defaults to every directly-follows pair of
    the log), measures ``v.start - u.end`` in executions where ``v`` is
    the *next* activity starting after ``u`` ends — the queueing delay a
    workflow owner actually experiences on that handover.
    """
    samples: Dict[Tuple[str, str], List[float]] = {}
    wanted = set(edges) if edges is not None else None
    for execution in log:
        instances = sorted(execution.instances, key=lambda i: i.start)
        for i, upstream in enumerate(instances):
            # The first instance starting at/after upstream's end.
            successor = None
            for candidate in instances[i + 1:]:
                if candidate.start >= upstream.end:
                    successor = candidate
                    break
            if successor is None:
                continue
            pair = (upstream.activity, successor.activity)
            if wanted is not None and pair not in wanted:
                continue
            samples.setdefault(pair, []).append(
                successor.start - upstream.end
            )
    return {
        pair: DurationStats.from_samples(values)
        for pair, values in samples.items()
    }


def busiest_activities(
    log: EventLog, top: int = 5
) -> List[Tuple[str, float]]:
    """Activities ranked by total busy time across the log."""
    totals: Dict[str, float] = {}
    for execution in log:
        for instance in execution.instances:
            totals[instance.activity] = totals.get(
                instance.activity, 0.0
            ) + (instance.end - instance.start)
    ranked = sorted(totals.items(), key=lambda item: -item[1])
    return ranked[:top]


def format_timing_report(log: EventLog) -> str:
    """Render a compact timing report for the CLI."""
    lines = []
    try:
        makespan = execution_makespans(log)
    except ValueError:
        return "no completed executions"
    lines.append(
        "execution makespan: "
        f"mean={makespan.mean:.2f} median={makespan.median:.2f} "
        f"p95={makespan.p95:.2f} max={makespan.maximum:.2f}"
    )
    lines.append("activity durations:")
    for activity, stats in sorted(activity_durations(log).items()):
        lines.append(
            f"  {activity:<20} n={stats.count:<5} "
            f"mean={stats.mean:7.2f} p95={stats.p95:7.2f}"
        )
    return "\n".join(lines)
