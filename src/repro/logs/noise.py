"""Noise injection (Section 6 of the paper).

Section 6 lists three error classes in real logs:

* "erroneous activities were inserted in the log" — :meth:`insert`;
* "some activities that were executed were not logged" — :meth:`drop`;
* "some activities were reported in out of order time sequence" —
  :meth:`swap` (adjacent transposition, the minimal out-of-order event).

:class:`NoiseInjector` corrupts a clean :class:`EventLog` at configurable
per-execution rates, deterministically under a seed, and reports how many
corruptions of each kind it performed so experiments can condition on the
realized noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.logs.event_log import EventLog
from repro.logs.execution import Execution


@dataclass(frozen=True)
class NoiseConfig:
    """Noise rates, each the probability of corrupting a given execution.

    Attributes
    ----------
    swap_rate:
        Probability that one adjacent activity pair of an execution is
        transposed (out-of-order reporting).
    drop_rate:
        Probability that one random non-endpoint activity is deleted.
    insert_rate:
        Probability that one alien activity is inserted at a random
        interior position.
    alien_activities:
        Pool of activity names used for insertions; defaults to
        ``NOISE-1`` … ``NOISE-5``.
    seed:
        RNG seed; corruption is deterministic given the config and log.
    """

    swap_rate: float = 0.0
    drop_rate: float = 0.0
    insert_rate: float = 0.0
    alien_activities: Sequence[str] = field(
        default=("NOISE-1", "NOISE-2", "NOISE-3", "NOISE-4", "NOISE-5")
    )
    seed: int = 0

    def __post_init__(self) -> None:
        for label, rate in (
            ("swap_rate", self.swap_rate),
            ("drop_rate", self.drop_rate),
            ("insert_rate", self.insert_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if self.insert_rate > 0 and not self.alien_activities:
            raise ValueError(
                "insert_rate > 0 requires at least one alien activity"
            )


class NoiseInjector:
    """Apply a :class:`NoiseConfig` to event logs.

    The injector operates on the activity-sequence view (the paper's
    simplified representation) and rebuilds executions with fresh unit
    timestamps, because Section 6's analysis is entirely about activity
    *order*, not timing.
    """

    def __init__(self, config: NoiseConfig) -> None:
        self.config = config
        self.counts: Dict[str, int] = {"swap": 0, "drop": 0, "insert": 0}

    def corrupt(self, log: EventLog) -> EventLog:
        """Return a corrupted copy of ``log``; originals are untouched."""
        rng = random.Random(self.config.seed)
        corrupted: List[Execution] = []
        for execution in log:
            sequence = list(execution.sequence)
            sequence = self._maybe_swap(sequence, rng)
            sequence = self._maybe_drop(sequence, rng)
            sequence = self._maybe_insert(sequence, rng)
            corrupted.append(
                Execution.from_sequence(
                    sequence, execution_id=execution.execution_id
                )
            )
        return EventLog(corrupted, process_name=log.process_name)

    def _maybe_swap(
        self, sequence: List[str], rng: random.Random
    ) -> List[str]:
        if len(sequence) < 2 or rng.random() >= self.config.swap_rate:
            return sequence
        index = rng.randrange(len(sequence) - 1)
        sequence = list(sequence)
        sequence[index], sequence[index + 1] = (
            sequence[index + 1],
            sequence[index],
        )
        self.counts["swap"] += 1
        return sequence

    def _maybe_drop(
        self, sequence: List[str], rng: random.Random
    ) -> List[str]:
        # Endpoints are kept so the corrupted trace still starts and ends
        # with the initiating/terminating activities (dropping those models
        # a different failure and trips consistency checks trivially).
        if len(sequence) < 3 or rng.random() >= self.config.drop_rate:
            return sequence
        index = rng.randrange(1, len(sequence) - 1)
        self.counts["drop"] += 1
        return sequence[:index] + sequence[index + 1:]

    def _maybe_insert(
        self, sequence: List[str], rng: random.Random
    ) -> List[str]:
        if not sequence or rng.random() >= self.config.insert_rate:
            return sequence
        alien = rng.choice(list(self.config.alien_activities))
        index = rng.randrange(1, len(sequence)) if len(sequence) > 1 else 1
        self.counts["insert"] += 1
        return sequence[:index] + [alien] + sequence[index:]


def swap_adjacent(
    log: EventLog,
    swap_rate: float,
    seed: int = 0,
) -> EventLog:
    """Shorthand: corrupt ``log`` with adjacent swaps only.

    This is the error model of the paper's Section 6 analysis ("activities
    that must happen in sequence are reported out of sequence with an error
    rate of ε").
    """
    injector = NoiseInjector(NoiseConfig(swap_rate=swap_rate, seed=seed))
    return injector.corrupt(log)
