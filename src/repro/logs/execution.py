"""One execution (trace) of a process.

The paper works with two views of an execution:

* the raw event-record list (START/END pairs with timestamps and outputs),
  and
* the simplified *activity sequence* obtained by treating activities as
  instantaneous ("we can represent an execution as a list of activities",
  Section 2).

:class:`Execution` holds the records and derives the sequence, the ordered
activity pairs the miners consume (``u`` terminated before ``v`` started),
and the per-activity outputs the conditions learner consumes.  The ordered
pairs respect true interval order: two activities that *overlap in time*
contribute no pair, which is exactly the paper's argument that overlapping
activities must be independent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import MalformedExecutionError
from repro.logs.events import (
    START_EVENT,
    EventRecord,
    end_event,
    start_event,
)

Pair = Tuple[str, str]
LabelledPair = Tuple[Tuple[str, int], Tuple[str, int]]


@dataclass(frozen=True)
class ActivityInstance:
    """One completed occurrence of an activity inside an execution."""

    activity: str
    start: float
    end: float
    output: Optional[Tuple[float, ...]]

    def overlaps(self, other: "ActivityInstance") -> bool:
        """Whether the two instances' time intervals overlap.

        Touching intervals (``a.end == b.start``) do *not* overlap —
        ``a`` terminated before ``b`` started, which is the paper's
        ordered-pair criterion.
        """
        return self.start < other.end and other.start < self.end


class Execution:
    """An execution of a process, reconstructed from its event records.

    Parameters
    ----------
    execution_id:
        The process-execution name ``P`` shared by all records.
    records:
        Event records of this execution, in any order; they are sorted by
        timestamp.  Every END must have a preceding unmatched START of the
        same activity.  Unmatched STARTs (activities still running when the
        log was cut) are tolerated and ignored by the derived views.

    Raises
    ------
    MalformedExecutionError
        If records reference a different execution id, or an END event has
        no matching START.
    """

    def __init__(
        self, execution_id: str, records: Iterable[EventRecord]
    ) -> None:
        self._id = execution_id
        self._records: List[EventRecord] = sorted(records)
        for record in self._records:
            if record.execution_id != execution_id:
                raise MalformedExecutionError(
                    f"record for execution {record.execution_id!r} mixed "
                    f"into execution {execution_id!r}"
                )
        self._instances = self._pair_events(self._records)
        # Derived views are immutable once the instances are fixed, so the
        # expensive ones are computed at most once and cached.
        self._sequence: List[str] = [
            instance.activity for instance in self._instances
        ]
        self._activities = frozenset(self._sequence)
        self._labelled: Optional[List[Tuple[str, int]]] = None
        self._ordered_set: Optional[FrozenSet[Pair]] = None
        self._overlap_set: Optional[FrozenSet[Pair]] = None
        self._labelled_ordered_set: Optional[FrozenSet[LabelledPair]] = None
        self._labelled_overlap_set: Optional[FrozenSet[LabelledPair]] = None
        self._variant_key: Optional[
            Tuple[Tuple[str, float, float], ...]
        ] = None
        self._sequential: Optional[bool] = None

    @staticmethod
    def _pair_events(
        records: Sequence[EventRecord],
    ) -> List[ActivityInstance]:
        # Multiple concurrent instances of one activity are matched FIFO.
        open_starts: Dict[str, Deque[EventRecord]] = {}
        instances: List[ActivityInstance] = []
        for record in records:
            if record.is_start:
                open_starts.setdefault(record.activity, deque()).append(
                    record
                )
                continue
            stack = open_starts.get(record.activity)
            if not stack:
                raise MalformedExecutionError(
                    f"END of {record.activity!r} at t={record.timestamp} "
                    f"has no matching START"
                )
            start = stack.popleft()
            instances.append(
                ActivityInstance(
                    activity=record.activity,
                    start=start.timestamp,
                    end=record.timestamp,
                    output=record.output,
                )
            )
        instances.sort(key=lambda inst: (inst.start, inst.end, inst.activity))
        return instances

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_grouped_records(
        cls, execution_id: str, records: List[EventRecord]
    ) -> Optional["Execution"]:
        """Fast builder for a bucket of records grouped by execution id.

        The batch ingest path pops each finalized bucket straight out of
        its grouping dict, so every record is known to carry
        ``execution_id`` — the general constructor's per-record id check
        is redundant, and its unconditional re-sort collapses to an O(n)
        monotonicity test for the common contiguous-log case.  The
        resulting object is indistinguishable from
        ``Execution(execution_id, records)``.

        Returns ``None`` when the bucket needs the general constructor
        (an END without a matching START), so the caller can re-run it
        there and get the canonical :class:`MalformedExecutionError`.
        The bucket list is taken over; callers must not reuse it.
        """
        previous = float("-inf")
        monotone = True
        for record in records:
            timestamp = record.timestamp
            if timestamp <= previous:
                monotone = False
                break
            previous = timestamp
        if not monotone:
            # Ties or disorder: fall back to the canonical total-order
            # sort (cheap on nearly-sorted input, identical tie-breaks).
            records = sorted(records)
        open_starts: Dict[str, List[float]] = {}
        instances: List[ActivityInstance] = []
        append = instances.append
        get_queue = open_starts.get
        new_instance = ActivityInstance.__new__
        instance_cls = ActivityInstance
        ordered = True
        prev_start = float("-inf")
        prev_end = float("-inf")
        prev_activity = ""
        for record in records:
            activity = record.activity
            if record.event_type == START_EVENT:
                queue = get_queue(activity)
                if queue is None:
                    open_starts[activity] = [record.timestamp]
                else:
                    queue.append(record.timestamp)
                continue
            queue = get_queue(activity)
            if not queue:
                return None
            start_time = queue.pop(0)
            end_time = record.timestamp
            if ordered:
                if start_time < prev_start or (
                    start_time == prev_start
                    and (
                        end_time < prev_end
                        or (
                            end_time == prev_end
                            and activity < prev_activity
                        )
                    )
                ):
                    ordered = False
                else:
                    prev_start = start_time
                    prev_end = end_time
                    prev_activity = activity
            instance = new_instance(instance_cls)
            attrs = instance.__dict__
            attrs["activity"] = activity
            attrs["start"] = start_time
            attrs["end"] = end_time
            attrs["output"] = record.output
            append(instance)
        if not ordered:
            instances.sort(
                key=lambda inst: (inst.start, inst.end, inst.activity)
            )
        execution = cls.__new__(cls)
        execution._id = execution_id
        execution._records = records
        execution._instances = instances
        execution._sequence = [inst.activity for inst in instances]
        execution._activities = frozenset(execution._sequence)
        execution._labelled = None
        execution._ordered_set = None
        execution._overlap_set = None
        execution._labelled_ordered_set = None
        execution._labelled_overlap_set = None
        execution._variant_key = None
        execution._sequential = None
        return execution

    @classmethod
    def from_sequence(
        cls,
        activities: Sequence[str],
        execution_id: str = "exec",
        outputs: Optional[Dict[str, Tuple[float, ...]]] = None,
        start_time: float = 0.0,
    ) -> "Execution":
        """Build an execution from a plain activity sequence.

        This is the paper's simplified instantaneous-activity view: each
        activity occupies a unit time slot, in order, so the derived
        ordered pairs are exactly all forward pairs of the sequence.  Used
        pervasively by the worked examples (``"ABCE"`` style logs).
        """
        outputs = outputs or {}
        records: List[EventRecord] = []
        time = start_time
        for activity in activities:
            records.append(start_event(execution_id, activity, time))
            records.append(
                end_event(
                    execution_id,
                    activity,
                    time + 0.5,
                    output=outputs.get(activity),
                )
            )
            time += 1.0
        return cls(execution_id, records)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def execution_id(self) -> str:
        """The process-execution name ``P``."""
        return self._id

    @property
    def records(self) -> List[EventRecord]:
        """The execution's event records, sorted by timestamp (a copy)."""
        return list(self._records)

    @property
    def instances(self) -> List[ActivityInstance]:
        """Completed activity instances, sorted by start time (a copy)."""
        return list(self._instances)

    @property
    def sequence(self) -> List[str]:
        """The activity sequence, ordered by start time.

        Each completed instance contributes one entry; repeated activities
        (cycles, Section 5) appear multiple times.  The list is computed
        once and shared — treat it as read-only.
        """
        return self._sequence

    @property
    def activities(self) -> frozenset:
        """The set of distinct activities that completed."""
        return self._activities

    @property
    def first_activity(self) -> str:
        """The first activity to start; raises on an empty execution."""
        if not self._instances:
            raise MalformedExecutionError("execution has no completed events")
        return self._instances[0].activity

    @property
    def last_activity(self) -> str:
        """The last activity to terminate; raises on an empty execution."""
        if not self._instances:
            raise MalformedExecutionError("execution has no completed events")
        return max(self._instances, key=lambda inst: inst.end).activity

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[str]:
        return iter(self.sequence)

    def __repr__(self) -> str:
        preview = "".join(self.sequence[:12])
        if len(self._instances) > 12:
            preview += "..."
        return f"Execution({self._id!r}, {preview!r})"

    # ------------------------------------------------------------------
    # Miner-facing derivations
    # ------------------------------------------------------------------
    def is_sequential(self) -> bool:
        """Whether the instances form a chain: each terminates before the
        next starts.

        Instances are sorted by start time, so the consecutive check
        implies ``end_i <= start_j`` for *every* ``i < j`` — a sequential
        execution has no overlapping pairs and its ordered pairs are
        exactly the forward pairs of the sequence.  Logs built with
        :meth:`from_sequence` (and most real workflow traces) are
        sequential, which lets the pair-set extraction below skip the
        quadratic interval comparisons.
        """
        sequential = self._sequential
        if sequential is None:
            instances = self._instances
            sequential = all(
                instances[i].end <= instances[i + 1].start
                for i in range(len(instances) - 1)
            )
            self._sequential = sequential
        return sequential

    def ordered_pairs(self) -> Iterator[Pair]:
        """Yield every pair ``(u, v)`` with ``u`` terminating before ``v``
        starts (Algorithm 1/2 step 2).

        Overlapping instances yield nothing, and a pair of instances of the
        *same* activity yields nothing either (the relabelled view used by
        Algorithm 3 handles repetitions; in the plain view a self-pair
        would be a self-loop the miners immediately discard).
        """
        instances = self._instances
        for i, earlier in enumerate(instances):
            for j in range(i + 1, len(instances)):
                later = instances[j]
                if earlier.activity == later.activity:
                    continue
                if earlier.end <= later.start:
                    yield (earlier.activity, later.activity)

    def ordered_pair_set(self) -> FrozenSet[Pair]:
        """The set of ordered pairs, computed once and cached.

        Equal to ``frozenset(self.ordered_pairs())``; this is what the
        miners consume (step 2 works with per-execution *sets*), so the
        deduplicated set is the representation worth caching.
        """
        if self._ordered_set is None:
            if self.is_sequential():
                pairs = set()
                later_acts: set = set()
                for inst in reversed(self._instances):
                    activity = inst.activity
                    for other in later_acts:
                        if other != activity:
                            pairs.add((activity, other))
                    later_acts.add(activity)
            else:
                pairs = set(self.ordered_pairs())
            self._ordered_set = frozenset(pairs)
        return self._ordered_set

    def overlapping_pairs(self) -> Iterator[Pair]:
        """Yield canonical (sorted) pairs of distinct activities observed
        overlapping in time.

        Section 2 of the paper: "if there are two activities in the log
        that overlap in time, then they must be independent activities".
        The miners treat an observed overlap like seeing the pair in both
        orders — the edge is removed with the 2-cycles.
        """
        instances = self._instances
        for i, first in enumerate(instances):
            for j in range(i + 1, len(instances)):
                second = instances[j]
                if first.activity == second.activity:
                    continue
                if first.overlaps(second):
                    pair = tuple(sorted((first.activity, second.activity)))
                    yield pair  # type: ignore[misc]

    def overlapping_pair_set(self) -> FrozenSet[Pair]:
        """The set of canonical overlapping pairs, computed once and
        cached (empty without any quadratic work for sequential traces)."""
        if self._overlap_set is None:
            if self.is_sequential():
                self._overlap_set = frozenset()
            else:
                self._overlap_set = frozenset(self.overlapping_pairs())
        return self._overlap_set

    def labelled_overlapping_pairs(
        self,
    ) -> Iterator[LabelledPair]:
        """Canonical overlapping pairs over the relabelled instances."""
        labels = self.labelled_sequence()
        instances = self._instances
        for i, first in enumerate(instances):
            for j in range(i + 1, len(instances)):
                if first.overlaps(instances[j]):
                    pair = tuple(sorted((labels[i], labels[j])))
                    if pair[0] != pair[1]:
                        yield pair  # type: ignore[misc]

    def labelled_overlapping_pair_set(self) -> FrozenSet[LabelledPair]:
        """The set of labelled overlapping pairs, computed once and
        cached (empty without any quadratic work for sequential traces)."""
        if self._labelled_overlap_set is None:
            if self.is_sequential():
                self._labelled_overlap_set = frozenset()
            else:
                self._labelled_overlap_set = frozenset(
                    self.labelled_overlapping_pairs()
                )
        return self._labelled_overlap_set

    def labelled_sequence(self) -> List[Tuple[str, int]]:
        """The sequence with occurrence labels: ``A, A`` -> ``(A,1), (A,2)``.

        This is Algorithm 3 step 2's relabelling ("the first appearance of
        activity A is labeled A1, the second A2, and so on").  Computed
        once and shared — treat the list as read-only.
        """
        if self._labelled is None:
            counts: Dict[str, int] = {}
            labelled = []
            for activity in self._sequence:
                counts[activity] = counts.get(activity, 0) + 1
                labelled.append((activity, counts[activity]))
            self._labelled = labelled
        return self._labelled

    def labelled_ordered_pairs(
        self,
    ) -> Iterator[LabelledPair]:
        """Ordered pairs over the relabelled instances (Algorithm 3 step 3).

        Unlike :meth:`ordered_pairs`, pairs between distinct instances of
        the same activity *are* produced (``(A,1) -> (A,2)``): Algorithm 3
        treats them as distinct vertices.
        """
        labels = self.labelled_sequence()
        instances = self._instances
        for i, earlier in enumerate(instances):
            for j in range(i + 1, len(instances)):
                later = instances[j]
                if earlier.end <= later.start:
                    yield (labels[i], labels[j])

    def labelled_ordered_pair_set(self) -> FrozenSet[LabelledPair]:
        """The set of labelled ordered pairs, computed once and cached.

        For sequential traces every forward pair of distinct labels
        qualifies, so the set is built directly without interval
        comparisons.
        """
        if self._labelled_ordered_set is None:
            if self.is_sequential():
                labels = self.labelled_sequence()
                self._labelled_ordered_set = frozenset(
                    (labels[i], labels[j])
                    for i in range(len(labels))
                    for j in range(i + 1, len(labels))
                )
            else:
                self._labelled_ordered_set = frozenset(
                    self.labelled_ordered_pairs()
                )
        return self._labelled_ordered_set

    def variant_key(self) -> Tuple[Tuple[str, float, float], ...]:
        """A hashable key capturing everything the miners derive pairs from.

        Two executions with equal keys have identical instance structure
        (activity, start, end per completed instance, in order) and hence
        identical sequences, pair sets and overlap sets.  ``prepare_log``
        uses the key to compute the expensive derivations once per
        distinct trace variant.  Timestamps are compared raw — no
        shift-normalization — so the key never merges executions whose
        interval comparisons could differ after float rounding.

        Instances never change after construction, so the key (hot in
        the miner's variant dedup) is computed once and memoized.
        """
        key = self._variant_key
        if key is None:
            key = tuple(
                (inst.activity, inst.start, inst.end)
                for inst in self._instances
            )
            self._variant_key = key
        return key

    def outputs_of(self, activity: str) -> List[Tuple[float, ...]]:
        """All recorded output vectors of ``activity`` in this execution."""
        return [
            inst.output
            for inst in self._instances
            if inst.activity == activity and inst.output is not None
        ]

    def last_output_of(self, activity: str) -> Optional[Tuple[float, ...]]:
        """The output of the last completed instance of ``activity``."""
        outputs = self.outputs_of(activity)
        return outputs[-1] if outputs else None
