"""Fused ingest -> fold: line blocks straight into a MiningState.

The batch decode path (:meth:`repro.logs.ingest.IngestStream.
push_batch`) still materializes one :class:`~repro.logs.execution.
Execution` per finalized bucket, and the consumer folds it into a
:class:`~repro.core.state.MiningState` — construction cost that is pure
waste when the same trace repeats, because the state immediately
collapses it onto an existing variant.  :class:`FoldingIngestStream`
closes that gap at two levels:

* With a codec ``scan_batch`` hook (:func:`repro.logs.jsonl.
  scan_batch`), lines decode into shared *raw field tuples* —
  ``(timestamp, activity, event type, output)`` — and buckets hold
  those tuples instead of :class:`~repro.logs.events.EventRecord`
  objects.  A line whose id-excised text repeats costs two substring
  finds and a dict hit; no record object is ever built for it.
* Finalized buckets whose field *signature* matches a previously
  accepted bucket fold as a bare counter bump — no Execution, no
  variant packing.

Equal signatures imply equal behavior: records inside a bucket share
their execution id, so their sort order, the instance pairing and the
resulting variant key are fully determined by the signature — the memo
can only hit where the classic path would have produced the identical
variant.  Repair-policy streams never use the memo (repairs inspect
the raw records each time), and only *accepted* buckets are memoized,
so quarantine accounting and strict-mode errors replay per bucket.
Lines the scanner cannot prove canonical re-enter :meth:`push`
individually, which keeps every error, quarantine entry and report
field byte-identical to per-line ingestion.

This is the engine behind the ingest-throughput cells of
``benchmarks/perf_harness.py``; anything that needs the executions
themselves (journaling, the service's durable sessions) keeps using
:class:`~repro.logs.ingest.IngestStream` + ``state.update``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.state import MiningState
from repro.errors import LogFormatError
from repro.logs.events import START_EVENT, EventRecord
from repro.logs.execution import Execution
from repro.logs.ingest import (
    DEFAULT_STREAM_WINDOW,
    POLICY_REPAIR,
    POLICY_STRICT,
    REASON_LATE_RECORD,
    REASON_MIXED_PROCESS,
    BatchParser,
    IngestLimits,
    IngestReport,
    IngestStream,
    LineParser,
    Quarantine,
    ResourceLimitError,
    _finalize_execution_fast,
)

#: Default bound of the record-signature memo.  Signatures are one
#: tuple per record, so entries are heavier than the state's variant
#: memo entries; the bound is sized for "many distinct variants", not
#: "every execution ever seen".
DEFAULT_SIGNATURE_MEMO = 16384

#: One bucket's identity: everything but the execution id, per record,
#: in arrival order.
Signature = Tuple[Tuple[float, str, str, Optional[Tuple[float, ...]]], ...]

#: A codec's raw block scanner (see :func:`repro.logs.jsonl.
#: scan_batch`): ``(lines, start, memo) -> (entries, bad_line)``.
RawScanner = Callable[..., Tuple[List[tuple], Optional[Tuple[int, str]]]]


def _clean_sequence(items: Sequence) -> Optional[List[str]]:
    """The activity sequence of a *clean* all-tuple bucket, else None.

    Clean means the arrival order already tells the whole story:
    strictly increasing timestamps and a strict START/END alternation
    where each END closes the START immediately before it.  For such a
    bucket ``Execution.from_grouped_records`` is guaranteed to accept
    — no sorting fallback, FIFO pairing degenerates to adjacent pairs,
    the instances come out ordered and strictly sequential — so the
    variant is fully determined by the activity sequence and the
    caller can pack it without building records or an Execution.
    Anything else (odd shapes, ties, interleavings, EventRecords mixed
    in) returns None and takes the classic path.
    """
    count = len(items)
    if count & 1:
        return None
    sequence: List[str] = []
    append = sequence.append
    last = float("-inf")
    index = 0
    try:
        while index < count:
            start = items[index]
            end = items[index + 1]
            if (
                start[2] is not START_EVENT
                or end[2] is START_EVENT
                or start[1] != end[1]
                or not (last < start[0] < end[0])
            ):
                return None
            last = end[0]
            append(start[1])
            index += 2
    except TypeError:
        # An EventRecord slipped into the bucket via per-line push().
        return None
    return sequence


def _materialize(eid: str, items: Sequence) -> List[EventRecord]:
    """Rebuild a bucket's records; field tuples become EventRecords.

    Buckets may mix raw field tuples (scanner-fed) with EventRecords
    (per-line ``push``-fed); finalization, repair and quarantine all
    want real records, built here only when actually needed.
    """
    new = EventRecord.__new__
    cls = EventRecord
    records: List[EventRecord] = []
    append = records.append
    for item in items:
        if type(item) is tuple:
            record = new(cls)
            attrs = record.__dict__
            attrs["timestamp"] = item[0]
            attrs["execution_id"] = eid
            attrs["activity"] = item[1]
            attrs["event_type"] = item[2]
            attrs["output"] = item[3]
            append(record)
        else:
            append(item)
    return records


class FoldingIngestStream(IngestStream):
    """An :class:`IngestStream` that folds into a state it owns.

    ``push``/``push_batch``/``flush``/``close`` keep their contracts —
    same policies, limits, windowing, quarantine and report accounting
    — but finalized executions are folded into ``state`` instead of
    being returned (the lists come back empty).  Track progress via
    ``state.execution_count`` or the report.

    With ``scan_batch`` (the codec's raw scanner), ``push_batch``
    decodes through the zero-object path and open buckets hold raw
    field tuples; without it, blocks decode through ``parse_batch``
    into records as usual.  Either way the signature memo collapses
    repeated traces into counter bumps.
    """

    def __init__(
        self,
        parse_line: LineParser,
        state: Optional[MiningState] = None,
        policy: str = POLICY_STRICT,
        limits: Optional[IngestLimits] = None,
        quarantine: Optional[Quarantine] = None,
        report: Optional[IngestReport] = None,
        window: Optional[int] = DEFAULT_STREAM_WINDOW,
        parse_batch: Optional[BatchParser] = None,
        scan_batch: Optional[RawScanner] = None,
        labelled: bool = False,
        memo_size: int = DEFAULT_SIGNATURE_MEMO,
    ) -> None:
        if memo_size < 0:
            raise ValueError(f"bad memo size {memo_size!r}")
        super().__init__(
            parse_line,
            policy=policy,
            limits=limits,
            quarantine=quarantine,
            report=report,
            window=window,
            parse_batch=parse_batch,
        )
        self.state = (
            state if state is not None else MiningState(labelled=labelled)
        )
        self._scan_batch = scan_batch
        self._line_memo: dict = {}
        self._signature_memo: "OrderedDict[Signature, Tuple]" = (
            OrderedDict()
        )
        self._memo_size = memo_size
        # Memoized variants hold packed codes in the state's *current*
        # capacity; a repack invalidates them wholesale (it happens
        # O(log labels) times, so a full clear is cheaper than keeping
        # remap hooks in the state).
        self._memo_cap = self.state._cap
        self._mixed = False
        # Fold intents staged by _emit and applied by _commit at the
        # boundaries where per-line ingestion hands its caller the
        # finalized list: after each record's drain pass, after each
        # push(), after a whole flush()/close().  A strict-policy error
        # inside one of those scopes discards the scope's intents —
        # exactly the executions a per-line caller never received from
        # the raising call — so the folded state matches per-line
        # ingestion even around errors.  Packing too is deferred to
        # commit so a rolled-back bucket interns no labels.
        self._pending: List[tuple] = []
        self.fold_hits = 0
        self.fold_misses = 0

    def _commit(self) -> None:
        """Apply the staged fold intents; the current scope succeeded."""
        pending = self._pending
        if not pending:
            return
        state = self.state
        memo = self._signature_memo
        memo_size = self._memo_size
        for kind, sig, value in pending:
            if kind == "hit":
                state._fold(value, 1)
                continue
            if kind == "update":
                state.update(value)
                continue
            # "seq" / "exec": pack now, fold, and memoize.  A repack
            # (capacity growth) invalidates earlier memo entries; the
            # emit-time checks guaranteed pack_sequence cannot decline.
            variant = (
                state.pack_sequence(value)
                if kind == "seq"
                else state._pack_execution(value)
            )
            state._fold(variant, 1)
            if state._cap != self._memo_cap:
                memo.clear()
                self._memo_cap = state._cap
            memo[sig] = variant
            if len(memo) > memo_size:
                memo.popitem(last=False)
        pending.clear()

    def push(self, line_number: int, raw_line: str) -> List[Execution]:
        # Per-line pushes append EventRecords into open buckets, so
        # from here on signatures must normalize item by item instead
        # of taking the all-tuple shortcut (sticky, conservatively).
        self._mixed = True
        try:
            result = super().push(line_number, raw_line)
        except BaseException:
            self._pending.clear()
            raise
        self._commit()
        return result

    def push_batch(
        self,
        start: int,
        lines: Sequence[str],
        out: Optional[List[Execution]] = None,
    ) -> List[Execution]:
        scan = self._scan_batch
        if out is None:
            out = []
        if scan is None:
            # No raw scanner: decode through parse_batch as the base
            # class does, but drive the bookkeeping one entry at a time
            # so folds commit per record — the granularity at which a
            # per-line caller banks its executions.
            parse_batch = self._parse_batch
            pending = self._pending
            total = len(lines)
            index = 0
            while index < total:
                entries, error = parse_batch(
                    lines[index:] if index else lines, start + index
                )
                for entry in entries:
                    try:
                        self._ingest_entries([entry], out)
                    except BaseException:
                        pending.clear()
                        raise
                    self._commit()
                if error is None:
                    break
                bad = error.line_number - start
                out.extend(self.push(error.line_number, lines[bad]))
                index = bad + 1
            return out
        memo = self._line_memo
        total = len(lines)
        index = 0
        while index < total:
            entries, bad = scan(
                lines[index:] if index else lines, start + index, memo
            )
            if entries:
                self._fold_entries(entries)
            if bad is None:
                break
            number, line = bad
            # Not provably canonical: the per-line parser decides —
            # identical acceptance, errors and quarantine entries.
            out.extend(self.push(number, line))
            index = number - start + 1
        return out

    def _fold_entries(self, entries: List[tuple]) -> None:
        # The push() bookkeeping loop over scanned raw entries; any
        # change here must mirror IngestStream.push()/_ingest_entries
        # — the hypothesis parity suite holds the paths equal.  The
        # only shortcut is ``cur_eid``: for a run of records of the
        # same open execution the bucket lookup, finalized-set probe
        # and recency move are per-run (their outcomes cannot change
        # mid-run: a just-touched bucket is never expired).
        report = self.report
        limits = self.limits
        window = self.window
        grouped = self._grouped
        touch = self._touch
        finalized = self._finalized
        activities = self._activities
        get_bucket = grouped.get
        strict = self.policy == POLICY_STRICT
        max_executions = limits.max_executions
        max_events = limits.max_events_per_execution
        max_activities = limits.max_activities
        process_name = report.process_name
        record_index = self._record_index
        newest = next(reversed(grouped)) if grouped else None
        oldest = next(iter(grouped)) if grouped else None
        cur_eid: Optional[str] = None
        bucket: Optional[list] = None
        # Conservative drain guard: ``expire_at`` never exceeds the
        # true ``touch[oldest] + window`` (touch values only grow and
        # grouped is kept in touch order, so the real threshold is
        # non-decreasing), which turns the per-record drain check into
        # one integer compare; crossing it recomputes exactly.
        expire_at = 0 if window is not None else float("inf")
        out: List[Execution] = []
        try:
            for line_number, raw_line, name, eid, fields in entries:
                if name != process_name:
                    if process_name is None:
                        report.process_name = process_name = name
                    elif strict:
                        raise LogFormatError(
                            f"log mixes processes {process_name!r} "
                            f"and {name!r}",
                            line_number,
                        )
                    else:
                        self._quarantine_line(
                            REASON_MIXED_PROCESS,
                            (
                                f"record of process {name!r} in a log "
                                f"of {process_name!r}"
                            ),
                            line_number,
                            raw_line,
                        )
                        continue
                if eid != cur_eid:
                    bucket = get_bucket(eid)
                    if bucket is None:
                        if eid in finalized:
                            if strict:
                                raise LogFormatError(
                                    f"record for execution {eid!r} "
                                    f"arrived after its finalization "
                                    f"window closed; raise "
                                    f"--stream-window or sort the log "
                                    f"by execution",
                                    line_number,
                                )
                            self._quarantine_line(
                                REASON_LATE_RECORD,
                                (
                                    f"execution {eid!r} already "
                                    f"finalized; record arrived more "
                                    f"than {window} records late"
                                ),
                                line_number,
                                raw_line,
                                execution_id=eid,
                            )
                            continue
                        if (
                            max_executions is not None
                            and len(grouped) + len(finalized)
                            >= max_executions
                        ):
                            raise ResourceLimitError(
                                "max_executions",
                                max_executions,
                                f"execution {eid!r} at line "
                                f"{line_number}",
                            )
                        bucket = grouped[eid] = []
                        newest = eid
                        if oldest is None:
                            oldest = eid
                    elif window is not None and newest != eid:
                        grouped.pop(eid)
                        grouped[eid] = bucket
                        newest = eid
                        if oldest == eid:
                            oldest = next(iter(grouped))
                    cur_eid = eid
                if max_events is not None and len(bucket) >= max_events:
                    raise ResourceLimitError(
                        "max_events_per_execution",
                        max_events,
                        f"execution {eid!r} at line {line_number}",
                        line_number=line_number,
                    )
                activity = fields[1]
                if activity not in activities:
                    if (
                        max_activities is not None
                        and len(activities) >= max_activities
                    ):
                        raise ResourceLimitError(
                            "max_activities",
                            max_activities,
                            f"activity {activity!r} at line "
                            f"{line_number}",
                        )
                    activities.add(activity)
                bucket.append(fields)
                record_index += 1
                touch[eid] = record_index
                if record_index < expire_at:
                    continue
                # One record's drain pass is one commit scope: a strict
                # finalize error on any expiring bucket discards the
                # whole pass's staged folds, just as the raising
                # per-line push() discards its returned list.
                try:
                    while (
                        oldest is not None
                        and record_index - touch[oldest] >= window
                    ):
                        records = grouped.pop(oldest)
                        del touch[oldest]
                        finalized.add(oldest)
                        self._emit(oldest, records, out)
                        oldest = next(iter(grouped)) if grouped else None
                        if oldest is None:
                            newest = None
                except BaseException:
                    self._pending.clear()
                    raise
                self._commit()
                expire_at = (
                    touch[oldest] + window
                    if oldest is not None
                    else record_index + window
                )
        finally:
            self._record_index = record_index

    def flush(self) -> List[Execution]:
        # One flush is one commit scope: the base flush builds its
        # whole list before the caller sees anything, so an error on a
        # later bucket loses every execution of the flush — the staged
        # folds must vanish with them.
        try:
            out = super().flush()
        except BaseException:
            self._pending.clear()
            raise
        self._commit()
        return out

    def close(self) -> List[Execution]:
        try:
            out = super().close()
        except BaseException:
            self._pending.clear()
            raise
        self._commit()
        return out

    def _emit(
        self, eid: str, items: List, out: List[Execution]
    ) -> None:
        # Report and quarantine accounting happen here, eagerly — the
        # per-line path also mutates them before its caller banks the
        # list.  Folds and packing are only *staged* (see _commit):
        # nothing touches the state until the enclosing scope survives.
        state = self.state
        pending = self._pending
        if (
            not self._memo_size
            or self.policy == POLICY_REPAIR
            or not (
                self._fast_finalize or self._scan_batch is not None
            )
        ):
            # Classic finalize; accepted executions are staged as full
            # state.update folds, nothing is handed back.
            records = _materialize(eid, items)
            before = len(out)
            super()._emit(eid, records, out)
            pending.extend(
                ("update", None, execution)
                for execution in out[before:]
            )
            del out[before:]
            return
        memo = self._signature_memo
        if state._cap != self._memo_cap:
            memo.clear()
            self._memo_cap = state._cap
        if self._mixed:
            sig: Signature = tuple(
                item
                if type(item) is tuple
                else (
                    item.timestamp,
                    item.activity,
                    item.event_type,
                    item.output,
                )
                for item in items
            )
        else:
            sig = tuple(items)
        variant = memo.get(sig)
        if variant is not None:
            memo.move_to_end(sig)
            report = self.report
            report.accepted_executions += 1
            report.accepted_records += len(items)
            pending.append(("hit", None, variant))
            self.fold_hits += 1
            return
        sequence = _clean_sequence(items)
        if (
            sequence is not None
            and not state.labelled
            and len(set(sequence)) == len(sequence)
        ):
            # Clean sequential repeat-free bucket: stage the activity
            # sequence itself; commit packs it via pack_sequence (the
            # emit-time checks cover exactly its decline conditions),
            # skipping record materialization and Execution
            # construction entirely.
            report = self.report
            report.accepted_executions += 1
            report.accepted_records += len(items)
            pending.append(("seq", sig, sequence))
        else:
            execution = _finalize_execution_fast(
                eid, _materialize(eid, items), self.policy,
                self.quarantine, self.report,
            )
            if execution is None:
                return
            # Stage the execution for direct packing: the signature
            # memo supersedes the state's variant-key trace cache here
            # (a signature repeat is strictly more common than an
            # instance-level repeat with a different arrival order),
            # so consulting both would be pure overhead.
            pending.append(("exec", sig, execution))
        self.fold_misses += 1
