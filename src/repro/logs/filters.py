"""Log filtering and the variants view.

Standard analyst operations over an event log, supporting the paper's
"evaluate and evolve" workflow: before mining or diffing, one usually
slices the log — by variant, by activity, by length, by time window —
and inspects the distinct behaviours (*variants*) it contains.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Callable, List, Optional, Tuple

from repro.logs.event_log import EventLog
from repro.logs.execution import Execution

Variant = Tuple[str, ...]
Predicate = Callable[[Execution], bool]


def filter_log(log: EventLog, predicate: Predicate) -> EventLog:
    """Keep the executions satisfying ``predicate`` (order preserved)."""
    return EventLog(
        [execution for execution in log if predicate(execution)],
        process_name=log.process_name,
    )


def with_activities(log: EventLog, *activities: str) -> EventLog:
    """Executions containing *all* the given activities."""
    required = set(activities)
    return filter_log(
        log, lambda execution: required <= set(execution.activities)
    )


def without_activities(log: EventLog, *activities: str) -> EventLog:
    """Executions containing *none* of the given activities."""
    banned = set(activities)
    return filter_log(
        log,
        lambda execution: not (banned & set(execution.activities)),
    )


def with_length_between(
    log: EventLog, minimum: int = 0, maximum: Optional[int] = None
) -> EventLog:
    """Executions whose activity count lies in ``[minimum, maximum]``."""
    return filter_log(
        log,
        lambda execution: minimum
        <= len(execution)
        <= (maximum if maximum is not None else len(execution)),
    )


def started_between(
    log: EventLog, start: float, end: float
) -> EventLog:
    """Executions whose first activity started within ``[start, end]``."""

    def in_window(execution: Execution) -> bool:
        instances = execution.instances
        if not instances:
            return False
        first = min(instance.start for instance in instances)
        return start <= first <= end

    return filter_log(log, in_window)


def variant_counts(log: EventLog) -> "OrderedDict[Variant, int]":
    """Distinct activity sequences with their frequencies.

    Ordered by descending count, ties by first appearance — the classic
    process-mining variants table.
    """
    counter: Counter = Counter()
    first_seen: dict = {}
    for index, sequence in enumerate(log.sequences()):
        variant = tuple(sequence)
        counter[variant] += 1
        first_seen.setdefault(variant, index)
    ordered = sorted(
        counter.items(), key=lambda kv: (-kv[1], first_seen[kv[0]])
    )
    return OrderedDict(ordered)


def top_variants(
    log: EventLog, count: int = 10
) -> List[Tuple[Variant, int]]:
    """The ``count`` most frequent variants."""
    return list(variant_counts(log).items())[:count]


def keep_variants(log: EventLog, *variants: Variant) -> EventLog:
    """Executions whose sequence equals one of ``variants``."""
    wanted = {tuple(v) for v in variants}
    return filter_log(
        log, lambda execution: tuple(execution.sequence) in wanted
    )


def deduplicate_variants(log: EventLog) -> EventLog:
    """One representative execution per variant (first occurrence).

    Mining is variant-driven for the unthresholded algorithms; a
    deduplicated log mines to the same graph far faster on logs with
    few distinct behaviours.  (Do *not* deduplicate before thresholded
    noise handling — Section 6's counters need the multiplicities.)
    """
    seen: set = set()
    kept = []
    for execution in log:
        variant = tuple(execution.sequence)
        if variant not in seen:
            seen.add(variant)
            kept.append(execution)
    return EventLog(kept, process_name=log.process_name)


def format_variants(log: EventLog, top: int = 10) -> str:
    """Render the variants table as text."""
    total = len(log)
    lines = [f"{total} executions, " f"{len(variant_counts(log))} variants"]
    for variant, count in top_variants(log, top):
        share = count / total if total else 0.0
        lines.append(
            f"  {count:>5}  ({share:5.1%})  {' '.join(variant)}"
        )
    return "\n".join(lines)
