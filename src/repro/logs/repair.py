"""Trace repair: fix what the paper's event model lets us fix.

Section 6 of the paper treats dirty logs statistically (the noise
threshold ``T``); this module complements it *structurally*.  A real
audit trail — the Flowmark deployment of Section 8 ran for weeks — also
loses and duplicates individual records, and the event model of
Definition 2 makes three such defects mechanically repairable:

* **Orphan ENDs** (the matching START was lost, or the log was cut just
  after the activity began): an END event fully determines its activity
  instance up to duration, so a START is synthesized immediately before
  it.  The instance becomes effectively instantaneous, which preserves
  every ordered pair the true instance would have produced whenever the
  lost START lay after the previous activity's END — the common case.
* **Duplicate events** (at-least-once log shipping): records are exact
  value duplicates, so all copies past the first are dropped.
* **Non-monotone record order** (interleaved writers, clock skew inside
  one execution): records are re-sorted by timestamp.  The
  :class:`~repro.logs.execution.Execution` constructor sorts anyway;
  the repair exists so the disorder is *reported* rather than silently
  absorbed.

Empty/truncated traces (no completed instance at all) carry no mineable
information and are dropped by the ingest driver, which records the
:data:`REPAIR_DROPPED_EMPTY_TRACE` rule.

Each applied rule is tallied in a :class:`collections.Counter` so the
:class:`~repro.logs.ingest.IngestReport` can account for every change.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.logs.events import EventRecord, start_event

REPAIR_SYNTHESIZED_START = "synthesized-start"
REPAIR_DROPPED_DUPLICATE = "dropped-duplicate-event"
REPAIR_RESORTED_TIMESTAMPS = "resorted-timestamps"
REPAIR_DROPPED_EMPTY_TRACE = "dropped-empty-trace"

REPAIR_RULES = (
    REPAIR_SYNTHESIZED_START,
    REPAIR_DROPPED_DUPLICATE,
    REPAIR_RESORTED_TIMESTAMPS,
    REPAIR_DROPPED_EMPTY_TRACE,
)


def resort_records(
    records: List[EventRecord], repairs: Counter
) -> List[EventRecord]:
    """Sort records by timestamp, tallying a repair if they were not.

    Returns a sorted copy; ``records`` is never mutated.
    """
    ordered = sorted(records)
    if ordered != records:
        repairs[REPAIR_RESORTED_TIMESTAMPS] += 1
    return ordered


def drop_duplicate_events(
    records: Iterable[EventRecord], repairs: Counter
) -> List[EventRecord]:
    """Drop exact value-duplicate records, keeping first occurrences."""
    seen = set()
    kept: List[EventRecord] = []
    for record in records:
        if record in seen:
            repairs[REPAIR_DROPPED_DUPLICATE] += 1
            continue
        seen.add(record)
        kept.append(record)
    return kept


def synthesize_missing_starts(
    records: List[EventRecord], repairs: Counter
) -> List[EventRecord]:
    """Insert a START immediately before every orphan END.

    ``records`` must already be sorted by timestamp.  The synthesized
    START is placed at the largest float strictly below the END's
    timestamp, so re-sorting keeps it adjacent to (and before) its END
    and the repaired instance stays effectively instantaneous.
    """
    open_starts: Dict[str, int] = {}
    repaired: List[EventRecord] = []
    for record in records:
        if record.is_start:
            open_starts[record.activity] = (
                open_starts.get(record.activity, 0) + 1
            )
        else:
            if open_starts.get(record.activity, 0) > 0:
                open_starts[record.activity] -= 1
            else:
                repaired.append(
                    start_event(
                        record.execution_id,
                        record.activity,
                        math.nextafter(record.timestamp, -math.inf),
                    )
                )
                repairs[REPAIR_SYNTHESIZED_START] += 1
        repaired.append(record)
    return repaired


def repair_records(
    records: List[EventRecord],
) -> Tuple[List[EventRecord], Counter]:
    """Run the full repair pipeline over one execution's records.

    Returns ``(repaired_records, applied_repairs)``.  Order matters:
    re-sort first (the later rules assume timestamp order), then drop
    duplicates (so a duplicated END is not "repaired" into a phantom
    instance), then synthesize STARTs for the orphan ENDs that remain.
    """
    repairs: Counter = Counter()
    repaired = resort_records(list(records), repairs)
    repaired = drop_duplicate_events(repaired, repairs)
    repaired = synthesize_missing_starts(repaired, repairs)
    return repaired, repairs
