"""Workflow-log substrate (Definition 2 of the paper).

* :mod:`repro.logs.events` — the event record ``(P, A, E, T, O)``;
* :mod:`repro.logs.execution` — one execution (trace) of a process;
* :mod:`repro.logs.event_log` — a log of many executions;
* :mod:`repro.logs.codec` — Flowmark-style text serialization;
* :mod:`repro.logs.noise` — noise injectors for Section 6's experiments;
* :mod:`repro.logs.stats` — summary statistics over logs.
"""

from repro.logs.codec import (
    read_log,
    read_log_file,
    read_process_logs,
    read_process_logs_file,
    write_log,
    write_log_file,
    write_process_logs,
)
from repro.logs.event_log import EventLog
from repro.logs.events import END_EVENT, START_EVENT, EventRecord
from repro.logs.execution import Execution
from repro.logs.filters import (
    deduplicate_variants,
    filter_log,
    keep_variants,
    top_variants,
    variant_counts,
    with_activities,
    without_activities,
)
from repro.logs.jsonl import (
    read_log_jsonl,
    read_log_jsonl_file,
    write_log_jsonl,
    write_log_jsonl_file,
)
from repro.logs.noise import NoiseConfig, NoiseInjector
from repro.logs.stats import LogStatistics, summarize_log
from repro.logs.timing import (
    DurationStats,
    activity_durations,
    execution_makespans,
    handover_waits,
)

__all__ = [
    "DurationStats",
    "END_EVENT",
    "EventLog",
    "EventRecord",
    "Execution",
    "LogStatistics",
    "NoiseConfig",
    "NoiseInjector",
    "START_EVENT",
    "activity_durations",
    "deduplicate_variants",
    "execution_makespans",
    "filter_log",
    "handover_waits",
    "keep_variants",
    "read_log",
    "read_log_file",
    "read_log_jsonl",
    "read_log_jsonl_file",
    "read_process_logs",
    "read_process_logs_file",
    "summarize_log",
    "top_variants",
    "variant_counts",
    "with_activities",
    "without_activities",
    "write_log",
    "write_log_file",
    "write_log_jsonl",
    "write_log_jsonl_file",
    "write_process_logs",
]
