"""Workflow-log substrate (Definition 2 of the paper).

* :mod:`repro.logs.events` — the event record ``(P, A, E, T, O)``;
* :mod:`repro.logs.execution` — one execution (trace) of a process;
* :mod:`repro.logs.event_log` — a log of many executions;
* :mod:`repro.logs.codec` — Flowmark-style text serialization;
* :mod:`repro.logs.ingest` — fault-tolerant ingestion (error policies,
  quarantine, resource guards);
* :mod:`repro.logs.repair` — structural trace repair;
* :mod:`repro.logs.noise` — noise injectors for Section 6's experiments;
* :mod:`repro.logs.stats` — summary statistics over logs.
"""

from repro.logs.codec import (
    ingest_log,
    ingest_log_file,
    read_log,
    read_log_file,
    read_process_logs,
    read_process_logs_file,
    write_log,
    write_log_file,
    write_process_logs,
)
from repro.logs.event_log import EventLog
from repro.logs.events import END_EVENT, START_EVENT, EventRecord
from repro.logs.execution import Execution
from repro.logs.ingest import (
    POLICIES,
    POLICY_REPAIR,
    POLICY_SKIP,
    POLICY_STRICT,
    IngestLimits,
    IngestReport,
    IngestResult,
    IngestStream,
    Quarantine,
    QuarantinedItem,
)
from repro.logs.filters import (
    deduplicate_variants,
    filter_log,
    keep_variants,
    top_variants,
    variant_counts,
    with_activities,
    without_activities,
)
from repro.logs.jsonl import (
    ingest_log_jsonl,
    ingest_log_jsonl_file,
    read_log_jsonl,
    read_log_jsonl_file,
    write_log_jsonl,
    write_log_jsonl_file,
)
from repro.logs.repair import REPAIR_RULES, repair_records
from repro.logs.noise import NoiseConfig, NoiseInjector
from repro.logs.stats import LogStatistics, summarize_log
from repro.logs.timing import (
    DurationStats,
    activity_durations,
    execution_makespans,
    handover_waits,
)

__all__ = [
    "DurationStats",
    "END_EVENT",
    "EventLog",
    "EventRecord",
    "Execution",
    "IngestLimits",
    "IngestReport",
    "IngestResult",
    "IngestStream",
    "LogStatistics",
    "NoiseConfig",
    "NoiseInjector",
    "POLICIES",
    "POLICY_REPAIR",
    "POLICY_SKIP",
    "POLICY_STRICT",
    "Quarantine",
    "QuarantinedItem",
    "REPAIR_RULES",
    "START_EVENT",
    "activity_durations",
    "deduplicate_variants",
    "execution_makespans",
    "filter_log",
    "handover_waits",
    "ingest_log",
    "ingest_log_file",
    "ingest_log_jsonl",
    "ingest_log_jsonl_file",
    "keep_variants",
    "read_log",
    "read_log_file",
    "read_log_jsonl",
    "read_log_jsonl_file",
    "read_process_logs",
    "read_process_logs_file",
    "repair_records",
    "summarize_log",
    "top_variants",
    "variant_counts",
    "with_activities",
    "without_activities",
    "write_log",
    "write_log_file",
    "write_log_jsonl",
    "write_log_jsonl_file",
    "write_process_logs",
]
