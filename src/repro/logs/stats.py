"""Summary statistics over workflow logs.

The paper's Tables 1 and 3 report, per dataset, the number of executions
and the physical log size; Section 8.1 also discusses execution lengths
("all executions are not of equal length").  :func:`summarize_log`
computes the corresponding statistics plus per-activity frequencies, which
the CLI ``stats`` command prints.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.logs.codec import log_size_bytes
from repro.logs.event_log import EventLog


@dataclass(frozen=True)
class LogStatistics:
    """Aggregate statistics of one event log.

    Attributes
    ----------
    execution_count:
        Number of executions (the paper's ``m``).
    activity_count:
        Number of distinct activities (the paper's ``n``).
    event_count:
        Total number of START/END records.
    size_bytes:
        Size of the serialized log (codec format).
    min_length, mean_length, max_length:
        Execution lengths in completed activity instances.
    activity_frequencies:
        For each activity, the fraction of executions containing it —
        directly exposes the optional-activity structure Algorithm 2
        exists for.
    repeated_activity_executions:
        Number of executions in which some activity occurs more than once
        (i.e. executions that need Algorithm 3's relabelling).
    """

    execution_count: int
    activity_count: int
    event_count: int
    size_bytes: int
    min_length: int
    mean_length: float
    max_length: int
    activity_frequencies: Tuple[Tuple[str, float], ...]
    repeated_activity_executions: int

    @property
    def has_repetitions(self) -> bool:
        """Whether any execution repeats an activity (cyclic behaviour)."""
        return self.repeated_activity_executions > 0

    def frequency_of(self, activity: str) -> float:
        """Fraction of executions containing ``activity`` (0.0 if absent)."""
        for name, frequency in self.activity_frequencies:
            if name == activity:
                return frequency
        return 0.0


def summarize_log(log: EventLog) -> LogStatistics:
    """Compute :class:`LogStatistics` for ``log``.

    An empty log yields zeroed statistics rather than raising, so the CLI
    can report on whatever file it was pointed at.
    """
    lengths = []
    presence: Counter = Counter()
    repeated = 0
    for execution in log:
        sequence = execution.sequence
        lengths.append(len(sequence))
        distinct = set(sequence)
        presence.update(distinct)
        if len(distinct) < len(sequence):
            repeated += 1

    execution_count = len(log)
    frequencies: Dict[str, float] = {
        activity: count / execution_count
        for activity, count in presence.items()
    } if execution_count else {}

    return LogStatistics(
        execution_count=execution_count,
        activity_count=len(presence),
        event_count=log.event_count(),
        size_bytes=log_size_bytes(log),
        min_length=min(lengths) if lengths else 0,
        mean_length=(sum(lengths) / len(lengths)) if lengths else 0.0,
        max_length=max(lengths) if lengths else 0,
        activity_frequencies=tuple(sorted(frequencies.items())),
        repeated_activity_executions=repeated,
    )


def format_statistics(stats: LogStatistics) -> str:
    """Render statistics as the multi-line text the CLI prints."""
    lines = [
        f"executions:           {stats.execution_count}",
        f"distinct activities:  {stats.activity_count}",
        f"event records:        {stats.event_count}",
        f"serialized size:      {stats.size_bytes} bytes",
        (
            "execution length:     "
            f"min={stats.min_length} "
            f"mean={stats.mean_length:.2f} "
            f"max={stats.max_length}"
        ),
        (
            "executions repeating an activity: "
            f"{stats.repeated_activity_executions}"
        ),
        "activity frequencies:",
    ]
    for activity, frequency in stats.activity_frequencies:
        lines.append(f"  {activity:<20} {frequency:6.1%}")
    return "\n".join(lines)
