"""Fault-tolerant log ingestion: policies, quarantine, report, guards.

The codecs' plain readers (:func:`repro.logs.codec.read_log`,
:func:`repro.logs.jsonl.read_log_jsonl`) are fail-fast — appropriate for
curated experiment inputs, fatal for the paper's motivating deployment,
where Flowmark audit trails accumulate over weeks of real use and a
single corrupt line would discard the whole log.  This module supplies
the shared machinery both codecs thread their line streams through:

* an **error policy** — :data:`POLICY_STRICT` (today's fail-fast
  behavior, unchanged), :data:`POLICY_SKIP` (divert malformed lines and
  invariant-violating executions to a quarantine sink and keep going),
  or :data:`POLICY_REPAIR` (additionally run
  :mod:`repro.logs.repair` over each execution before giving up on it);
* a :class:`Quarantine` sink — an in-memory list, optionally mirrored
  to a JSON-lines dead-letter file so dropped input is never silently
  destroyed;
* an :class:`IngestReport` accounting for every record: accepted,
  repaired (per rule), quarantined (per reason);
* :class:`IngestLimits` resource guards that abort with
  :class:`~repro.errors.ResourceLimitError` *before* an adversarial or
  runaway log exhausts memory.

The driver, :func:`ingest_lines`, is codec-agnostic: it consumes
``(line_number, raw_line)`` pairs plus the codec's line parser, so the
tab-separated and JSON-lines formats get identical semantics.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import (
    LogFormatError,
    MalformedExecutionError,
    ResourceLimitError,
)
from repro.logs.event_log import EventLog
from repro.logs.events import EventRecord
from repro.logs.execution import Execution
from repro.logs.repair import REPAIR_DROPPED_EMPTY_TRACE, repair_records
from repro.resilience.faults import maybe_fault

PathOrStr = Union[str, Path]

POLICY_STRICT = "strict"
POLICY_SKIP = "skip"
POLICY_REPAIR = "repair"

POLICIES = (POLICY_STRICT, POLICY_SKIP, POLICY_REPAIR)

# Quarantine reason codes (the per-reason breakdown of IngestReport).
REASON_BAD_LINE = "bad-line"
REASON_MIXED_PROCESS = "mixed-process"
REASON_MALFORMED_EXECUTION = "malformed-execution"
REASON_EMPTY_EXECUTION = "empty-execution"
REASON_LATE_RECORD = "late-record"
#: Executions whose fold chunk exhausted the supervised fold's retry
#: budget (see :func:`repro.core.parallel.supervised_fold`); the mine
#: continued without them, so they land in quarantine for replay.
REASON_POISONED_CHUNK = "poisoned-chunk"

QUARANTINE_REASONS = (
    REASON_BAD_LINE,
    REASON_MIXED_PROCESS,
    REASON_MALFORMED_EXECUTION,
    REASON_EMPTY_EXECUTION,
    REASON_LATE_RECORD,
    REASON_POISONED_CHUNK,
)

#: Default finalization window of :func:`iter_ingest_lines`: an open
#: execution whose last record is this many accepted records behind the
#: stream head is considered complete.  Logs written by our codecs store
#: each execution contiguously (any window >= 1 suffices); the default
#: leaves generous room for interleaved hand-written logs.
DEFAULT_STREAM_WINDOW = 1024


@dataclass(frozen=True)
class IngestLimits:
    """Resource guards applied while a log streams in.

    Each limit is an inclusive upper bound; ``None`` disables the guard.
    Guards are independent of the error policy — they protect the
    *process*, not the data, so they raise under ``skip`` and ``repair``
    too.
    """

    max_executions: Optional[int] = None
    max_events_per_execution: Optional[int] = None
    max_activities: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "max_executions",
            "max_events_per_execution",
            "max_activities",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None")


@dataclass(frozen=True)
class QuarantinedItem:
    """One diverted input item: a raw line or a whole execution.

    ``kind`` is ``"line"`` or ``"execution"``; ``payload`` holds the raw
    line text (for lines) or the execution's records as JSON-ready
    dicts (for executions), so a dead-letter file can be re-processed.
    """

    kind: str
    reason: str
    detail: str
    line_number: Optional[int] = None
    execution_id: Optional[str] = None
    payload: object = None

    def to_json(self) -> dict:
        """The dead-letter file representation (one JSON object)."""
        return {
            "kind": self.kind,
            "reason": self.reason,
            "detail": self.detail,
            "line_number": self.line_number,
            "execution_id": self.execution_id,
            "payload": self.payload,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "QuarantinedItem":
        """Rebuild an item from one dead-letter file line."""
        return cls(
            kind=str(payload["kind"]),
            reason=str(payload["reason"]),
            detail=str(payload.get("detail", "")),
            line_number=payload.get("line_number"),
            execution_id=payload.get("execution_id"),
            payload=payload.get("payload"),
        )


class Quarantine:
    """Dead-letter sink for diverted input.

    Always collects in memory; when constructed with a ``path`` it also
    mirrors every item to a JSON-lines file.  The file is opened
    lazily in *append* mode and every record is written as one
    ``write`` call (JSON + newline) followed by a flush, so a crashed
    run loses at most the record being written and a resumed run
    appends after the survivors instead of truncating them.  A torn
    final line left by a crash is tolerated by
    :func:`read_dead_letter`.  Usable as a context manager;
    :meth:`close` is idempotent.
    """

    def __init__(self, path: Optional[PathOrStr] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.items: List[QuarantinedItem] = []
        self._handle = None

    def add(self, item: QuarantinedItem) -> None:
        """Divert one item into the sink."""
        self.items.append(item)
        if self.path is not None:
            if self._handle is None:
                # Held open across divert() calls; closed by __exit__.
                # Append-only dead-letter sink flushed per item: a
                # torn final line is re-quarantined on the next run,
                # so atomic replace would only lose earlier items.
                self._handle = open(  # noqa: SIM115  # devlint: ignore[RL101]
                    self.path, "a", encoding="utf-8"
                )
            self._handle.write(
                json.dumps(item.to_json(), sort_keys=True) + "\n"
            )
            self._handle.flush()

    def add_poisoned_executions(
        self, executions: Iterable[Execution], detail: str
    ) -> int:
        """Divert a poisoned fold chunk's executions; returns how many.

        The supervised fold hands back the chunk that exhausted its
        retry budget; each execution is preserved as a re-processable
        ``poisoned-chunk`` dead-letter record.
        """
        count = 0
        for execution in executions:
            self.add(
                QuarantinedItem(
                    kind="execution",
                    reason=REASON_POISONED_CHUNK,
                    detail=detail,
                    execution_id=execution.execution_id,
                    payload=_record_payload(execution.records),
                )
            )
            count += 1
        return count

    def close(self) -> None:
        """Close the dead-letter file, if one was opened."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Quarantine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[QuarantinedItem]:
        return iter(self.items)


class DeadLetterScan(NamedTuple):
    """What :func:`read_dead_letter` recovered from a dead-letter file."""

    items: List[QuarantinedItem]
    torn_tail: bool


def read_dead_letter(path: PathOrStr) -> DeadLetterScan:
    """Read a quarantine dead-letter file back, tolerating a torn tail.

    Each complete line must be one :meth:`QuarantinedItem.to_json`
    object.  A final line that is unparseable *and* unterminated (no
    trailing newline) is the torn record of a crashed writer and is
    dropped, reported via ``torn_tail``; damage anywhere else raises
    :class:`~repro.errors.LogFormatError` — an append-only writer
    cannot produce it.
    """
    raw = Path(path).read_bytes()
    items: List[QuarantinedItem] = []
    lines = raw.split(b"\n")
    # A well-formed file ends with a newline, so the final split piece
    # is empty; anything else is an unterminated (torn) last record.
    tail = lines.pop()
    torn_tail = False
    if tail.strip():
        try:
            items_tail = QuarantinedItem.from_json(
                json.loads(tail.decode("utf-8"))
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            items_tail = None
            torn_tail = True
    else:
        items_tail = None
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            items.append(
                QuarantinedItem.from_json(json.loads(line.decode("utf-8")))
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise LogFormatError(
                f"corrupt dead-letter record: {exc}", index + 1
            ) from exc
    if items_tail is not None:
        items.append(items_tail)
    return DeadLetterScan(items=items, torn_tail=torn_tail)


@dataclass
class IngestReport:
    """Full accounting of one ingest run.

    Every input record ends up in exactly one of: accepted (possibly
    after repair), or quarantined (as a raw line or inside a diverted
    execution).
    """

    policy: str = POLICY_STRICT
    accepted_executions: int = 0
    accepted_records: int = 0
    repaired_executions: int = 0
    repairs: Counter = field(default_factory=Counter)
    quarantined_lines: int = 0
    quarantined_executions: int = 0
    reasons: Counter = field(default_factory=Counter)
    #: The log's process name (first record wins), filled during ingest
    #: so streaming callers — which never see an EventLog — get it too.
    process_name: Optional[str] = None

    @property
    def dropped(self) -> int:
        """Input items (lines + executions) diverted to quarantine."""
        return self.quarantined_lines + self.quarantined_executions

    @property
    def clean(self) -> bool:
        """Whether ingestion accepted everything without intervention."""
        return self.dropped == 0 and not self.repairs

    def summary(self) -> str:
        """A compact multi-line summary (the CLI prints this to stderr)."""
        lines = [
            f"ingest: policy={self.policy} "
            f"accepted={self.accepted_executions} executions "
            f"({self.accepted_records} records) "
            f"repaired={self.repaired_executions} "
            f"quarantined={self.quarantined_lines} lines + "
            f"{self.quarantined_executions} executions"
        ]
        if self.repairs:
            applied = ", ".join(
                f"{rule}={count}"
                for rule, count in sorted(self.repairs.items())
            )
            lines.append(f"  repairs: {applied}")
        if self.reasons:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.reasons.items())
            )
            lines.append(f"  quarantine reasons: {reasons}")
        return "\n".join(lines)


class IngestResult(NamedTuple):
    """What fault-tolerant loading returns: the log plus the audit trail."""

    log: EventLog
    report: IngestReport
    quarantine: Quarantine


LineParser = Callable[[str, int], Tuple[str, EventRecord]]

#: A codec's block scanner: ``parse_batch(lines, start)`` returning
#: ``(entries, error)`` where each entry is ``(line_number, raw_line,
#: process_name, record)`` and ``error`` is ``None`` or the
#: :class:`LogFormatError` that stopped the scan (its ``line_number``
#: tells the caller where to resume).
BatchParser = Callable[
    [Sequence[str], int],
    Tuple[List[Tuple[int, str, str, EventRecord]], Optional[LogFormatError]],
]

#: Lines per block fed through :meth:`IngestStream.push_batch` by the
#: batched drivers.  Large enough to amortize per-block dispatch, small
#: enough that a block of worst-case lines stays in cache.
INGEST_BLOCK_LINES = 4096


def _generic_batch_parser(parse_line: LineParser) -> BatchParser:
    """Wrap a one-line parser into the block-scanner protocol.

    The fallback when a codec supplies no ``parse_batch``: blank lines
    are skipped (callers feeding comment-bearing formats must pass the
    codec's own scanner, which knows its filter), everything else goes
    through ``parse_line`` one at a time.
    """

    def parse(lines: Sequence[str], start: int = 1):
        entries: List[Tuple[int, str, str, EventRecord]] = []
        append = entries.append
        number = start - 1
        for line in lines:
            number += 1
            if not line.strip():
                continue
            try:
                name, record = parse_line(line, number)
            except LogFormatError as exc:
                if exc.line_number is None:
                    exc.line_number = number
                return entries, exc
            append((number, line, name, record))
        return entries, None

    return parse


def _record_payload(records: Iterable[EventRecord]) -> List[dict]:
    return [
        {
            "execution": r.execution_id,
            "activity": r.activity,
            "type": r.event_type,
            "time": r.timestamp,
            "output": list(r.output) if r.output is not None else None,
        }
        for r in records
    ]


def _finalize_execution(
    eid: str,
    records: List[EventRecord],
    policy: str,
    sink: Quarantine,
    report: IngestReport,
) -> Optional[Execution]:
    """Close one execution's record bucket: repair, build, or divert.

    Returns the accepted :class:`Execution` (report updated), or
    ``None`` when the bucket was quarantined.  Under ``strict`` a
    malformed execution raises instead, exactly like the plain readers.
    """
    applied: Counter = Counter()
    if policy == POLICY_REPAIR:
        records, applied = repair_records(records)
    try:
        execution = Execution(eid, records)
    except MalformedExecutionError as exc:
        if policy == POLICY_STRICT:
            raise
        sink.add(
            QuarantinedItem(
                kind="execution",
                reason=REASON_MALFORMED_EXECUTION,
                detail=str(exc),
                execution_id=eid,
                payload=_record_payload(records),
            )
        )
        report.quarantined_executions += 1
        report.reasons[REASON_MALFORMED_EXECUTION] += 1
        return None
    if policy == POLICY_REPAIR and len(execution) == 0:
        applied[REPAIR_DROPPED_EMPTY_TRACE] += 1
        report.repairs.update(applied)
        sink.add(
            QuarantinedItem(
                kind="execution",
                reason=REASON_EMPTY_EXECUTION,
                detail="no completed activity instance",
                execution_id=eid,
                payload=_record_payload(records),
            )
        )
        report.quarantined_executions += 1
        report.reasons[REASON_EMPTY_EXECUTION] += 1
        return None
    if applied:
        report.repaired_executions += 1
        report.repairs.update(applied)
    report.accepted_executions += 1
    report.accepted_records += len(records)
    return execution


def _finalize_execution_fast(
    eid: str,
    records: List[EventRecord],
    policy: str,
    sink: Quarantine,
    report: IngestReport,
) -> Optional[Execution]:
    """Bucket finalization for the batch path.

    Clean buckets (the overwhelming majority) build their
    :class:`Execution` through :meth:`Execution.from_grouped_records`,
    which skips the re-validation the general constructor pays for
    arbitrary record lists.  Repair-policy buckets and anything the fast
    builder declines fall back to :func:`_finalize_execution`, so every
    policy/quarantine outcome is byte-identical to the per-record path.
    """
    if policy == POLICY_REPAIR:
        return _finalize_execution(eid, records, policy, sink, report)
    execution = Execution.from_grouped_records(eid, records)
    if execution is None:
        return _finalize_execution(eid, records, policy, sink, report)
    report.accepted_executions += 1
    report.accepted_records += len(records)
    return execution


def iter_ingest_lines(
    numbered_lines: Iterable[Tuple[int, str]],
    parse_line: LineParser,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    journal=None,
    journal_skip: int = 0,
) -> Iterator[Execution]:
    """Stream executions out of a line stream under an error policy.

    The out-of-core counterpart of :func:`ingest_lines`: executions are
    yielded as they *finalize* instead of being collected into an
    :class:`~repro.logs.event_log.EventLog`, so memory is bounded by the
    open-execution window — not the log.  An execution finalizes once
    ``window`` accepted records have streamed past without adding to it
    (our codecs write executions contiguously, so any window works for
    round-tripped files); remaining open executions finalize at end of
    stream in first-seen order.  ``window=None`` disables early
    finalization entirely, reproducing batch semantics — and batch
    ingestion is implemented as exactly that.

    A record arriving for an already-finalized execution is a
    ``late-record``: an error under ``strict``, a quarantined line
    otherwise.  Late-record detection keeps one set entry per finalized
    execution *id* — bytes per execution, the one deliberate deviation
    from strictly constant memory.

    Line errors, process-name mixing, repairs and resource guards
    behave exactly as in :func:`ingest_lines`.  Pass ``report`` (and a
    ``quarantine``) in to inspect the accounting after exhaustion; the
    report's ``process_name`` is filled from the first record.

    Durability hooks (see ``docs/RELIABILITY.md``): a
    :class:`~repro.resilience.journal.Journal` passed as ``journal``
    receives every accepted execution *before* it is yielded, making
    the downstream fold write-ahead — journal sequence numbers
    correspond 1:1 with accepted executions in finalization order.  A
    resumed run passes ``journal_skip=K`` to suppress *journaling* of
    the first ``K`` accepted executions (the journal already holds
    them); they are still yielded and still counted by the report, so
    resumed tracking and accounting match an uninterrupted run — the
    caller skips re-folding them by position.

    Yields accepted executions in finalization order.  The generator
    must be fully consumed for the report to be complete.
    """
    if journal_skip < 0:
        raise ValueError("journal_skip must be >= 0")
    stream = _iter_ingest_core(
        numbered_lines,
        parse_line,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
        report=report,
        window=window,
    )
    if journal is None:
        yield from stream
        return
    yield from _journaled(stream, journal, journal_skip)


def _journaled(
    executions: Iterator[Execution], journal, journal_skip: int
) -> Iterator[Execution]:
    # Write-ahead hook shared by the per-line and batched drivers:
    # every accepted execution is journaled before it is yielded.
    accepted = 0
    for execution in executions:
        accepted += 1
        if accepted > journal_skip:
            maybe_fault("ingest.accept")
            journal.append_execution(execution)
        yield execution


class IngestStream:
    """Push-based ingest: the policy/window machinery as an object.

    This is the same engine :func:`iter_ingest_lines` runs — one bucket
    per open execution, recency-window finalization, policy dispatch,
    resource guards — turned inside out so a *caller* can drive it one
    line at a time.  The pull-based generators are thin drivers over
    this class, which keeps batch, streaming-CLI and service ingest
    identical by construction.

    ``push`` accepts one raw line and returns the executions (usually
    zero or one) whose windows it closed.  ``flush`` finalizes every
    open bucket *mid-stream* — the service calls it so a quiescent
    tenant's model converges without more traffic; flushed ids join the
    late-record set, so stragglers are quarantined exactly like
    window-expired ones.  ``close`` ends the stream with batch
    end-of-log semantics (buckets close without joining the late set,
    matching the generators' final loop).

    Exceptions out of ``push`` under ``strict`` leave the stream usable:
    guards raise before any mutation, and a malformed-execution error
    surfaces after its bucket was already removed.
    """

    def __init__(
        self,
        parse_line: LineParser,
        policy: str = POLICY_STRICT,
        limits: Optional[IngestLimits] = None,
        quarantine: Optional[Quarantine] = None,
        report: Optional[IngestReport] = None,
        window: Optional[int] = DEFAULT_STREAM_WINDOW,
        parse_batch: Optional[BatchParser] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 or None")
        self._parse_line = parse_line
        # ``parse_batch`` opts the stream into the fast path: the
        # codec's block scanner feeds ``push_batch``, and buckets
        # finalize through the fast Execution builder.  Without it the
        # stream behaves exactly as before PR 10 — the per-record
        # engine is also the benchmark reference, so it stays pristine.
        self._parse_batch = (
            parse_batch
            if parse_batch is not None
            else _generic_batch_parser(parse_line)
        )
        self._fast_finalize = parse_batch is not None
        self.policy = policy
        self.limits = limits if limits is not None else IngestLimits()
        self.quarantine = (
            quarantine if quarantine is not None else Quarantine()
        )
        self.report = report if report is not None else IngestReport()
        self.report.policy = policy
        self.window = window
        # ``_grouped`` holds the open executions.  With a window it is
        # kept in last-touched order (pop + reinsert on every record) so
        # the least-recently-touched bucket is always first; ``_touch``
        # maps each open eid to the accepted-record index that last
        # extended it.
        self._grouped: Dict[str, List[EventRecord]] = {}
        self._touch: Dict[str, int] = {}
        self._finalized: Set[str] = set()
        self._activities: Set[str] = set()
        self._record_index = 0

    @property
    def open_executions(self) -> int:
        """How many executions currently hold an open bucket."""
        return len(self._grouped)

    def _quarantine_line(
        self,
        reason: str,
        detail: str,
        line_number: int,
        raw_line: str,
        execution_id: Optional[str] = None,
    ) -> None:
        self.quarantine.add(
            QuarantinedItem(
                kind="line",
                reason=reason,
                detail=detail,
                line_number=line_number,
                execution_id=execution_id,
                payload=raw_line.rstrip("\n"),
            )
        )
        self.report.quarantined_lines += 1
        self.report.reasons[reason] += 1

    def push(self, line_number: int, raw_line: str) -> List[Execution]:
        """Feed one raw line; return executions finalized by it."""
        report = self.report
        policy = self.policy
        limits = self.limits
        try:
            name, record = self._parse_line(raw_line, line_number)
        except LogFormatError as exc:
            if policy == POLICY_STRICT:
                raise
            self._quarantine_line(
                REASON_BAD_LINE, str(exc), line_number, raw_line
            )
            return []
        if report.process_name is None:
            report.process_name = name
        elif name != report.process_name:
            if policy == POLICY_STRICT:
                raise LogFormatError(
                    f"log mixes processes {report.process_name!r} "
                    f"and {name!r}",
                    line_number,
                )
            self._quarantine_line(
                REASON_MIXED_PROCESS,
                (
                    f"record of process {name!r} in a log of "
                    f"{report.process_name!r}"
                ),
                line_number,
                raw_line,
            )
            return []
        eid = record.execution_id
        if eid in self._finalized:
            if policy == POLICY_STRICT:
                raise LogFormatError(
                    f"record for execution {eid!r} arrived after its "
                    f"finalization window closed; raise --stream-window "
                    f"or sort the log by execution",
                    line_number,
                )
            self._quarantine_line(
                REASON_LATE_RECORD,
                (
                    f"execution {eid!r} already finalized; record "
                    f"arrived more than {self.window} records late"
                ),
                line_number,
                raw_line,
                execution_id=eid,
            )
            return []
        grouped = self._grouped
        bucket = grouped.get(eid)
        if bucket is None:
            if (
                limits.max_executions is not None
                and len(grouped) + len(self._finalized)
                >= limits.max_executions
            ):
                raise ResourceLimitError(
                    "max_executions",
                    limits.max_executions,
                    f"execution {eid!r} at line {line_number}",
                    line_number=line_number,
                )
            bucket = grouped[eid] = []
        elif self.window is not None:
            # Move to the recency end so the front stays oldest.
            grouped.pop(eid)
            grouped[eid] = bucket
        if (
            limits.max_events_per_execution is not None
            and len(bucket) >= limits.max_events_per_execution
        ):
            raise ResourceLimitError(
                "max_events_per_execution",
                limits.max_events_per_execution,
                f"execution {eid!r} at line {line_number}",
                line_number=line_number,
            )
        if record.activity not in self._activities:
            if (
                limits.max_activities is not None
                and len(self._activities) >= limits.max_activities
            ):
                raise ResourceLimitError(
                    "max_activities",
                    limits.max_activities,
                    f"activity {record.activity!r} at line {line_number}",
                    line_number=line_number,
                )
            self._activities.add(record.activity)
        bucket.append(record)
        self._record_index += 1
        self._touch[eid] = self._record_index
        if self.window is None:
            return []
        out: List[Execution] = []
        while grouped:
            oldest = next(iter(grouped))
            if self._record_index - self._touch[oldest] < self.window:
                break
            records = grouped.pop(oldest)
            del self._touch[oldest]
            self._finalized.add(oldest)
            self._emit(oldest, records, out)
        return out

    def _emit(
        self, eid: str, records: List[EventRecord], out: List[Execution]
    ) -> None:
        """Finalize one bucket, appending the accepted execution."""
        finalize = (
            _finalize_execution_fast
            if self._fast_finalize
            else _finalize_execution
        )
        execution = finalize(
            eid, records, self.policy, self.quarantine, self.report
        )
        if execution is not None:
            out.append(execution)

    def push_batch(
        self,
        start: int,
        lines: Sequence[str],
        out: Optional[List[Execution]] = None,
    ) -> List[Execution]:
        """Feed a block of raw lines; return executions it finalized.

        ``lines[i]`` is line number ``start + i``.  The block is decoded
        through the codec's ``parse_batch`` scanner (or a generic
        per-line fallback) and the bookkeeping loop runs with its
        lookups bound to locals, so policy dispatch and window
        accounting amortize per block.  Malformed lines re-enter
        :meth:`push` individually, which makes every error, quarantine
        entry and report field byte-identical to pushing the same lines
        one at a time.

        When the caller passes ``out``, finalized executions are
        appended there *as they finalize* — so a strict-policy error
        raised mid-block still leaves everything finalized before the
        bad line in the caller's hands, exactly as per-line pushing
        would have returned them.
        """
        if out is None:
            out = []
        parse_batch = self._parse_batch
        total = len(lines)
        index = 0
        while index < total:
            entries, error = parse_batch(
                lines[index:] if index else lines, start + index
            )
            if entries:
                self._ingest_entries(entries, out)
            if error is None:
                break
            bad = error.line_number - start
            out.extend(self.push(error.line_number, lines[bad]))
            index = bad + 1
        return out

    def _ingest_entries(
        self,
        entries: List[Tuple[int, str, str, EventRecord]],
        out: List[Execution],
    ) -> None:
        # The push() bookkeeping loop, inlined over a parsed block with
        # every per-record attribute lookup bound to a local.  Any
        # change here must mirror push() — the hypothesis parity suite
        # (tests/test_ingest_fastpath.py) holds the two paths equal.
        report = self.report
        limits = self.limits
        window = self.window
        grouped = self._grouped
        touch = self._touch
        finalized = self._finalized
        activities = self._activities
        get_bucket = grouped.get
        strict = self.policy == POLICY_STRICT
        max_executions = limits.max_executions
        max_events = limits.max_events_per_execution
        max_activities = limits.max_activities
        process_name = report.process_name
        record_index = self._record_index
        # Track the recency ends in locals: ``newest`` is the bucket at
        # the recency end (last inserted/moved), ``oldest`` the one the
        # expiry check probes.  Saves a next(iter())/next(reversed())
        # pair per record; both are plain derived views of ``grouped``.
        newest = next(reversed(grouped)) if grouped else None
        oldest = next(iter(grouped)) if grouped else None
        try:
            for line_number, raw_line, name, record in entries:
                if name != process_name:
                    if process_name is None:
                        report.process_name = process_name = name
                    elif strict:
                        raise LogFormatError(
                            f"log mixes processes {process_name!r} "
                            f"and {name!r}",
                            line_number,
                        )
                    else:
                        self._quarantine_line(
                            REASON_MIXED_PROCESS,
                            (
                                f"record of process {name!r} in a log of "
                                f"{process_name!r}"
                            ),
                            line_number,
                            raw_line,
                        )
                        continue
                eid = record.execution_id
                bucket = get_bucket(eid)
                if bucket is None:
                    if eid in finalized:
                        if strict:
                            raise LogFormatError(
                                f"record for execution {eid!r} arrived "
                                f"after its finalization window closed; "
                                f"raise --stream-window or sort the log "
                                f"by execution",
                                line_number,
                            )
                        self._quarantine_line(
                            REASON_LATE_RECORD,
                            (
                                f"execution {eid!r} already finalized; "
                                f"record arrived more than {window} "
                                f"records late"
                            ),
                            line_number,
                            raw_line,
                            execution_id=eid,
                        )
                        continue
                    if (
                        max_executions is not None
                        and len(grouped) + len(finalized) >= max_executions
                    ):
                        raise ResourceLimitError(
                            "max_executions",
                            max_executions,
                            f"execution {eid!r} at line {line_number}",
                            line_number=line_number,
                        )
                    bucket = grouped[eid] = []
                    newest = eid
                    if oldest is None:
                        oldest = eid
                elif window is not None and newest != eid:
                    # Move to the recency end so the front stays oldest;
                    # skipped when already freshest (contiguous logs).
                    grouped.pop(eid)
                    grouped[eid] = bucket
                    newest = eid
                    if oldest == eid:
                        oldest = next(iter(grouped))
                if max_events is not None and len(bucket) >= max_events:
                    raise ResourceLimitError(
                        "max_events_per_execution",
                        max_events,
                        f"execution {eid!r} at line {line_number}",
                        line_number=line_number,
                    )
                activity = record.activity
                if activity not in activities:
                    if (
                        max_activities is not None
                        and len(activities) >= max_activities
                    ):
                        raise ResourceLimitError(
                            "max_activities",
                            max_activities,
                            f"activity {activity!r} at line {line_number}",
                            line_number=line_number,
                        )
                    activities.add(activity)
                bucket.append(record)
                record_index += 1
                touch[eid] = record_index
                if window is None:
                    continue
                while (
                    oldest is not None
                    and record_index - touch[oldest] >= window
                ):
                    records = grouped.pop(oldest)
                    del touch[oldest]
                    finalized.add(oldest)
                    self._emit(oldest, records, out)
                    oldest = next(iter(grouped)) if grouped else None
                    if oldest is None:
                        newest = None
        finally:
            self._record_index = record_index

    def flush(self) -> List[Execution]:
        """Finalize every open bucket now, keeping the stream live.

        Flushed execution ids join the late-record set: a record for
        one of them arriving later is quarantined (or raises under
        ``strict``) exactly as if its window had expired.
        """
        out: List[Execution] = []
        for eid in list(self._grouped):
            records = self._grouped.pop(eid)
            self._touch.pop(eid, None)
            self._finalized.add(eid)
            self._emit(eid, records, out)
        return out

    def close(self) -> List[Execution]:
        """End of stream: close the remaining buckets in first-seen
        order (with a window, recency order equals first-seen order for
        the survivors only in contiguous logs; first-seen matches
        batch)."""
        out: List[Execution] = []
        for eid in list(self._grouped):
            self._emit(eid, self._grouped.pop(eid), out)
        return out


def _iter_ingest_core(
    numbered_lines: Iterable[Tuple[int, str]],
    parse_line: LineParser,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
) -> Iterator[Execution]:
    """The pull-based driver over :class:`IngestStream`."""
    stream = IngestStream(
        parse_line,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
        report=report,
        window=window,
    )
    for line_number, raw_line in numbered_lines:
        yield from stream.push(line_number, raw_line)
    yield from stream.close()


def _iter_ingest_blocks_core(
    raw_lines: Iterable[str],
    parse_line: LineParser,
    parse_batch: Optional[BatchParser],
    policy: str,
    limits: Optional[IngestLimits],
    quarantine: Optional[Quarantine],
    report: Optional[IngestReport],
    window: Optional[int],
) -> Iterator[Execution]:
    stream = IngestStream(
        parse_line,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
        report=report,
        window=window,
        parse_batch=parse_batch,
    )
    iterator = iter(raw_lines)
    base = 1
    while True:
        block = list(islice(iterator, INGEST_BLOCK_LINES))
        if not block:
            break
        yield from stream.push_batch(base, block)
        base += len(block)
    yield from stream.close()


def iter_ingest_blocks(
    raw_lines: Iterable[str],
    parse_line: LineParser,
    parse_batch: Optional[BatchParser] = None,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    journal=None,
    journal_skip: int = 0,
) -> Iterator[Execution]:
    """Batched counterpart of :func:`iter_ingest_lines`.

    Consumes *raw* lines (no pre-filtering, no numbering — blocks are
    contiguous, so line numbers fall out of block offsets), feeds them
    through :meth:`IngestStream.push_batch` in ``INGEST_BLOCK_LINES``
    chunks, and journals accepted executions exactly as the per-line
    driver does.  Semantics — policies, limits, windowing, quarantine,
    report accounting, journal sequence numbers — are byte-identical to
    :func:`iter_ingest_lines` over the same lines; only the per-record
    dispatch overhead is amortized.
    """
    if journal_skip < 0:
        raise ValueError("journal_skip must be >= 0")
    stream = _iter_ingest_blocks_core(
        raw_lines,
        parse_line,
        parse_batch,
        policy,
        limits,
        quarantine,
        report,
        window,
    )
    if journal is None:
        yield from stream
        return
    yield from _journaled(stream, journal, journal_skip)


def ingest_blocks(
    raw_lines: Iterable[str],
    parse_line: LineParser,
    parse_batch: Optional[BatchParser] = None,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
) -> IngestResult:
    """Batched counterpart of :func:`ingest_lines` over raw lines."""
    sink = quarantine if quarantine is not None else Quarantine()
    report = IngestReport(policy=policy)
    executions = list(
        iter_ingest_blocks(
            raw_lines,
            parse_line,
            parse_batch,
            policy=policy,
            limits=limits,
            quarantine=sink,
            report=report,
            window=None,
        )
    )
    log = EventLog(executions, process_name=report.process_name)
    return IngestResult(log=log, report=report, quarantine=sink)


def ingest_lines(
    numbered_lines: Iterable[Tuple[int, str]],
    parse_line: LineParser,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
) -> IngestResult:
    """Ingest a pre-filtered line stream under an error policy.

    Parameters
    ----------
    numbered_lines:
        ``(line_number, raw_line)`` pairs; the codec has already removed
        blank/comment lines.
    parse_line:
        The codec's line parser; must raise :class:`LogFormatError` on
        any malformed line.
    policy:
        ``"strict"`` re-raises every error exactly like the plain
        readers; ``"skip"`` quarantines; ``"repair"`` quarantines bad
        lines but runs the repair pipeline over malformed executions.
    limits:
        Optional :class:`IngestLimits`; exceeding one raises
        :class:`ResourceLimitError` under every policy.
    quarantine:
        Optional sink (e.g. one bound to a dead-letter file); an
        in-memory sink is created when omitted.

    Raises
    ------
    LogFormatError, MalformedExecutionError
        Under ``strict`` only — identical to the plain readers.
    ResourceLimitError
        When a guard in ``limits`` is exceeded, under any policy.
    """
    sink = quarantine if quarantine is not None else Quarantine()
    report = IngestReport(policy=policy)
    # Batch = streaming with finalization deferred to end of stream:
    # every execution closes at EOF, in first-seen order, exactly as the
    # one-shot grouping did.
    executions = list(
        iter_ingest_lines(
            numbered_lines,
            parse_line,
            policy=policy,
            limits=limits,
            quarantine=sink,
            report=report,
            window=None,
        )
    )
    log = EventLog(executions, process_name=report.process_name)
    return IngestResult(log=log, report=report, quarantine=sink)


def publish_ingest_report(report: IngestReport, recorder) -> None:
    """Mirror an :class:`IngestReport` into a :mod:`repro.obs` recorder.

    Records the stable ``repro_ingest_*`` counters (see
    ``docs/OBSERVABILITY.md``): executions/records accepted, executions
    repaired plus the per-rule repair breakdown, and quarantined lines/
    executions with the per-reason breakdown.  No-op under the null
    recorder, so callers can pass their recorder unconditionally.
    """
    if not recorder.enabled:
        return
    recorder.count(
        "repro_ingest_executions_accepted_total",
        report.accepted_executions,
    )
    recorder.count(
        "repro_ingest_records_accepted_total", report.accepted_records
    )
    recorder.count(
        "repro_ingest_executions_repaired_total",
        report.repaired_executions,
    )
    for rule, count in sorted(report.repairs.items()):
        recorder.count(
            "repro_ingest_repairs_total", count, labels={"rule": rule}
        )
    recorder.count(
        "repro_ingest_quarantined_total",
        report.quarantined_lines,
        labels={"kind": "line"},
    )
    recorder.count(
        "repro_ingest_quarantined_total",
        report.quarantined_executions,
        labels={"kind": "execution"},
    )
    for reason, count in sorted(report.reasons.items()):
        recorder.count(
            "repro_ingest_quarantine_reasons_total",
            count,
            labels={"reason": reason},
        )
