"""Flowmark-style text serialization of workflow logs.

"Both the synthetic data and the Flowmark logs are lists of event records
consisting of the process name, the activity name, the event type, and the
timestamp" (Section 8).  The codec writes one record per line::

    <process>\t<execution>\t<activity>\t<START|END>\t<timestamp>[\t<o0,o1,...>]

The trailing output field is present only on END records that carry an
output vector (Flowmark itself "does not log the input and output
parameters", so logs without the field parse fine — and the conditions
learner simply has nothing to learn from, as the paper notes for its
Flowmark datasets).

Reading is streaming: :func:`iter_records` yields records one line at a
time, so the 10,000-execution logs of Table 1 never need to be held as text
in memory.
"""

from __future__ import annotations

import io
import math
import sys
from collections import OrderedDict
from pathlib import Path
from typing import (
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import LogFormatError
from repro.logs.event_log import EventLog
from repro.logs.events import END_EVENT, START_EVENT, EventRecord
from repro.logs.execution import Execution
from repro.resilience.durable import durable_stream_writer
from repro.logs.ingest import (
    DEFAULT_STREAM_WINDOW,
    POLICY_STRICT,
    IngestLimits,
    IngestReport,
    IngestResult,
    Quarantine,
    ingest_blocks,
    iter_ingest_blocks,
)

# (line_number, raw_line, process_name, record) tuples from parse_batch.
ParsedBatch = List[Tuple[int, str, str, EventRecord]]

FIELD_SEPARATOR = "\t"
OUTPUT_SEPARATOR = ","
DEFAULT_PROCESS = "process"

PathOrStr = Union[str, Path]


def format_record(record: EventRecord, process_name: str) -> str:
    """Serialize one record to its log line (no trailing newline)."""
    fields = [
        process_name,
        record.execution_id,
        record.activity,
        record.event_type,
        _format_time(record.timestamp),
    ]
    if record.output is not None:
        fields.append(
            OUTPUT_SEPARATOR.join(_format_time(v) for v in record.output)
        )
    return FIELD_SEPARATOR.join(fields)


def parse_record(line: str, line_number: Optional[int] = None) -> Tuple[
    str, EventRecord
]:
    """Parse one log line into ``(process_name, record)``.

    Raises
    ------
    LogFormatError
        On the wrong number of fields, a bad event type, or non-numeric
        timestamps/outputs.
    """
    fields = line.rstrip("\n").split(FIELD_SEPARATOR)
    if len(fields) not in (5, 6):
        raise LogFormatError(
            f"expected 5 or 6 tab-separated fields, got {len(fields)}",
            line_number,
        )
    process_name, execution_id, activity, event_type, time_text = fields[:5]
    try:
        timestamp = float(time_text)
    except ValueError as exc:
        raise LogFormatError(
            f"bad timestamp {time_text!r}", line_number
        ) from exc
    if not math.isfinite(timestamp):
        raise LogFormatError(
            f"timestamp must be finite, got {time_text!r}", line_number
        )
    output: Optional[Tuple[float, ...]] = None
    if len(fields) == 6 and fields[5]:
        try:
            output = tuple(
                float(v) for v in fields[5].split(OUTPUT_SEPARATOR)
            )
        except ValueError as exc:
            raise LogFormatError(
                f"bad output vector {fields[5]!r}", line_number
            ) from exc
        if any(not math.isfinite(v) for v in output):
            raise LogFormatError(
                f"output entries must be finite numbers, got "
                f"{fields[5]!r}",
                line_number,
            )
    try:
        record = EventRecord(
            timestamp=timestamp,
            execution_id=execution_id,
            activity=activity,
            event_type=event_type,
            output=output,
        )
    except ValueError as exc:
        raise LogFormatError(str(exc), line_number) from exc
    return process_name, record


def parse_batch(
    lines: Sequence[str], start: int = 1
) -> Tuple[ParsedBatch, Optional[LogFormatError]]:
    """Parse a block of raw log lines in one pass.

    The batched counterpart of :func:`parse_record`: ``lines[i]`` is
    line number ``start + i``, blank lines and ``#`` comments are
    skipped (the same filter the streaming reader applies), and field
    validation is inlined so the per-line closure/exception overhead of
    the one-record parser is paid only on malformed input.

    Returns ``(entries, error)`` where ``entries`` is a list of
    ``(line_number, raw_line, process_name, record)`` tuples for every
    well-formed line scanned, and ``error`` is ``None`` for a clean
    block or the :class:`LogFormatError` (carrying the absolute line
    number of the offending line) that stopped the scan.  Callers
    resume after the reported line, so error positions match the
    per-line reader exactly.
    """
    entries: ParsedBatch = []
    append = entries.append
    isfinite = math.isfinite
    intern = sys.intern
    new_record = EventRecord.__new__
    record_cls = EventRecord
    separator = FIELD_SEPARATOR
    times: dict = {}
    last_process_raw: Optional[str] = None
    last_process: str = ""
    number = start - 1
    for line in lines:
        number += 1
        # Data lines start with a process-name character; only lines
        # opening with whitespace or '#' need the full filter check.
        if line[:1] in "# \t\n\r\x0b\x0c":
            stripped = line.strip()
            if not stripped or stripped[0] == "#":
                continue
        fields = line.rstrip("\n").split(separator)
        if len(fields) == 5:
            process_name, execution_id, activity, event_type, time_text = fields
            output = None
        elif len(fields) == 6:
            process_name, execution_id, activity, event_type, time_text = (
                fields[0], fields[1], fields[2], fields[3], fields[4]
            )
            if fields[5]:
                output = _slow_output(fields[5], number)
                if output is None:
                    return entries, _canonical_error(line, number)
            else:
                output = None
        else:
            return entries, _canonical_error(line, number)
        timestamp = times.get(time_text)
        if timestamp is None:
            try:
                timestamp = float(time_text)
            except ValueError:
                return entries, _canonical_error(line, number)
            if not isfinite(timestamp):
                return entries, _canonical_error(line, number)
            times[time_text] = timestamp
        if event_type == "END":
            event_type = END_EVENT
        elif event_type == "START" and output is None:
            event_type = START_EVENT
        else:
            return entries, _canonical_error(line, number)
        if not (activity and execution_id):
            return entries, _canonical_error(line, number)
        if process_name != last_process_raw:
            last_process_raw = process_name
            last_process = intern(process_name)
        record = new_record(record_cls)
        # Frozen dataclass: populate the instance dict directly (item
        # stores beat both __init__ and __dict__.update measurably).
        attrs = record.__dict__
        attrs["timestamp"] = timestamp
        attrs["execution_id"] = execution_id
        attrs["activity"] = intern(activity)
        attrs["event_type"] = event_type
        attrs["output"] = output
        append((number, line, last_process, record))
    return entries, None


def _canonical_error(line: str, line_number: int) -> LogFormatError:
    # Re-parse a line the fast scanner rejected through the one-record
    # parser so batch errors are byte-identical to per-line errors.
    try:
        parse_record(line, line_number)
    except LogFormatError as exc:
        return exc
    raise AssertionError(
        f"batch scanner rejected line {line_number} that parse_record accepts"
    )


def _slow_output(
    text: str, line_number: int
) -> Optional[Tuple[float, ...]]:
    # Output vectors are rare (END records with logged parameters);
    # parse them through the same checks as parse_record and signal
    # failure with None so the caller re-raises canonically.
    try:
        output = tuple(float(v) for v in text.split(OUTPUT_SEPARATOR))
    except ValueError:
        return None
    if any(not math.isfinite(v) for v in output):
        return None
    return output


def write_log(log: EventLog, stream: IO[str]) -> int:
    """Write ``log`` to a text stream; returns the number of lines."""
    process_name = log.process_name or DEFAULT_PROCESS
    count = 0
    for record in log.records():
        stream.write(format_record(record, process_name))
        stream.write("\n")
        count += 1
    return count


def write_log_file(
    log: EventLog, path: PathOrStr, durable: bool = True
) -> int:
    """Write ``log`` to ``path``; returns the number of lines written.

    Records stream through :func:`repro.resilience.durable.
    durable_stream_writer` — the file appears atomically and never
    torn, without buffering the whole log in memory.  ``durable=False``
    keeps the atomic replace but skips the fsyncs, the documented
    escape hatch for huge scratch exports (generated datasets,
    benchmark corpora) whose loss on power failure is acceptable.
    """
    with durable_stream_writer(path, fsync=durable) as handle:
        return write_log(log, handle)


def iter_records(
    stream: IO[str],
) -> Iterator[Tuple[str, EventRecord]]:
    """Stream ``(process_name, record)`` pairs from a text stream.

    Blank lines and ``#`` comment lines are skipped.
    """
    for line_number, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_record(line, line_number)


def _numbered_lines(stream: IO[str]) -> Iterator[Tuple[int, str]]:
    # The codec's line filter: blank lines and ``#`` comments skipped.
    for line_number, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield line_number, line


def ingest_log(
    stream: IO[str],
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
) -> IngestResult:
    """Read a log under an error policy, returning log + ingest report.

    See :mod:`repro.logs.ingest` for the policy, limit, and quarantine
    semantics.  Under the default ``strict`` policy this is
    :func:`read_log` plus an (all-clean) report.
    """
    return ingest_blocks(
        stream,
        parse_record,
        parse_batch,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
    )


def ingest_log_file(
    path: PathOrStr,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
) -> IngestResult:
    """Read a log file under an error policy (see :func:`ingest_log`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return ingest_log(
            handle, policy=policy, limits=limits, quarantine=quarantine
        )


def iter_ingest_log(
    stream: IO[str],
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    journal=None,
    journal_skip: int = 0,
) -> Iterator[Execution]:
    """Stream executions out of a log without building an ``EventLog``.

    The out-of-core reader behind ``mine --stream``: executions are
    yielded as their record buckets finalize, so memory stays bounded by
    the ``window`` of open executions instead of the whole log.  See
    :func:`repro.logs.ingest.iter_ingest_lines` for the policy, limit,
    window and report semantics.  Lines decode through
    :func:`parse_batch` in blocks; semantics are byte-identical to the
    per-line reader.
    """
    return iter_ingest_blocks(
        stream,
        parse_record,
        parse_batch,
        policy=policy,
        limits=limits,
        quarantine=quarantine,
        report=report,
        window=window,
        journal=journal,
        journal_skip=journal_skip,
    )


def iter_ingest_log_file(
    path: PathOrStr,
    policy: str = POLICY_STRICT,
    limits: Optional[IngestLimits] = None,
    quarantine: Optional[Quarantine] = None,
    report: Optional[IngestReport] = None,
    window: Optional[int] = DEFAULT_STREAM_WINDOW,
    journal=None,
    journal_skip: int = 0,
) -> Iterator[Execution]:
    """Stream executions out of a log file (see :func:`iter_ingest_log`)."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from iter_ingest_log(
            handle,
            policy=policy,
            limits=limits,
            quarantine=quarantine,
            report=report,
            window=window,
            journal=journal,
            journal_skip=journal_skip,
        )


def read_log(stream: IO[str]) -> EventLog:
    """Read a full log from a text stream.

    All records must belong to one process; a log mixing process names
    raises :class:`LogFormatError` (the paper's problem statement fixes a
    single process per log).  Fail-fast: any malformed line raises.  Use
    :func:`ingest_log` for the policy-driven fault-tolerant reader.
    """
    return ingest_log(stream).log


def read_log_file(path: PathOrStr) -> EventLog:
    """Read a full log from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_log(handle)


def read_process_logs(stream: IO[str]) -> "OrderedDict[str, EventLog]":
    """Read a stream containing interleaved logs of *several* processes.

    A Flowmark installation logs every process into one audit trail; the
    first record field names the process.  Records are partitioned by
    that field and each partition becomes its own :class:`EventLog`.
    Returns an ordered mapping keyed by process name, in order of first
    appearance.
    """
    per_process: "OrderedDict[str, list]" = OrderedDict()
    for name, record in iter_records(stream):
        per_process.setdefault(name, []).append(record)
    return OrderedDict(
        (name, EventLog.from_records(records, process_name=name))
        for name, records in per_process.items()
    )


def read_process_logs_file(
    path: PathOrStr,
) -> "OrderedDict[str, EventLog]":
    """Read a multi-process log file (see :func:`read_process_logs`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_process_logs(handle)


def write_process_logs(
    logs: Iterable[EventLog], stream: IO[str]
) -> int:
    """Write several process logs into one interleaved stream.

    Records are merged in timestamp order across processes, mimicking a
    shared installation-wide audit trail; returns the line count.
    """
    tagged = []
    for log in logs:
        name = log.process_name or DEFAULT_PROCESS
        for record in log.records():
            tagged.append((record.timestamp, name, record))
    tagged.sort(key=lambda item: (item[0], item[1]))
    for _, name, record in tagged:
        stream.write(format_record(record, name))
        stream.write("\n")
    return len(tagged)


def log_to_text(log: EventLog) -> str:
    """Serialize ``log`` to a single string (tests and small logs)."""
    buffer = io.StringIO()
    write_log(log, buffer)
    return buffer.getvalue()


def log_from_text(text: str) -> EventLog:
    """Parse a log from a string produced by :func:`log_to_text`."""
    return read_log(io.StringIO(text))


def log_size_bytes(log: EventLog) -> int:
    """Return the size, in bytes, of the log's serialized form.

    Table 1 and Table 3 of the paper report physical log sizes; the benches
    use this to report the analogous column.
    """
    process_name = log.process_name or DEFAULT_PROCESS
    total = 0
    for record in log.records():
        total += len(format_record(record, process_name)) + 1
    return total


def _format_time(value: float) -> str:
    # Integral floats print as integers to keep log files compact.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
