"""The workflow log: a set of executions of the same process.

"We can consider the log as a set of separate executions of an unknown
underlying process graph" (Section 2).  :class:`EventLog` groups event
records by execution id, preserves insertion order, and offers the bulk
views the miners and statistics consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EmptyLogError
from repro.logs.events import EventRecord
from repro.logs.execution import Execution


class EventLog:
    """A log of executions of one process.

    Parameters
    ----------
    executions:
        The log's executions, kept in the given order.
    process_name:
        Optional name of the underlying process (used by the codec and
        reports).
    """

    def __init__(
        self,
        executions: Iterable[Execution] = (),
        process_name: Optional[str] = None,
    ) -> None:
        self._executions: List[Execution] = list(executions)
        self.process_name = process_name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sequences(
        cls,
        sequences: Iterable[Sequence[str]],
        process_name: Optional[str] = None,
    ) -> "EventLog":
        """Build a log from plain activity sequences.

        This is how the paper writes its worked examples —
        ``{ABCE, ACDBE, ACDE}`` becomes
        ``EventLog.from_sequences(["ABCE", "ACDBE", "ACDE"])`` (a string is
        a sequence of single-letter activities).
        """
        executions = [
            Execution.from_sequence(list(seq), execution_id=f"exec-{i:05d}")
            for i, seq in enumerate(sequences)
        ]
        return cls(executions, process_name=process_name)

    @classmethod
    def from_records(
        cls,
        records: Iterable[EventRecord],
        process_name: Optional[str] = None,
    ) -> "EventLog":
        """Group a flat, possibly interleaved record stream into executions.

        Records are grouped by execution id; groups are ordered by their
        first record's appearance in the stream, which keeps logs stable
        under round-trips through the codec.
        """
        grouped: Dict[str, List[EventRecord]] = {}
        order: List[str] = []
        for record in records:
            if record.execution_id not in grouped:
                grouped[record.execution_id] = []
                order.append(record.execution_id)
            grouped[record.execution_id].append(record)
        executions = [Execution(eid, grouped[eid]) for eid in order]
        return cls(executions, process_name=process_name)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._executions)

    def __iter__(self) -> Iterator[Execution]:
        return iter(self._executions)

    def __getitem__(self, index: int) -> Execution:
        return self._executions[index]

    def __repr__(self) -> str:
        name = self.process_name or "?"
        return f"EventLog(process={name!r}, executions={len(self)})"

    def append(self, execution: Execution) -> None:
        """Append one execution to the log."""
        self._executions.append(execution)

    def extend(self, executions: Iterable[Execution]) -> None:
        """Append several executions to the log."""
        self._executions.extend(executions)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def executions(self) -> List[Execution]:
        """The executions (a copy of the list; executions are shared)."""
        return list(self._executions)

    def sequences(self) -> List[List[str]]:
        """All executions as activity sequences."""
        return [execution.sequence for execution in self._executions]

    def activities(self) -> frozenset:
        """The set of all activities appearing anywhere in the log."""
        names: set = set()
        for execution in self._executions:
            names |= execution.activities
        return frozenset(names)

    def records(self) -> Iterator[EventRecord]:
        """Iterate over every record, execution by execution."""
        for execution in self._executions:
            yield from execution.records

    def event_count(self) -> int:
        """Total number of event records in the log."""
        return sum(len(e.records) for e in self._executions)

    def require_non_empty(self) -> None:
        """Raise :class:`EmptyLogError` when the log has no executions."""
        if not self._executions:
            raise EmptyLogError("the log contains no executions")

    def sample(self, count: int, seed: int = 0) -> "EventLog":
        """Return a log of ``count`` executions sampled without
        replacement (order preserved); the whole log if ``count`` is
        not smaller than its size.

        Used by learning-curve experiments that shrink a log while
        keeping its distribution.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if count >= len(self._executions):
            return EventLog(self._executions, self.process_name)
        import random

        rng = random.Random(seed)
        chosen = sorted(
            rng.sample(range(len(self._executions)), count)
        )
        return EventLog(
            [self._executions[i] for i in chosen], self.process_name
        )

    def split(self, fraction: float) -> Tuple["EventLog", "EventLog"]:
        """Split into a head/tail pair at ``fraction`` of the executions.

        Useful for train/test splits in the conditions-mining evaluation.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        cut = int(round(len(self._executions) * fraction))
        head = EventLog(self._executions[:cut], self.process_name)
        tail = EventLog(self._executions[cut:], self.process_name)
        return head, tail
