"""Event records.

Definition 2 of the paper: the log of one execution is a list of event
records ``(P, A, E, T, O)`` where ``P`` names the process execution, ``A``
the activity, ``E`` in ``{START, END}`` is the event type, ``T`` the time,
and ``O = o(A)`` the activity's output when ``E = END`` (a null vector
otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

START_EVENT = "START"
END_EVENT = "END"

_VALID_EVENT_TYPES = frozenset({START_EVENT, END_EVENT})


@dataclass(frozen=True, order=True)
class EventRecord:
    """One log record ``(P, A, E, T, O)``.

    Ordering is by timestamp first (then the remaining fields, making sort
    order total and deterministic), so a list of records sorts into event
    time order — which is how traces are reconstructed from interleaved
    process logs.

    Attributes
    ----------
    timestamp:
        Event time ``T``.  Declared first so dataclass ordering is
        time-major.
    execution_id:
        The process-execution name ``P``.
    activity:
        The activity name ``A``.
    event_type:
        ``"START"`` or ``"END"``.
    output:
        The activity output vector ``O`` for END events; ``None`` for
        START events (the paper's "null vector").
    """

    timestamp: float
    execution_id: str
    activity: str
    event_type: str
    output: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.event_type not in _VALID_EVENT_TYPES:
            raise ValueError(
                f"event type must be START or END, got {self.event_type!r}"
            )
        if not self.activity:
            raise ValueError("activity name must be non-empty")
        if not self.execution_id:
            raise ValueError("execution id must be non-empty")
        if self.event_type == START_EVENT and self.output is not None:
            raise ValueError("START events carry no output vector")

    @property
    def is_start(self) -> bool:
        """Whether this is a START event."""
        return self.event_type == START_EVENT

    @property
    def is_end(self) -> bool:
        """Whether this is an END event."""
        return self.event_type == END_EVENT

    def shifted(self, delta: float) -> "EventRecord":
        """Return a copy with the timestamp moved by ``delta``."""
        return EventRecord(
            timestamp=self.timestamp + delta,
            execution_id=self.execution_id,
            activity=self.activity,
            event_type=self.event_type,
            output=self.output,
        )


def record_unchecked(
    timestamp: float,
    execution_id: str,
    activity: str,
    event_type: str,
    output: Optional[Tuple[float, ...]],
) -> EventRecord:
    """Build an :class:`EventRecord` without constructor validation.

    Batch decoders (``parse_batch`` in the codecs) validate fields while
    scanning a block and then call this to skip the frozen-dataclass
    ``__init__``/``__post_init__`` machinery, which dominates per-record
    decode cost.  Callers MUST have established the ``__post_init__``
    invariants: ``event_type`` in ``{START, END}``, non-empty
    ``activity``/``execution_id``, and ``output is None`` for START.
    """
    record = _NEW_RECORD(EventRecord)
    record.__dict__.update(
        timestamp=timestamp,
        execution_id=execution_id,
        activity=activity,
        event_type=event_type,
        output=output,
    )
    return record


_NEW_RECORD = EventRecord.__new__


def start_event(
    execution_id: str, activity: str, timestamp: float
) -> EventRecord:
    """Construct a START record."""
    return EventRecord(
        timestamp=timestamp,
        execution_id=execution_id,
        activity=activity,
        event_type=START_EVENT,
    )


def end_event(
    execution_id: str,
    activity: str,
    timestamp: float,
    output: Optional[Tuple[float, ...]] = None,
) -> EventRecord:
    """Construct an END record."""
    return EventRecord(
        timestamp=timestamp,
        execution_id=execution_id,
        activity=activity,
        event_type=END_EVENT,
        output=output,
    )
