"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are split
along the package's major seams (graphs, process models, logs, the workflow
engine, and the miners) so that tests and downstream code can assert on the
precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for errors raised by :mod:`repro.graphs`."""


class NodeNotFoundError(GraphError, KeyError):
    """An operation referenced a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An operation referenced an edge that is not in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """A node was added twice where duplicates are not permitted."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is already in the graph")
        self.node = node


class CycleError(GraphError, ValueError):
    """An algorithm that requires an acyclic graph was given a cyclic one.

    The offending cycle (a list of nodes, when available) is stored in
    :attr:`cycle`.
    """

    def __init__(self, message: str, cycle: list | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle if cycle is not None else []


class ModelError(ReproError):
    """Base class for errors raised by :mod:`repro.model`."""


class InvalidProcessError(ModelError, ValueError):
    """A process model failed structural validation.

    Carries the list of human-readable violation strings in
    :attr:`violations`.
    """

    def __init__(self, violations: list) -> None:
        summary = "; ".join(str(v) for v in violations) or "invalid process"
        super().__init__(summary)
        self.violations = list(violations)


class ConditionError(ModelError, ValueError):
    """An edge condition expression is malformed or cannot be evaluated."""


class LogError(ReproError):
    """Base class for errors raised by :mod:`repro.logs`."""


class LogFormatError(LogError, ValueError):
    """A serialized log line or file does not match the expected format.

    ``line_number`` is 1-based when the error arises from parsing a file.
    """

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class MalformedExecutionError(LogError, ValueError):
    """An execution trace violates basic event-structure invariants.

    Raised, for example, when an END event has no matching START, or when a
    trace is empty where a non-empty one is required.
    """


class ResourceLimitError(LogError, RuntimeError):
    """Ingesting a log exceeded a configured resource guard.

    Raised *before* the offending record is admitted, so an adversarial or
    runaway log aborts early instead of exhausting memory.  ``limit`` names
    the guard (``"max_executions"``, ``"max_events_per_execution"``, or
    ``"max_activities"``) and ``bound`` its configured value.
    ``line_number`` (1-based, when known) locates the record that tripped
    the guard, so batch ingestion can restore exact line accounting.
    """

    def __init__(
        self,
        limit: str,
        bound: int,
        detail: str = "",
        line_number: int | None = None,
    ) -> None:
        message = f"resource limit {limit}={bound} exceeded"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.limit = limit
        self.bound = bound
        self.line_number = line_number


class EngineError(ReproError):
    """Base class for errors raised by :mod:`repro.engine`."""


class DeadlockError(EngineError, RuntimeError):
    """A simulated process execution stopped before reaching the sink."""

    def __init__(self, message: str, pending: list | None = None) -> None:
        super().__init__(message)
        self.pending = pending if pending is not None else []


class MiningError(ReproError):
    """Base class for errors raised by :mod:`repro.core`."""


class EmptyLogError(MiningError, ValueError):
    """A miner was given a log with no executions."""


class JournalError(ReproError):
    """A write-ahead journal segment is unreadable or corrupt beyond
    the tolerated torn tail (see :mod:`repro.resilience.journal`)."""


class CheckpointError(MiningError, ValueError):
    """An incremental-miner checkpoint file is missing, corrupt, or of an
    incompatible version."""


class NotConformalError(MiningError, AssertionError):
    """A conformance check failed.

    Carries the list of violation strings in :attr:`violations`.
    """

    def __init__(self, violations: list) -> None:
        summary = "; ".join(str(v) for v in violations) or "not conformal"
        super().__init__(summary)
        self.violations = list(violations)


class KernelUnavailableError(ReproError, ValueError):
    """A requested mining kernel cannot be used.

    Raised when ``--kernel`` / ``REPRO_KERNEL`` names an unknown kernel,
    or names the optional ``numpy`` kernel in an environment where numpy
    is not installed (numpy is never a hard dependency).
    """


class ClassifierError(ReproError):
    """Base class for errors raised by :mod:`repro.classifier`."""


class TrainingDataError(ClassifierError, ValueError):
    """The training data for a classifier is empty or inconsistent."""
