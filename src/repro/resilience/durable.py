"""Durable file primitives: CRC32C and torn-write-proof writes.

Every persistent artifact the pipeline emits (checkpoints, mining
states, quarantine dead-letter files, metrics manifests, benchmark
reports) must survive the classic crash model: the process can be
SIGKILLed between any two syscalls, and an unsynced write can be torn
at an arbitrary byte boundary.  Two primitives cover it:

* :func:`crc32c` — the Castagnoli CRC (the checksum used by iSCSI,
  ext4 and most journaled stores), implemented dependency-free over a
  precomputed table.  All framing in :mod:`repro.resilience.journal`
  and the checkpoint integrity envelope use it.
* :func:`durable_write` — the write-temp-sibling / fsync-file /
  ``os.replace`` / fsync-parent-directory sequence.  After it returns,
  the data is on disk under ``path``; if the process dies at any prior
  point, ``path`` still holds its previous content (or is still
  absent) — never a torn mixture.

Both are choke points for :mod:`repro.resilience.faults`, so the
fault-injection harness can tear, corrupt or kill at exactly these
boundaries.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import IO, Iterator, Union

from repro.resilience.faults import InjectedTear, hard_kill, maybe_fault

PathOrStr = Union[str, Path]

# Session directory layout components.  Canonical home is here (the
# lowest layer every persistence module already imports) so that
# higher layers — ``repro.core.state``'s ``.prev`` fallback probe,
# ``repro.resilience.session``'s checkpoint/journal paths — share one
# definition without an import cycle.  ``repro.resilience.session``
# re-exports them under the same names.
CHECKPOINT_NAME = "checkpoint.json"
PREVIOUS_SUFFIX = ".prev"
WAL_DIRECTORY = "wal"

_CRC32C_POLY = 0x82F63B78


def _build_table() -> tuple:
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ (_CRC32C_POLY if crc & 1 else 0)
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _build_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """The CRC32C (Castagnoli) checksum of ``data``.

    ``crc`` continues a running checksum (pass a previous return
    value), mirroring :func:`zlib.crc32`'s calling convention.

    Examples
    --------
    >>> hex(crc32c(b"123456789"))
    '0xe3069283'
    >>> crc32c(b"")
    0
    """
    crc = ~crc & 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return ~crc & 0xFFFFFFFF


def fsync_directory(directory: PathOrStr) -> None:
    """fsync a directory so a rename inside it survives a crash.

    Platforms whose directory handles cannot be fsynced (or sandboxes
    that refuse to open directories) are tolerated silently — the
    rename itself is still atomic there.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_write(
    path: PathOrStr,
    data: Union[bytes, str],
    fsync: bool = True,
) -> None:
    """Write ``data`` to ``path`` so a crash never leaves a torn file.

    The sequence is: write a temporary sibling, flush + fsync it, move
    it into place with :func:`os.replace`, then fsync the parent
    directory so the rename itself is durable.  Readers therefore see
    either the old content or the new content, never a prefix.

    ``fsync=False`` skips both fsyncs (atomicity without durability)
    for high-churn artifacts where the journal already provides
    durability.

    Fault-injection choke point: ``durable.write`` (the whole payload,
    before the temporary file is written).
    """
    path = Path(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    parent = path.parent if str(path.parent) else Path(".")
    try:
        data = maybe_fault("durable.write", payload=data)
    except InjectedTear as tear:
        # Power loss mid-write: the temporary sibling is torn, the
        # target is untouched — exactly what atomic replace protects.
        fd, tmp_name = tempfile.mkstemp(
            dir=parent, prefix=path.name + ".", suffix=".tmp"
        )
        with os.fdopen(fd, "wb") as handle:
            handle.write(tear.partial)
            handle.flush()
            os.fsync(handle.fileno())
        hard_kill()
    fd, tmp_name = tempfile.mkstemp(
        dir=parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(parent)


@contextlib.contextmanager
def durable_stream_writer(
    path: PathOrStr,
    fsync: bool = True,
    encoding: str = "utf-8",
) -> Iterator[IO[str]]:
    """A text handle that becomes ``path`` atomically on clean exit.

    The streaming sibling of :func:`durable_write`: callers write
    record-by-record (no whole-payload buffer), and on normal exit the
    handle is flushed, fsynced, renamed over ``path`` with
    :func:`os.replace`, and the parent directory fsynced.  If the body
    raises — or the process dies mid-stream — ``path`` keeps its
    previous content and only an orphan ``*.tmp`` sibling remains.

    ``fsync=False`` keeps the atomic replace but skips both fsyncs,
    for large exports where the caller explicitly trades durability
    for throughput.
    """
    path = Path(path)
    parent = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(parent)
