"""Durable streaming-mining session: journal + checkpoint + replay.

:class:`DurableSession` packages the durability contract for one
streaming mine (CLI ``mine --stream --journal`` or API callers):

* every accepted execution is appended to the write-ahead journal
  **before** it is folded into the :class:`~repro.core.state.
  MiningState` (write-ahead invariant);
* every ``checkpoint_every`` folded executions the state is written as
  a hardened v3 checkpoint (CRC32C integrity envelope, previous
  checkpoint kept as a ``.prev`` fallback) carrying the journal
  sequence number it covers, and journal segments no recovery path can
  need anymore are pruned;
* :meth:`DurableSession.recover` rebuilds the exact pre-crash state:
  last good checkpoint (falling back to ``.prev`` on corruption) plus
  a replay of the journal tail, tolerating a torn final record.

The recovered state covers journal sequences ``1..covered``; because
sequence numbers correspond 1:1 with accepted executions in ingest
order, ``covered`` is exactly how many accepted executions a resumed
run must skip before folding continues.  The resulting final state is
byte-identical (canonical serialization) to an uninterrupted run — the
kill-and-resume suite asserts this under seeded fault plans.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.core.state import (
    MODE_CYCLIC,
    MODE_GENERAL,
    MiningState,
    load_state_with_fallback,
    save_state,
)
from repro.errors import CheckpointError
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.resilience.durable import (
    CHECKPOINT_NAME,
    PREVIOUS_SUFFIX,
    WAL_DIRECTORY,
    fsync_directory,
)
from repro.resilience.faults import POINT_CHECKPOINT_SAVE, POINT_FOLD_MERGE, maybe_fault
from repro.resilience.journal import Journal, replay_executions, scan_journal

if TYPE_CHECKING:  # pragma: no cover
    from repro.logs.execution import Execution

PathOrStr = Union[str, Path]

DEFAULT_CHECKPOINT_EVERY = 256


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`DurableSession.recover` found and rebuilt.

    ``covered`` is the journal sequence number the recovered state
    reaches — equivalently, the number of accepted executions a
    resumed ingest must skip.
    """

    resumed: bool
    checkpoint_seq: int
    replayed: int
    covered: int
    torn_tail: bool
    used_fallback: bool

    def summary(self) -> str:
        if not self.resumed:
            return "recovery: fresh session (no checkpoint, empty journal)"
        parts = [
            f"recovery: checkpoint through seq {self.checkpoint_seq}",
            f"replayed {self.replayed} journal record(s)",
            f"state covers {self.covered} execution(s)",
        ]
        if self.used_fallback:
            parts.append("used .prev checkpoint fallback")
        if self.torn_tail:
            parts.append("discarded a torn journal tail")
        return "; ".join(parts)


@dataclass(frozen=True)
class HandoffReceipt:
    """What :meth:`DurableSession.handoff` leaves for a successor.

    ``covered_seq == checkpoint_seq`` after a clean handoff: every
    folded execution is inside the final checkpoint, so a successor's
    :meth:`DurableSession.recover` replays nothing and reports
    ``covered`` equal to ``covered_seq``.
    """

    directory: Path
    checkpoint_path: Path
    covered_seq: int
    checkpoint_seq: int

    @property
    def clean(self) -> bool:
        """Whether the final checkpoint covers every folded execution."""
        return self.covered_seq == self.checkpoint_seq


class DurableSession:
    """Crash-safe accumulation of a streaming mine under ``directory``.

    Layout::

        directory/
          checkpoint.json        hardened v3 state envelope
          checkpoint.json.prev   previous good checkpoint (fallback)
          wal/wal-*.seg          write-ahead journal segments

    Parameters
    ----------
    directory:
        Session home; created if missing.
    labelled:
        Mining-state view, as in :class:`~repro.core.state.MiningState`.
    threshold:
        Recorded into checkpoints (Section 6 noise threshold).
    checkpoint_every:
        Fold count between automatic checkpoints (0 disables automatic
        checkpoints; :meth:`finalize` still writes one).
    sync:
        Passed to the journal; ``False`` trades the write-ahead fsync
        guarantee for speed.
    """

    def __init__(
        self,
        directory: PathOrStr,
        labelled: bool = False,
        threshold: int = 0,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        recorder: Recorder = NULL_RECORDER,
        sync: bool = True,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.labelled = bool(labelled)
        self.threshold = int(threshold)
        self.checkpoint_every = int(checkpoint_every)
        self.recorder = recorder
        self.checkpoint_path = self.directory / CHECKPOINT_NAME
        self.journal = Journal(self.directory / WAL_DIRECTORY, sync=sync)
        self._state = MiningState(labelled=self.labelled)
        #: Journal seq the in-memory state covers (== executions folded).
        self._covered = 0
        #: Journal seq covered by the newest on-disk checkpoint.
        self._checkpoint_seq = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> MiningState:
        """The live mining state (treat as read-only)."""
        return self._state

    @property
    def covered_seq(self) -> int:
        """Journal sequence number the in-memory state covers."""
        return self._covered

    @property
    def mode(self) -> str:
        return MODE_CYCLIC if self.labelled else MODE_GENERAL

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Load checkpoint + replay the journal tail into the state.

        Call exactly once, before any :meth:`fold`.  Raises
        :class:`~repro.errors.CheckpointError` when both the checkpoint
        and its ``.prev`` fallback are corrupt, and
        :class:`~repro.errors.JournalError` when the journal is corrupt
        beyond its tolerated torn tail.
        """
        if self._covered:
            raise RuntimeError("recover() must run before any fold()")
        used_fallback = False
        checkpoint_seq = 0
        prev_path = self.checkpoint_path.with_name(
            self.checkpoint_path.name + PREVIOUS_SUFFIX
        )
        state: Optional[MiningState] = None
        meta: dict = {}
        if self.checkpoint_path.exists() or prev_path.exists():
            state, meta, used_fallback = load_state_with_fallback(
                self.checkpoint_path, self.recorder
            )
        if state is not None:
            if state.labelled != self.labelled:
                raise CheckpointError(
                    f"checkpoint mode {meta.get('mode')!r} does not "
                    f"match this session's "
                    f"{'labelled' if self.labelled else 'plain'} state"
                )
            self._state = state
            checkpoint_seq = int(meta.get("journal_seq", 0))
        scan = scan_journal(self.journal.directory)
        if scan.torn_tail:
            self.recorder.count("repro_journal_torn_tail_total")
        replayed = 0
        for seq, execution in replay_executions(
            self.journal.directory, after_seq=checkpoint_seq
        ):
            self._state.update(execution)
            replayed += 1
        self._covered = max(checkpoint_seq, scan.last_seq)
        self._checkpoint_seq = checkpoint_seq
        # A checkpoint ahead of the journal (pruned/lost segments):
        # future appends must continue the checkpoint's numbering.
        self.journal.advance_to(checkpoint_seq)
        if replayed:
            self.recorder.count("repro_journal_replayed_total", replayed)
        return RecoveryReport(
            resumed=bool(state is not None or replayed),
            checkpoint_seq=checkpoint_seq,
            replayed=replayed,
            covered=self._covered,
            torn_tail=scan.torn_tail,
            used_fallback=used_fallback,
        )

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def fold(self, execution: "Execution") -> None:
        """Journal (if not already journaled) and fold one execution.

        When the streaming ingest layer already appended the execution
        (``iter_ingest_*(journal=session.journal)``), the journal's
        head is one past the state's coverage and the append is
        skipped — the write-ahead invariant holds either way.
        """
        if self.journal.last_seq <= self._covered:
            self.journal.append_execution(execution)
            self.recorder.count("repro_journal_records_total")
        maybe_fault(POINT_FOLD_MERGE)
        self._state.update(execution)
        self._covered += 1
        if (
            self.checkpoint_every
            and self._covered - self._checkpoint_seq
            >= self.checkpoint_every
        ):
            self.checkpoint()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Write the state as a hardened checkpoint; prune the journal.

        Sequence: freeze the journal segment (rotate), demote the
        current checkpoint to ``.prev``, durably write the new one
        (with the covered journal seq), then prune segments older than
        the *previous* checkpoint — the ``.prev`` fallback plus the
        retained tail can always rebuild the newest state.
        """
        maybe_fault(POINT_CHECKPOINT_SAVE)
        previous_seq = self._checkpoint_seq
        self.journal.rotate()
        if self.checkpoint_path.exists():
            os.replace(
                self.checkpoint_path,
                self.checkpoint_path.with_name(
                    self.checkpoint_path.name + PREVIOUS_SUFFIX
                ),
            )
            fsync_directory(self.directory)
        save_state(
            self._state,
            self.checkpoint_path,
            mode=self.mode,
            threshold=self.threshold,
            journal_seq=self._covered,
        )
        self.journal.prune(upto_seq=previous_seq)
        self._checkpoint_seq = self._covered
        self.recorder.count("repro_session_checkpoints_total")

    def finalize(self) -> MiningState:
        """Final checkpoint, close the journal, return the state."""
        if self._covered > self._checkpoint_seq or not (
            self.checkpoint_path.exists()
        ):
            if self._covered:
                self.checkpoint()
        self.journal.close()
        return self._state

    def handoff(self) -> "HandoffReceipt":
        """Finalize and hand the session's directory to a successor.

        The graceful-shutdown hook for long-lived owners (the service
        daemon): same final checkpoint + journal close as
        :meth:`finalize`, but what it returns is the contract a
        *successor process* needs to verify it resumed the same state —
        the checkpoint path and the covered journal sequence.  A new
        :class:`DurableSession` over the same directory whose
        :meth:`recover` reports ``covered`` equal to the receipt's
        picked up exactly where this one stopped.
        """
        self.finalize()
        return HandoffReceipt(
            directory=self.directory,
            checkpoint_path=self.checkpoint_path,
            covered_seq=self._covered,
            checkpoint_seq=self._checkpoint_seq,
        )

    def __enter__(self) -> "DurableSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.journal.close()
