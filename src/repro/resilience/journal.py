"""Write-ahead journal: CRC32C-framed, length-prefixed segment files.

The durability contract of the streaming miner (see
``docs/RELIABILITY.md``) is the classic one: every accepted execution
is appended to the journal *before* it is folded into the mining
state, and checkpoints record the journal sequence number they cover.
Recovery is therefore always ``last good checkpoint + journal tail
replay`` — no matter where the process was killed.

On-disk format
--------------
A journal is a directory of segment files named
``wal-<start_seq 16 digits>.seg``.  Each segment is an 8-byte magic
header (``RPWAL1\\n\\0``) followed by frames::

    u32 little-endian  payload length
    u32 little-endian  CRC32C(payload)
    payload bytes

Record sequence numbers are positional: the segment's filename names
the sequence number of its first record, and frames are consecutive —
so the journal never stores a sequence number redundantly, and a
segment is prunable by filename arithmetic alone.

Torn tails
----------
A crash can tear the final frame at any byte.  :func:`scan_journal`
stops at the first invalid frame; damage at the physical tail of the
*last* segment is a tolerated ``torn tail`` (the records before it
replay fine), while an invalid frame anywhere else — or in a
non-final segment — marks the journal ``corrupt`` (frames after it
are unreachable, which is real data loss and is reported as such by
``repro-miner verify-state``).  :class:`Journal` truncates a torn
tail away when it reopens a directory for append, so new records are
always framed at a good boundary.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple, Union

from repro.errors import JournalError
from repro.resilience.durable import crc32c, fsync_directory
from repro.resilience.faults import InjectedTear, hard_kill, maybe_fault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.logs)
    from repro.logs.execution import Execution

PathOrStr = Union[str, Path]

MAGIC = b"RPWAL1\n\0"
_HEADER = struct.Struct("<II")
#: Sanity bound on one frame's payload: a corrupt length prefix must
#: not make the reader allocate gigabytes.
MAX_PAYLOAD = 1 << 26

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"


def _segment_name(start_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{start_seq:016d}{SEGMENT_SUFFIX}"


def _segment_start(path: Path) -> Optional[int]:
    name = path.name
    if not (
        name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)
    ):
        return None
    digits = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


def list_segments(directory: PathOrStr) -> List[Tuple[int, Path]]:
    """The journal's segment files as sorted ``(start_seq, path)``."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    segments = []
    for path in directory.iterdir():
        start = _segment_start(path)
        if start is not None:
            segments.append((start, path))
    segments.sort()
    return segments


def pack_frame(payload: bytes) -> bytes:
    """Frame one payload: length prefix + CRC32C + payload."""
    if len(payload) > MAX_PAYLOAD:
        raise JournalError(
            f"journal payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame bound"
        )
    return _HEADER.pack(len(payload), crc32c(payload)) + payload


@dataclass
class SegmentScan:
    """One segment's scan result (see :func:`scan_segment`)."""

    path: Path
    start_seq: int
    payloads: List[bytes] = field(default_factory=list)
    #: Byte offset just past the last *valid* frame.
    good_end: int = len(MAGIC)
    #: Whether bytes past ``good_end`` exist but do not form a frame.
    damaged: bool = False
    detail: str = ""

    @property
    def record_count(self) -> int:
        return len(self.payloads)


def scan_segment(path: Path, start_seq: int) -> SegmentScan:
    """Read one segment, stopping at the first invalid frame.

    Never raises on damage: the scan reports how far the good prefix
    reaches (``good_end``) and whether trailing damage exists; the
    caller decides whether that is a tolerable torn tail (last
    segment) or corruption (earlier segment).  An unreadable file or a
    bad magic header raises :class:`~repro.errors.JournalError` — that
    is not a torn write, the segment never existed correctly.
    """
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal segment {path}: {exc}") from exc
    scan = SegmentScan(path=path, start_seq=start_seq)
    if len(data) < len(MAGIC) or not data.startswith(MAGIC):
        # A zero-length or short file can be a segment torn at creation;
        # anything else claiming the name is not a journal segment.
        if len(data) < len(MAGIC) and MAGIC.startswith(data):
            scan.good_end = 0
            scan.damaged = bool(data)
            scan.detail = "segment header torn"
            return scan
        raise JournalError(
            f"{path} is not a journal segment (bad magic header)"
        )
    offset = len(MAGIC)
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            scan.damaged = True
            scan.detail = "torn frame header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_PAYLOAD:
            scan.damaged = True
            scan.detail = f"implausible frame length {length}"
            break
        end = offset + _HEADER.size + length
        if end > total:
            scan.damaged = True
            scan.detail = "torn frame payload"
            break
        payload = data[offset + _HEADER.size : end]
        if crc32c(payload) != crc:
            scan.damaged = True
            scan.detail = "frame CRC mismatch"
            break
        scan.payloads.append(payload)
        scan.good_end = end
        offset = end
    return scan


@dataclass
class JournalScan:
    """Whole-journal scan result (see :func:`scan_journal`).

    ``records`` holds ``(seq, payload)`` for every valid frame in
    sequence order.  ``torn_tail`` flags tolerated damage at the very
    end; ``corrupt`` flags damage that cut off reachable records (an
    invalid frame before the journal's physical tail).
    """

    directory: Path
    records: List[Tuple[int, bytes]] = field(default_factory=list)
    segments: int = 0
    torn_tail: bool = False
    corrupt: bool = False
    detail: str = ""

    @property
    def last_seq(self) -> int:
        return self.records[-1][0] if self.records else 0


def scan_journal(directory: PathOrStr) -> JournalScan:
    """Scan every segment of the journal at ``directory``.

    Damage at the physical tail of the final segment is reported as a
    ``torn_tail`` (recovery proceeds on the good prefix); damage in any
    earlier segment marks the scan ``corrupt`` and stops it — frames
    past an invalid one have no recoverable boundaries.
    """
    directory = Path(directory)
    result = JournalScan(directory=directory)
    segments = list_segments(directory)
    result.segments = len(segments)
    for index, (start_seq, path) in enumerate(segments):
        scan = scan_segment(path, start_seq)
        expected = result.last_seq + 1 if result.records else None
        if expected is not None and start_seq != expected:
            result.corrupt = True
            result.detail = (
                f"segment {path.name} starts at seq {start_seq}, "
                f"expected {expected}"
            )
            break
        for position, payload in enumerate(scan.payloads):
            result.records.append((start_seq + position, payload))
        if scan.damaged:
            if index == len(segments) - 1:
                result.torn_tail = True
                result.detail = scan.detail
            else:
                result.corrupt = True
                result.detail = (
                    f"{scan.detail} in non-final segment {path.name}"
                )
                break
    return result


class Journal:
    """Append-only CRC-framed journal over a directory of segments.

    Parameters
    ----------
    directory:
        Created if missing.  Reopening an existing journal resumes
        appending after its last good record; a torn tail is truncated
        away first.
    sync:
        ``True`` (default) fsyncs after every appended record — the
        write-ahead guarantee.  ``False`` leaves flushing to the OS
        (tests and bulk imports).

    Fault-injection choke point: ``journal.append`` (the framed bytes,
    per record).
    """

    def __init__(self, directory: PathOrStr, sync: bool = True) -> None:
        self.directory = Path(directory)
        self.sync = bool(sync)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._segment_path: Optional[Path] = None
        self._last_seq = 0
        self._recover_open_position()

    # ------------------------------------------------------------------
    # Opening / recovery
    # ------------------------------------------------------------------
    def _recover_open_position(self) -> None:
        segments = list_segments(self.directory)
        if not segments:
            return
        last_seq = 0
        for index, (start_seq, path) in enumerate(segments):
            scan = scan_segment(path, start_seq)
            if scan.record_count:
                last_seq = start_seq + scan.record_count - 1
            if index == len(segments) - 1:
                if scan.damaged:
                    # Truncate the torn tail so appends reframe
                    # cleanly; in-place by design — an atomic rewrite
                    # of a multi-GB segment would defeat the journal.
                    with open(path, "r+b") as handle:  # devlint: ignore[RL101]
                        handle.truncate(max(scan.good_end, 0))
                if scan.good_end >= len(MAGIC):
                    self._segment_path = path
        self._last_seq = last_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the last durably appended record."""
        return self._last_seq

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _open_segment(self) -> None:
        path = self.directory / _segment_name(self._last_seq + 1)
        # Append-only WAL segment: durability comes from CRC framing
        # plus explicit fsync per append, not from atomic replace.
        self._handle = open(path, "ab")  # devlint: ignore[RL101]
        self._segment_path = path
        if self._handle.tell() == 0:
            self._handle.write(MAGIC)
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
                fsync_directory(self.directory)

    def append(self, payload: bytes) -> int:
        """Durably append one record; returns its sequence number.

        The record is on disk (modulo ``sync=False``) when this
        returns — the caller may then apply the operation it journals.
        """
        if self._handle is None:
            if self._segment_path is not None:
                # Reopening the framed WAL segment; see _open_segment.
                self._handle = open(self._segment_path, "ab")  # devlint: ignore[RL101]
            else:
                self._open_segment()
        frame = pack_frame(payload)
        try:
            frame = maybe_fault("journal.append", payload=frame)
        except InjectedTear as tear:
            self._handle.write(tear.partial)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            hard_kill()
        self._handle.write(frame)
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        self._last_seq += 1
        return self._last_seq

    def rotate(self) -> None:
        """Close the active segment; the next append starts a new one.

        Called at checkpoint boundaries so whole segments become
        prunable once a later checkpoint covers them.
        """
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._segment_path = None

    def advance_to(self, seq: int) -> None:
        """Skip the sequence counter forward to ``seq`` (never back).

        Recovery calls this when a checkpoint covers more than the
        journal holds (its segments were pruned or lost): future
        appends must continue the checkpoint's numbering, not the stale
        journal's.  Every existing segment is below ``seq`` — i.e.
        fully covered by that checkpoint — so they are pruned, keeping
        the scanner's cross-segment seq-continuity invariant intact.
        """
        if seq <= self._last_seq:
            return
        self.rotate()
        self._last_seq = seq
        self.prune(upto_seq=seq)

    def prune(self, upto_seq: int) -> int:
        """Delete segments whose every record is ``<= upto_seq``.

        The active segment is never deleted.  Returns the number of
        segments removed.  Safe to call at any time: a segment is only
        removable when the *next* segment's start proves its range.
        """
        segments = list_segments(self.directory)
        removed = 0
        for index, (start_seq, path) in enumerate(segments):
            if path == self._segment_path:
                continue
            if index + 1 < len(segments):
                covers_through = segments[index + 1][0] - 1
            else:
                covers_through = self._last_seq
            if covers_through <= upto_seq:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        if removed:
            fsync_directory(self.directory)
        return removed

    def close(self) -> None:
        """Close the active segment handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution payloads
    # ------------------------------------------------------------------
    def append_execution(self, execution: "Execution") -> int:
        """Append one accepted execution as a JSON payload record."""
        return self.append(encode_execution(execution))


def encode_execution(execution: "Execution") -> bytes:
    """One execution as a compact, deterministic JSON payload."""
    records = [
        [
            record.timestamp,
            record.activity,
            record.event_type,
            list(record.output) if record.output is not None else None,
        ]
        for record in execution.records
    ]
    return json.dumps(
        {"id": execution.execution_id, "records": records},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")


def decode_execution(payload: bytes) -> "Execution":
    """Rebuild an :class:`~repro.logs.execution.Execution` payload."""
    from repro.logs.events import EventRecord
    from repro.logs.execution import Execution

    try:
        body = json.loads(payload.decode("utf-8"))
        eid = str(body["id"])
        records = [
            EventRecord(
                timestamp=float(timestamp),
                execution_id=eid,
                activity=str(activity),
                event_type=str(event_type),
                output=tuple(output) if output is not None else None,
            )
            for timestamp, activity, event_type, output in body["records"]
        ]
        return Execution(eid, records)
    except (ValueError, KeyError, TypeError) as exc:
        raise JournalError(
            f"journal record is not a valid execution payload: {exc}"
        ) from exc


def replay_executions(
    directory: PathOrStr, after_seq: int = 0
) -> Iterator[Tuple[int, "Execution"]]:
    """Yield ``(seq, execution)`` for journal records past ``after_seq``.

    Raises :class:`~repro.errors.JournalError` when the journal is
    corrupt (damage before its tail); a torn tail is silently tolerated
    — the callers' contract is prefix recovery.
    """
    scan = scan_journal(directory)
    if scan.corrupt:
        raise JournalError(
            f"journal at {directory} is corrupt: {scan.detail}"
        )
    for seq, payload in scan.records:
        if seq > after_seq:
            yield seq, decode_execution(payload)
