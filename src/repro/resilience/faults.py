"""Deterministic fault injection for the durability test harness.

A :class:`FaultPlan` is a seedable, JSON-serializable description of
*which* fault fires *where* and *when*: each :class:`FaultSpec` names a
documented choke point (see the catalogue below), a fault kind, and
the 1-based hit index at which it triggers.  The plan is installed
into the process — programmatically via :func:`install` or ambiently
through the ``REPRO_FAULT_PLAN`` environment variable (a path to a
plan JSON file, honored by worker subprocesses too) — and the
instrumented code consults :func:`maybe_fault` at each choke point.
With no plan installed the choke points are a module-global ``None``
check, so production runs pay nothing.

Fault kinds
-----------
``io-error``
    Raise :class:`InjectedIOError` (an ``OSError``) at the choke point.
``torn-write``
    Raise :class:`InjectedTear` carrying a seeded prefix of the payload;
    write sites respond by writing the prefix, syncing it to disk, and
    SIGKILLing the process — a faithful power-loss-mid-write.
``corrupt-bytes``
    Return the payload with one seeded byte flipped (detected later by
    CRC framing, never at write time).
``sigkill``
    SIGKILL the current process at the choke point.
``worker-crash``
    ``os._exit(70)`` — kills a pool worker without Python teardown.
``worker-hang``
    Sleep for ``arg`` seconds (default 3600) — drives the supervised
    fold's timeout path.
``clock-skew``
    Not tied to a hit count: shifts :func:`now` by ``arg`` seconds for
    the life of the plan (checkpoint-age style time reads).

Choke point catalogue
---------------------
``durable.write``     every :func:`~repro.resilience.durable.durable_write`
``journal.append``    every journal record append
``checkpoint.save``   every durable-session checkpoint
``ingest.accept``     every accepted execution yielded by streaming ingest
``fold.merge``        every execution/chunk folded into the mining state
``fold.chunk``        inside a parallel fold worker, per chunk
``clock``             the skewable clock (``clock-skew`` only)
"""

from __future__ import annotations

import json
import os
import random
import signal
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

PathOrStr = Union[str, Path]

KIND_IO_ERROR = "io-error"
KIND_TORN_WRITE = "torn-write"
KIND_CORRUPT_BYTES = "corrupt-bytes"
KIND_SIGKILL = "sigkill"
KIND_WORKER_CRASH = "worker-crash"
KIND_WORKER_HANG = "worker-hang"
KIND_CLOCK_SKEW = "clock-skew"

FAULT_KINDS = (
    KIND_IO_ERROR,
    KIND_TORN_WRITE,
    KIND_CORRUPT_BYTES,
    KIND_SIGKILL,
    KIND_WORKER_CRASH,
    KIND_WORKER_HANG,
    KIND_CLOCK_SKEW,
)

POINT_DURABLE_WRITE = "durable.write"
POINT_JOURNAL_APPEND = "journal.append"
POINT_CHECKPOINT_SAVE = "checkpoint.save"
POINT_INGEST_ACCEPT = "ingest.accept"
POINT_FOLD_MERGE = "fold.merge"
POINT_FOLD_CHUNK = "fold.chunk"
POINT_CLOCK = "clock"

CHOKE_POINTS = (
    POINT_DURABLE_WRITE,
    POINT_JOURNAL_APPEND,
    POINT_CHECKPOINT_SAVE,
    POINT_INGEST_ACCEPT,
    POINT_FOLD_MERGE,
    POINT_FOLD_CHUNK,
    POINT_CLOCK,
)

PLAN_ENV = "REPRO_FAULT_PLAN"

#: Points the seeded kill-plan generator draws from: the parent-process
#: choke points a streaming mine passes through, so a generated plan
#: SIGKILLs somewhere inside the durability-critical path.
KILL_POINTS = (
    POINT_INGEST_ACCEPT,
    POINT_JOURNAL_APPEND,
    POINT_FOLD_MERGE,
    POINT_CHECKPOINT_SAVE,
    POINT_DURABLE_WRITE,
)


class InjectedIOError(OSError):
    """The ``io-error`` fault: an OSError raised at a choke point."""


class InjectedTear(BaseException):
    """The ``torn-write`` fault: carries the prefix to leave on disk.

    Derives from ``BaseException`` so ordinary ``except Exception``
    recovery code cannot swallow it — only the write site that asked
    for the payload handles it (write the prefix, sync, die).
    """

    def __init__(self, partial: bytes) -> None:
        super().__init__(f"injected torn write ({len(partial)} bytes kept)")
        self.partial = partial


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: ``kind`` fires at hit ``at`` of ``point``.

    ``count`` extends the fault over that many consecutive hits;
    ``arg`` is kind-specific (hang seconds, clock-skew seconds).
    """

    point: str
    kind: str
    at: int = 1
    count: int = 1
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 1 or self.count < 1:
            raise ValueError("fault at/count must be >= 1")

    def to_json(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "at": self.at,
            "count": self.count,
            "arg": self.arg,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FaultSpec":
        return cls(
            point=str(payload["point"]),
            kind=str(payload["kind"]),
            at=int(payload.get("at", 1)),
            count=int(payload.get("count", 1)),
            arg=float(payload.get("arg", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seedable set of :class:`FaultSpec` entries.

    ``seed`` drives every pseudo-random choice the injector makes
    (torn-write split point, corrupt-bytes position), so one plan
    always produces the same on-disk damage.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.to_json() for spec in self.faults],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=tuple(
                FaultSpec.from_json(entry)
                for entry in payload.get("faults", ())
            ),
        )

    def save(self, path: PathOrStr) -> None:
        # Imported lazily: durable imports this module at load time.
        from repro.resilience.durable import durable_write

        durable_write(
            Path(path), json.dumps(self.to_json(), indent=2) + "\n"
        )

    @classmethod
    def load(cls, path: PathOrStr) -> "FaultPlan":
        return cls.from_json(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    @classmethod
    def seeded_kill(
        cls,
        seed: int,
        max_per_record_hits: int = 120,
        max_checkpoint_hits: int = 4,
    ) -> "FaultPlan":
        """A deterministic one-SIGKILL plan derived from ``seed``.

        Picks one parent-process choke point and a hit index within a
        plausible range for a small streaming run; the kill-and-resume
        suite sweeps seeds to cover the whole durability path.  Plans
        whose hit index exceeds what a given run reaches simply never
        fire — the run completes, which the suite treats as one more
        (trivially consistent) sample.
        """
        rng = random.Random(seed)
        point = rng.choice(KILL_POINTS)
        cap = (
            max_checkpoint_hits
            if point in (POINT_CHECKPOINT_SAVE, POINT_DURABLE_WRITE)
            else max_per_record_hits
        )
        return cls(
            seed=seed,
            faults=(FaultSpec(point=point, kind=KIND_SIGKILL, at=rng.randint(1, cap)),),
        )


def hard_kill() -> None:
    """SIGKILL the current process (no Python teardown, no flushing)."""
    sys.stdout.flush()
    sys.stderr.flush()
    os.kill(os.getpid(), signal.SIGKILL)
    # SIGKILL cannot be handled; if we are somehow still alive (e.g. a
    # test harness intercepting os.kill), fall through loudly.
    raise RuntimeError("survived an injected SIGKILL")  # pragma: no cover


@dataclass
class FaultInjector:
    """Executes a :class:`FaultPlan` against the choke points.

    Tracks per-point hit counts and a log of fired faults, both useful
    to tests asserting that a plan did what it said.
    """

    plan: FaultPlan
    hits: Counter = field(default_factory=Counter)
    fired: List[Tuple[str, str, int]] = field(default_factory=list)

    def _rng(self, point: str, hit: int) -> random.Random:
        return random.Random(f"{self.plan.seed}:{point}:{hit}")

    def clock_skew(self) -> float:
        """Seconds of skew the plan applies to :func:`now`."""
        return sum(
            spec.arg
            for spec in self.plan.faults
            if spec.kind == KIND_CLOCK_SKEW
        )

    def fire(
        self, point: str, payload: Optional[bytes] = None
    ) -> Optional[bytes]:
        """Register one hit of ``point`` and execute any planned fault.

        Returns the (possibly mutated) payload.  Raises
        :class:`InjectedIOError` or :class:`InjectedTear`, or kills the
        process, according to the plan.
        """
        self.hits[point] += 1
        hit = self.hits[point]
        for spec in self.plan.faults:
            if spec.point != point or spec.kind == KIND_CLOCK_SKEW:
                continue
            if not (spec.at <= hit < spec.at + spec.count):
                continue
            self.fired.append((point, spec.kind, hit))
            payload = self._execute(spec, point, hit, payload)
        return payload

    def _execute(
        self,
        spec: FaultSpec,
        point: str,
        hit: int,
        payload: Optional[bytes],
    ) -> Optional[bytes]:
        if spec.kind == KIND_IO_ERROR:
            raise InjectedIOError(
                f"injected io-error at {point} (hit {hit})"
            )
        if spec.kind == KIND_SIGKILL:
            hard_kill()
        if spec.kind == KIND_WORKER_CRASH:
            os._exit(70)
        if spec.kind == KIND_WORKER_HANG:
            time.sleep(spec.arg or 3600.0)
            return payload
        if spec.kind == KIND_TORN_WRITE:
            data = payload if payload is not None else b""
            if len(data) < 2:
                hard_kill()
            split = self._rng(point, hit).randrange(1, len(data))
            raise InjectedTear(data[:split])
        if spec.kind == KIND_CORRUPT_BYTES:
            if not payload:
                return payload
            position = self._rng(point, hit).randrange(len(payload))
            corrupted = bytearray(payload)
            corrupted[position] ^= 0xFF
            return bytes(corrupted)
        return payload  # pragma: no cover - exhaustive over FAULT_KINDS


_injector: Optional[FaultInjector] = None
_env_checked = False


def install(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` into this process; returns the live injector."""
    global _injector, _env_checked
    _injector = FaultInjector(plan)
    _env_checked = True
    return _injector


def uninstall() -> None:
    """Remove any installed plan (tests call this in teardown)."""
    global _injector, _env_checked
    _injector = None
    _env_checked = True


def get_injector() -> Optional[FaultInjector]:
    """The process's injector, loading ``REPRO_FAULT_PLAN`` lazily.

    The environment variable names a plan JSON file; it is read at most
    once per process, so pool workers (fork or spawn) inherit the plan
    with fresh per-process hit counts.
    """
    global _injector, _env_checked
    if _injector is None and not _env_checked:
        _env_checked = True
        path = os.environ.get(PLAN_ENV, "").strip()
        if path:
            _injector = FaultInjector(FaultPlan.load(path))
    return _injector


def maybe_fault(
    point: str, payload: Optional[bytes] = None
) -> Optional[bytes]:
    """Choke-point entry: a no-op unless a fault plan is installed."""
    injector = _injector if _env_checked else get_injector()
    if injector is None:
        return payload
    return injector.fire(point, payload)


def now() -> float:
    """``time.time()`` plus any planned clock skew.

    Durability-adjacent time reads (checkpoint age, journal mtimes in
    fsck reports) go through this so the ``clock-skew`` fault can test
    that recovery never *depends* on wall-clock monotonicity.
    """
    injector = _injector if _env_checked else get_injector()
    skew = injector.clock_skew() if injector is not None else 0.0
    return time.time() + skew
