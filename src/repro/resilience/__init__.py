"""Crash-safety layer: durable writes, WAL, fault injection, sessions.

See ``docs/RELIABILITY.md`` for the durability contract this package
implements and the recovery procedure it supports.
"""

from repro.errors import JournalError
from repro.resilience.durable import crc32c, durable_write, fsync_directory
from repro.resilience.faults import (
    CHOKE_POINTS,
    FAULT_KINDS,
    PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedIOError,
    InjectedTear,
    get_injector,
    hard_kill,
    install,
    maybe_fault,
    now,
    uninstall,
)
from repro.resilience.journal import (
    Journal,
    JournalScan,
    decode_execution,
    encode_execution,
    replay_executions,
    scan_journal,
    scan_segment,
)
# The session layer sits on top of repro.core.state, which itself uses
# the durable/fault primitives above — importing it eagerly here would
# close an import cycle, so its exports resolve lazily (PEP 562).
_SESSION_EXPORTS = (
    "DEFAULT_CHECKPOINT_EVERY",
    "DurableSession",
    "HandoffReceipt",
    "RecoveryReport",
)


def __getattr__(name: str) -> object:
    if name in _SESSION_EXPORTS:
        from repro.resilience import session

        return getattr(session, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "CHOKE_POINTS",
    "DEFAULT_CHECKPOINT_EVERY",
    "FAULT_KINDS",
    "PLAN_ENV",
    "DurableSession",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HandoffReceipt",
    "InjectedIOError",
    "InjectedTear",
    "Journal",
    "JournalError",
    "JournalScan",
    "RecoveryReport",
    "crc32c",
    "decode_execution",
    "durable_write",
    "encode_execution",
    "fsync_directory",
    "get_injector",
    "hard_kill",
    "install",
    "maybe_fault",
    "now",
    "replay_executions",
    "scan_journal",
    "scan_segment",
    "uninstall",
]
