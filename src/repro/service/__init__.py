"""Mining as a service: the asyncio multi-tenant daemon.

The batch pipeline (ingest → fold → finish) turned into a long-lived
HTTP/JSONL server, one durable mining session per process id:

* :mod:`repro.service.server` — the asyncio daemon (``repro-miner
  serve``): HTTP front-end, per-tenant ingest queues with 429
  backpressure, graceful checkpointing shutdown;
* :mod:`repro.service.registry` — tenants (ingest stream + durable
  session + model snapshot) and the multi-tenant registry;
* :mod:`repro.service.router` — the declarative endpoint table;
* :mod:`repro.service.wire` — renderers/codecs shared with the CLI, so
  HTTP responses are byte-identical to batch CLI output;
* :mod:`repro.service.client` — the stdlib test/CI harness client.

See ``docs/SERVICE.md`` for the endpoint contract, backpressure and
shutdown semantics.
"""

from repro.service.client import ClientResponse, ServiceClient
from repro.service.registry import (
    ModelSnapshot,
    ServiceError,
    Tenant,
    TenantConfig,
    TenantRegistry,
)
from repro.service.server import (
    Request,
    Response,
    ServiceApp,
    ServiceConfig,
    ServiceServer,
    serve,
)

__all__ = [
    "ClientResponse",
    "ModelSnapshot",
    "Request",
    "Response",
    "ServiceApp",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "Tenant",
    "TenantConfig",
    "TenantRegistry",
    "serve",
]
