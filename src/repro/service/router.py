"""URL routing for the service daemon.

A deliberately tiny, declarative router: the route table below is the
complete HTTP surface.  Paths are split on ``/`` and matched segment by
segment; a ``None`` segment in a pattern captures the (percent-decoded)
process id.  Resolution distinguishes *unknown path* (404) from *known
path, wrong method* (405 with an ``Allow`` header), which is the
difference a well-behaved client retries on.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple
from urllib.parse import unquote

#: (method, segment pattern, handler name).  ``None`` captures the
#: process id.  This tuple *is* the service's documented endpoint list.
ROUTES: Tuple[Tuple[str, Tuple[Optional[str], ...], str], ...] = (
    ("GET", ("healthz",), "healthz"),
    ("GET", ("metrics",), "metrics"),
    ("GET", ("v1", "tenants"), "tenants"),
    ("POST", ("v1", None, "events"), "events"),
    ("POST", ("v1", None, "flush"), "flush"),
    ("POST", ("v1", None, "lint"), "lint"),
    ("GET", ("v1", None, "model"), "model"),
    ("GET", ("v1", None, "state"), "state"),
)


class RouteMatch(NamedTuple):
    """A resolved route: the handler name and the captured process id."""

    handler: str
    process: Optional[str]


class RouteError(Exception):
    """Resolution failure carrying the HTTP status to answer with."""

    def __init__(self, status: int, message: str, allow: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.allow = allow


def split_path(path: str) -> List[str]:
    """Split a request path into percent-decoded, non-empty segments."""
    return [unquote(part) for part in path.split("/") if part]


def resolve(method: str, path: str) -> RouteMatch:
    """Resolve ``method path`` against :data:`ROUTES`.

    Raises :class:`RouteError` with status 404 for a path no route
    matches and 405 (with the allowed methods) for a known path
    requested with the wrong method.
    """
    segments = split_path(path)
    allowed: Dict[str, str] = {}
    for route_method, pattern, handler in ROUTES:
        if len(pattern) != len(segments):
            continue
        process: Optional[str] = None
        for expected, actual in zip(pattern, segments):
            if expected is None:
                process = actual
            elif expected != actual:
                break
        else:
            if route_method == method:
                return RouteMatch(handler=handler, process=process)
            allowed[route_method] = handler
    if allowed:
        allow = ", ".join(sorted(allowed))
        raise RouteError(
            405, f"method {method} not allowed; use {allow}", allow=allow
        )
    raise RouteError(404, f"no route for {path}")
