"""A stdlib HTTP client for the service daemon.

The test harness the CI service job (and the test suite) drives the
daemon with: thin, synchronous, ``http.client`` only.  One fresh
connection per request keeps the client free of keep-alive state — the
daemon's keep-alive path is exercised by the socket tests instead.

Helpers mirror the endpoint surface one-to-one and decode JSON bodies;
the byte-sensitive calls (``model_text``, ``state_bytes``) return the
raw payload untouched so parity assertions compare real wire bytes.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, NamedTuple, Optional, Tuple
from urllib.parse import quote

from repro.logs.jsonl import record_to_json
from repro.service import wire


class ServiceUnavailable(ConnectionError):
    """The daemon did not answer within the wait budget."""


class ClientResponse(NamedTuple):
    """One raw HTTP exchange result."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))


class ServiceClient:
    """Synchronous client against one daemon instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = wire.MEDIA_JSON,
    ) -> ClientResponse:
        """One HTTP exchange; raises ``OSError`` on transport failure."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": content_type} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            return ClientResponse(
                status=response.status,
                headers={
                    name.lower(): value
                    for name, value in response.getheaders()
                },
                body=payload,
            )
        finally:
            connection.close()

    @staticmethod
    def _process_path(process: str, leaf: str) -> str:
        return f"/v1/{quote(process, safe='')}/{leaf}"

    def wait_ready(self, budget: float = 10.0) -> dict:
        """Poll ``/healthz`` until the daemon answers, or raise."""
        deadline = time.monotonic() + budget
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                response = self.request("GET", "/healthz")
            except OSError as exc:
                last_error = exc
                time.sleep(0.05)
                continue
            if response.status == 200:
                return response.json()
            time.sleep(0.05)
        raise ServiceUnavailable(
            f"daemon at {self.host}:{self.port} not ready within "
            f"{budget}s (last error: {last_error})"
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> ClientResponse:
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        """The Prometheus exposition text."""
        response = self.request("GET", "/metrics")
        if response.status != 200:
            raise ServiceUnavailable(
                f"/metrics answered {response.status}"
            )
        return response.body.decode("utf-8")

    def tenants(self) -> dict:
        return self.request("GET", "/v1/tenants").json()

    def push_lines(
        self, process: str, lines: List[str]
    ) -> ClientResponse:
        """POST raw JSONL event lines for ``process``."""
        body = ("\n".join(lines) + "\n").encode("utf-8")
        return self.request(
            "POST",
            self._process_path(process, "events"),
            body=body,
            content_type="application/x-ndjson",
        )

    def push_records(
        self, process: str, records, chunk_size: int = 500
    ) -> List[ClientResponse]:
        """Serialize and push ``EventRecord``s in batches.

        A 429 (backpressure) batch is retried after the advertised
        ``Retry-After`` delay, which exercises the documented client
        contract.
        """
        lines = [
            record_to_json(record, process) for record in records
        ]
        responses = []
        for start in range(0, len(lines), chunk_size):
            chunk = lines[start : start + chunk_size]
            response = self.push_lines(process, chunk)
            while response.status == 429:
                retry_after = float(
                    response.headers.get("retry-after", "1")
                )
                time.sleep(min(retry_after, 2.0))
                response = self.push_lines(process, chunk)
            responses.append(response)
        return responses

    def push_log(
        self, process: Optional[str], log, chunk_size: int = 500
    ) -> Tuple[str, List[ClientResponse]]:
        """Push a whole :class:`~repro.logs.event_log.EventLog`.

        ``process`` defaults to the log's own process name.  Returns
        the process id used and the per-batch responses.
        """
        name = process or log.process_name or "unnamed"
        records = [
            record
            for execution in log
            for record in execution.records
        ]
        return name, self.push_records(
            name, records, chunk_size=chunk_size
        )

    def flush(self, process: str) -> dict:
        response = self.request(
            "POST", self._process_path(process, "flush")
        )
        if response.status != 200:
            raise ServiceUnavailable(
                f"flush answered {response.status}: "
                f"{response.body.decode('utf-8', 'replace').strip()}"
            )
        return response.json()

    def model_json(self, process: str) -> dict:
        return self.request(
            "GET", self._process_path(process, "model")
        ).json()

    def model_text(self, process: str, fmt: str = "edges") -> bytes:
        """The model in a CLI-parity text format, as raw bytes."""
        response = self.request(
            "GET",
            self._process_path(process, "model") + f"?format={fmt}",
        )
        if response.status != 200:
            raise ServiceUnavailable(
                f"model answered {response.status}"
            )
        return response.body

    def state_bytes(self, process: str) -> bytes:
        """The v3 state envelope, byte-identical to ``--state-out``."""
        response = self.request(
            "GET", self._process_path(process, "state")
        )
        if response.status != 200:
            raise ServiceUnavailable(
                f"state answered {response.status}"
            )
        return response.body

    def lint(
        self, process: str, config: Optional[dict] = None
    ) -> dict:
        body = (
            json.dumps(config).encode("utf-8") if config else None
        )
        return self.request(
            "POST", self._process_path(process, "lint"), body=body
        ).json()
