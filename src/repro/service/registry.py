"""The multi-tenant registry: one durable mining session per process.

A *tenant* is everything the daemon holds for one process id: a
:class:`~repro.logs.ingest.IngestStream` (the same policy/window
machinery the CLI streams through), a
:class:`~repro.resilience.session.DurableSession` (journal-before-fold,
``checkpoint_every`` rotation) and a cached :class:`ModelSnapshot` the
read endpoints serve from so a model fetch never waits on a fold.

Everything in this module is synchronous and loop-agnostic — the
asyncio layer in :mod:`repro.service.server` wraps tenants in queues
and worker tasks; tests drive them directly.

On disk, each tenant owns ``data_dir/<quoted-process-id>/`` (percent-
encoded so any process name maps to a safe directory name) with the
standard durable-session layout plus a ``dead-letter.jsonl`` quarantine
file.  A restarted daemon re-opens every tenant directory it finds and
recovers each session, so models survive restarts byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import quote, unquote

from repro.core.cyclic import merge_instances
from repro.core.miner import (
    ALGORITHM_AUTO,
    ALGORITHM_CYCLIC,
    ALGORITHM_GENERAL,
    MiningResult,
)
from repro.core.state import state_envelope
from repro.errors import ReproError
from repro.graphs.digraph import DiGraph
from repro.lint import LintConfig, LintReport, lint_model
from repro.logs.ingest import (
    DEFAULT_STREAM_WINDOW,
    POLICY_SKIP,
    IngestLimits,
    IngestReport,
    IngestStream,
    Quarantine,
)
from repro.errors import LogFormatError, ResourceLimitError
from repro.logs.execution import Execution
from repro.logs.jsonl import parse_batch, record_from_json
from repro.obs import NULL_RECORDER
from repro.resilience.session import (
    DEFAULT_CHECKPOINT_EVERY,
    DurableSession,
    HandoffReceipt,
    RecoveryReport,
)

#: Algorithms a tenant may be configured with.  ``special-dag`` needs
#: the materialized log (Algorithm 1's precondition), so — exactly like
#: ``mine --stream`` — a long-lived service cannot run it.
TENANT_ALGORITHMS = (ALGORITHM_AUTO, ALGORITHM_GENERAL, ALGORITHM_CYCLIC)

#: The per-tenant dead-letter file inside the tenant directory.
DEAD_LETTER_NAME = "dead-letter.jsonl"

_PROCESS_ID_LIMIT = 200


class ServiceError(ReproError):
    """A request-level service failure carrying its HTTP status."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class TenantConfig:
    """Mining/ingest knobs shared by every tenant of one daemon."""

    policy: str = POLICY_SKIP
    algorithm: str = ALGORITHM_AUTO
    threshold: int = 0
    window: int = DEFAULT_STREAM_WINDOW
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    #: Refresh the cached model once this many folds accumulate past it.
    snapshot_every: int = 64
    kernel: Optional[str] = None
    limits: IngestLimits = field(default_factory=IngestLimits)

    def __post_init__(self) -> None:
        if self.algorithm not in TENANT_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {TENANT_ALGORITHMS}, "
                f"got {self.algorithm!r}"
            )
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")

    @property
    def labelled(self) -> bool:
        """Whether tenants fold the labelled (cycle-aware) view."""
        return self.algorithm != ALGORITHM_GENERAL


@dataclass(frozen=True)
class ModelSnapshot:
    """One finalized view of a tenant's model, served lock-free.

    ``seq`` is the journal sequence (== folded executions) the snapshot
    covers; ``envelope`` is the canonical v3 state envelope for the
    *resolved* state — the same bytes ``mine --stream --state-out``
    writes for this log, which is what makes ``GET /v1/{p}/state``
    byte-comparable to the CLI.
    """

    seq: int
    algorithm: str
    graph: DiGraph
    executions: int
    variants: int
    envelope: str
    source: Optional[str]
    sink: Optional[str]


class Tenant:
    """One process id's live ingest + durable mining session."""

    def __init__(
        self,
        process: str,
        directory: Path,
        config: TenantConfig,
        recorder=NULL_RECORDER,
    ) -> None:
        self.process = process
        self.directory = Path(directory)
        self.config = config
        self.recorder = recorder
        self.session = DurableSession(
            self.directory,
            labelled=config.labelled,
            threshold=config.threshold,
            checkpoint_every=config.checkpoint_every,
            recorder=recorder,
        )
        self.quarantine = Quarantine(self.directory / DEAD_LETTER_NAME)
        self.report = IngestReport(policy=config.policy)
        # The URL names the process: the first record does not get to
        # claim the name, and records for other processes quarantine as
        # mixed-process lines (or raise, under strict).
        self.report.process_name = process
        self.stream = IngestStream(
            record_from_json,
            policy=config.policy,
            limits=config.limits,
            quarantine=self.quarantine,
            report=self.report,
            window=config.window,
            parse_batch=parse_batch,
        )
        self._line_number = 0
        self._firsts: set = set()
        self._lasts: set = set()
        self._snapshot: Optional[ModelSnapshot] = None
        self.closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Recover the durable session (call once, right after init)."""
        recovery = self.session.recover()
        if recovery.covered:
            self.refresh_snapshot()
        return recovery

    def close(self) -> HandoffReceipt:
        """Graceful shutdown: flush open windows, checkpoint, hand off.

        Open execution windows are finalized and folded first — the
        same convergence a flush performs — so the final checkpoint
        covers every record the daemon accepted, and a successor
        daemon's :meth:`recover` resumes the exact same state.
        """
        self.fold(self.stream.flush())
        receipt = self.session.handoff()
        self.quarantine.close()
        self.closed = True
        return receipt

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, lines: List[str]) -> int:
        """Push raw JSONL event lines; fold whatever finalizes.

        Returns the number of executions folded.  Under ``strict`` a
        bad line raises (the caller reports it); under ``skip`` /
        ``repair`` problems are quarantined into the tenant's
        dead-letter file and counted on :attr:`report`.

        The batch goes through :meth:`IngestStream.push_batch` in one
        call, so decode and window bookkeeping amortize per request
        instead of per line.  A strict-policy error mid-batch leaves
        the tenant exactly where per-line pushing would have: the
        executions finalized before the bad line are folded, the line
        counter rests on the offending line, and nothing after it was
        consumed.
        """
        if not lines:
            return 0
        start = self._line_number + 1
        out: List[Execution] = []
        try:
            self.stream.push_batch(start, lines, out=out)
        except (LogFormatError, ResourceLimitError) as exc:
            line_number = getattr(exc, "line_number", None)
            self._line_number = (
                line_number
                if line_number is not None
                else start + len(lines) - 1
            )
            self.fold(out)
            raise
        self._line_number = start + len(lines) - 1
        self.recorder.observe(
            "repro_ingest_batch_records",
            float(len(lines)),
            labels={"source": "service"},
        )
        return self.fold(out)

    def fold(self, executions) -> int:
        """Fold finalized executions into the durable session."""
        for execution in executions:
            if len(execution):
                self._firsts.add(execution.first_activity)
                self._lasts.add(execution.last_activity)
            self.session.fold(execution)
        return len(executions)

    def flush(self) -> int:
        """Finalize every open execution window and refresh the model."""
        folded = self.fold(self.stream.flush())
        self.refresh_snapshot()
        return folded

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether folds have accumulated past the cached snapshot."""
        covered = self.session.covered_seq
        if not covered:
            return False
        return self._snapshot is None or self._snapshot.seq != covered

    def maybe_refresh(self) -> None:
        """Refresh the snapshot if ``snapshot_every`` folds went by."""
        covered = self.session.covered_seq
        if not covered:
            return
        if (
            self._snapshot is None
            or covered - self._snapshot.seq >= self.config.snapshot_every
        ):
            self.refresh_snapshot()

    def refresh_snapshot(self) -> Optional[ModelSnapshot]:
        """Finalize the current state into a fresh :class:`ModelSnapshot`.

        Resolution mirrors ``mine --stream`` exactly: ``auto`` folds the
        labelled view and picks ``cyclic`` when repetition was observed,
        otherwise projects onto the plain state and finishes as
        ``general-dag`` — so the snapshot's graph and envelope match the
        batch CLI's output for the same records.
        """
        state = self.session.state
        if state.execution_count == 0:
            self._snapshot = None
            return None
        labelled = self.session.labelled
        if self.config.algorithm == ALGORITHM_CYCLIC or (
            labelled and state.has_repetition()
        ):
            algorithm = ALGORITHM_CYCLIC
            resolved = state
        else:
            algorithm = ALGORITHM_GENERAL
            resolved = state.to_plain() if labelled else state
        graph = resolved.finish(
            threshold=self.config.threshold,
            kernel=self.config.kernel,
        )
        if algorithm == ALGORITHM_CYCLIC:
            graph = merge_instances(graph)
        source = (
            next(iter(self._firsts)) if len(self._firsts) == 1 else None
        )
        sink = next(iter(self._lasts)) if len(self._lasts) == 1 else None
        self._snapshot = ModelSnapshot(
            seq=self.session.covered_seq,
            algorithm=algorithm,
            graph=graph,
            executions=resolved.execution_count,
            variants=resolved.variant_count,
            envelope=state_envelope(
                resolved, threshold=self.config.threshold
            ),
            source=source,
            sink=sink,
        )
        self.recorder.count("repro_service_snapshots_total")
        return self._snapshot

    def snapshot(self) -> Optional[ModelSnapshot]:
        """The cached model view, materializing the first one lazily."""
        if self._snapshot is None and self.session.covered_seq:
            self.refresh_snapshot()
        return self._snapshot

    def fresh_snapshot(self) -> Optional[ModelSnapshot]:
        """A snapshot guaranteed to cover every fold so far."""
        if self.stale:
            self.refresh_snapshot()
        return self.snapshot()

    # ------------------------------------------------------------------
    # Lint
    # ------------------------------------------------------------------
    def lint(self, config: LintConfig) -> LintReport:
        """Lint the snapshot's model (the PM1xx/PM2xx structural rules).

        The log is never materialized server-side (same restriction as
        ``mine --stream``'s built-in verification), so the PM3xx
        log-vs-model rules don't run here.
        """
        snapshot = self.fresh_snapshot()
        if snapshot is None:
            raise ServiceError(
                f"process {self.process!r} has no model yet", status=404
            )
        graph = snapshot.graph
        source = snapshot.source
        sink = snapshot.sink
        # After a restart the observed first/last sets are gone; the
        # graph's unique endpoints are the same information when they
        # are unambiguous.
        if source is None and len(graph.sources()) == 1:
            source = graph.sources()[0]
        if sink is None and len(graph.sinks()) == 1:
            sink = graph.sinks()[0]
        result = MiningResult(
            graph=graph,
            algorithm=snapshot.algorithm,
            source=source,
            sink=sink,
        )
        try:
            model = result.to_process_model(name=self.process)
        except ReproError as exc:
            raise ServiceError(
                f"model cannot be packaged for lint: {exc}", status=409
            ) from exc
        return lint_model(model, config=config, recorder=self.recorder)

    def stats(self) -> dict:
        """The accounting document ``flush`` and ``tenants`` expose."""
        report = self.report
        return {
            "process": self.process,
            "executions": self.session.covered_seq,
            "open_executions": self.stream.open_executions,
            "accepted_records": report.accepted_records,
            "repaired_executions": report.repaired_executions,
            "quarantined_lines": report.quarantined_lines,
            "quarantined_executions": report.quarantined_executions,
            "quarantine_reasons": dict(report.reasons),
            "snapshot_seq": (
                self._snapshot.seq if self._snapshot else None
            ),
        }


def tenant_directory_name(process: str) -> str:
    """The filesystem-safe (percent-encoded) tenant directory name."""
    return quote(process, safe="")


class TenantRegistry:
    """Every live tenant, keyed by process id, rooted at ``data_dir``."""

    def __init__(
        self,
        data_dir: Path,
        config: TenantConfig,
        recorder=NULL_RECORDER,
        max_tenants: int = 1024,
    ) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.config = config
        self.recorder = recorder
        self.max_tenants = max_tenants
        self._tenants: Dict[str, Tenant] = {}

    def __len__(self) -> int:
        return len(self._tenants)

    def processes(self) -> List[str]:
        """Live process ids, sorted."""
        return sorted(self._tenants)

    def get(self, process: str) -> Optional[Tenant]:
        """The live tenant for ``process``, or None."""
        return self._tenants.get(process)

    def tenants(self) -> List[Tenant]:
        """Every live tenant, in sorted process order."""
        return [self._tenants[name] for name in self.processes()]

    def validate_process_id(self, process: str) -> str:
        """Reject ids that cannot name a tenant; return the id."""
        if not process:
            raise ServiceError("process id must not be empty")
        if len(process) > _PROCESS_ID_LIMIT:
            raise ServiceError(
                f"process id longer than {_PROCESS_ID_LIMIT} characters"
            )
        if any(ord(ch) < 0x20 or ch == "\x7f" for ch in process):
            raise ServiceError(
                "process id must not contain control characters"
            )
        return process

    def get_or_create(
        self, process: str
    ) -> Tuple[Tenant, Optional[RecoveryReport]]:
        """Return the live tenant, creating (and recovering) if new.

        A new tenant whose directory already holds a previous daemon's
        session resumes it — ``recover`` loads the checkpoint and
        replays the journal tail, which is how a restarted daemon picks
        every process up byte-identically.
        """
        self.validate_process_id(process)
        tenant = self._tenants.get(process)
        if tenant is not None:
            return tenant, None
        if len(self._tenants) >= self.max_tenants:
            raise ServiceError(
                f"tenant limit reached ({self.max_tenants}); "
                f"cannot admit process {process!r}",
                status=429,
            )
        tenant = Tenant(
            process,
            self.data_dir / tenant_directory_name(process),
            self.config,
            recorder=self.recorder,
        )
        recovery = tenant.recover()
        self._tenants[process] = tenant
        self.recorder.gauge("repro_service_tenants", len(self._tenants))
        return tenant, recovery

    def startup(self) -> List[Tuple[str, RecoveryReport]]:
        """Re-open every tenant directory found under ``data_dir``.

        Called once when the daemon boots so a restart serves every
        previously known process immediately, without waiting for its
        first request.
        """
        recovered: List[Tuple[str, RecoveryReport]] = []
        for entry in sorted(self.data_dir.iterdir()):
            if not entry.is_dir():
                continue
            process = unquote(entry.name)
            if process in self._tenants:
                continue
            tenant = Tenant(
                process, entry, self.config, recorder=self.recorder
            )
            recovered.append((process, tenant.recover()))
            self._tenants[process] = tenant
        self.recorder.gauge("repro_service_tenants", len(self._tenants))
        return recovered

    def close_all(self) -> Dict[str, HandoffReceipt]:
        """Shut every tenant down cleanly; return their receipts."""
        receipts: Dict[str, HandoffReceipt] = {}
        for process in self.processes():
            tenant = self._tenants.pop(process)
            receipts[process] = tenant.close()
        self.recorder.gauge("repro_service_tenants", len(self._tenants))
        return receipts
