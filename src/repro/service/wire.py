"""Wire codecs and renderers shared by the service and the CLI.

The daemon's output contract is *the CLI's* output contract: a model
fetched over HTTP must be byte-identical to what ``repro-miner mine``
prints for the same log, and a state envelope fetched over HTTP must be
byte-identical to the CLI's ``--state-out`` file.  The way to keep that
true is to have exactly one renderer per artifact, used by both sides —
this module holds them.

JSON request/response documents live here too, so the server and the
:class:`~repro.service.client.ServiceClient` agree on field names by
importing the same constants instead of re-typing strings.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.graphs.digraph import DiGraph
from repro.graphs.render import edge_list_text, to_ascii, to_dot

#: Model formats ``GET /v1/{process}/model`` accepts via ``?format=``.
FORMAT_JSON = "json"
FORMAT_DOT = "dot"
FORMAT_EDGES = "edges"
FORMAT_ASCII = "ascii"
MODEL_FORMATS = (FORMAT_JSON, FORMAT_DOT, FORMAT_EDGES, FORMAT_ASCII)

#: Media types the endpoints speak.
MEDIA_JSON = "application/json"
MEDIA_TEXT = "text/plain; charset=utf-8"
#: The Prometheus text exposition format version ``GET /metrics`` emits.
MEDIA_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


def render_graph_block(
    graph: DiGraph,
    fmt: str,
    name: str,
    algorithm: Optional[str] = None,
) -> str:
    """The mined-graph text block, exactly as the CLI prints it.

    ``# activities`` / ``# edges`` header lines followed by the body in
    ``fmt`` (``dot``, ``edges`` or ``ascii``).  With ``algorithm`` the
    ``# algorithm:`` line is prepended — the full ``mine`` stdout.  The
    CLI writes this same string, so an HTTP body built here is
    byte-identical to the batch output for the same graph.
    """
    lines: List[str] = []
    if algorithm is not None:
        lines.append(f"# algorithm: {algorithm}")
    lines.append(f"# activities: {graph.node_count}")
    lines.append(f"# edges: {graph.edge_count}")
    if fmt == FORMAT_DOT:
        body = to_dot(graph, name=name)
    elif fmt == FORMAT_EDGES:
        body = edge_list_text(graph)
    else:
        body = to_ascii(graph)
    lines.append(body)
    return "\n".join(lines) + "\n"


def model_document(
    process: str,
    algorithm: str,
    graph: DiGraph,
    executions: int,
    variants: int,
    snapshot_seq: int,
    threshold: int,
) -> dict:
    """The JSON model document ``GET /v1/{process}/model`` returns."""
    return {
        "process": process,
        "algorithm": algorithm,
        "threshold": threshold,
        "executions": executions,
        "variants": variants,
        "snapshot_seq": snapshot_seq,
        "activities": sorted(str(node) for node in graph.nodes()),
        "edges": sorted(
            [str(source), str(target)]
            for source, target in graph.edges()
        ),
    }


def error_document(message: str, **extra: object) -> dict:
    """The uniform error body every non-2xx JSON response carries."""
    document: Dict[str, object] = {"error": message}
    document.update(extra)
    return document


def dump_json(document: object) -> bytes:
    """Canonical JSON response bytes (sorted keys, trailing newline)."""
    return (
        json.dumps(document, sort_keys=True, separators=(", ", ": "))
        + "\n"
    ).encode("utf-8")


def split_event_lines(body: bytes) -> List[str]:
    """Split a ``POST .../events`` body into JSONL event lines.

    One JSON object per line; blank lines are ignored so a trailing
    newline or a single-object body both work.  The tenant numbers the
    lines against its own monotonic counter, so late-record
    diagnostics refer to the tenant's whole stream, not one request.
    Raises :class:`UnicodeDecodeError` on non-UTF-8 input (the server
    maps it to a 400).
    """
    text = body.decode("utf-8")
    return [line for line in text.split("\n") if line.strip()]
